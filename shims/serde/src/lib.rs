//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! a minimal serialization framework under the `serde` package name. It is
//! **not** the real serde: instead of the visitor-based zero-copy data
//! model, everything serializes into (and deserializes from) a simple owned
//! tree, [`Content`], which `serde_json` (also vendored) renders as JSON.
//!
//! Supported surface, mirroring what the `mfb` crates use:
//!
//! * `#[derive(Serialize, Deserialize)]` on named structs, tuple structs,
//!   and enums with unit / newtype variants (via the vendored
//!   `serde_derive`);
//! * `#[serde(transparent)]` newtypes;
//! * impls for integers, floats, `bool`, `String`, `Option`, `Vec`,
//!   arrays, and tuples up to arity four.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// The owned serialization tree. JSON-shaped: this is also what the
/// vendored `serde_json` exposes as its `Value` type.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Content {
    /// JSON `null`.
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Content>),
    /// An object, preserving insertion order.
    Map(Vec<(String, Content)>),
}

static NULL: Content = Content::Null;

impl Content {
    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element access for arrays; `None` out of range or for non-arrays.
    pub fn get_index(&self, index: usize) -> Option<&Content> {
        match self {
            Content::Seq(items) => items.get(index),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Content::U64(n) => Some(*n),
            Content::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Content::I64(n) => Some(*n),
            Content::U64(n) if *n <= i64::MAX as u64 => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Content::F64(x) => Some(*x),
            Content::U64(n) => Some(*n as f64),
            Content::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Content::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Content>> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The entries, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Content)>> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// `true` for `Content::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Content::Null)
    }

    /// Builds an object from `(key, value)` pairs.
    pub fn object(entries: Vec<(&str, Content)>) -> Content {
        Content::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }
}

impl std::ops::Index<&str> for Content {
    type Output = Content;
    fn index(&self, key: &str) -> &Content {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Content {
    type Output = Content;
    fn index(&self, index: usize) -> &Content {
        self.get_index(index).unwrap_or(&NULL)
    }
}

impl From<&str> for Content {
    fn from(s: &str) -> Content {
        Content::Str(s.to_string())
    }
}
impl From<String> for Content {
    fn from(s: String) -> Content {
        Content::Str(s)
    }
}
impl From<u64> for Content {
    fn from(n: u64) -> Content {
        Content::U64(n)
    }
}
impl From<bool> for Content {
    fn from(b: bool) -> Content {
        Content::Bool(b)
    }
}
impl From<f64> for Content {
    fn from(x: f64) -> Content {
        Content::F64(x)
    }
}
impl From<Vec<Content>> for Content {
    fn from(items: Vec<Content>) -> Content {
        Content::Seq(items)
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with an arbitrary message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into the serialization tree.
    fn to_content(&self) -> Content;
}

/// Deserialization out of the [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the serialization tree.
    fn from_content(c: &Content) -> Result<Self, Error>;
}

pub mod de {
    //! Deserialization traits (`serde::de` parity surface).

    /// Deserialization that does not borrow from the input. Every
    /// [`Deserialize`](crate::Deserialize) impl in this stand-in is owned,
    /// so this is a blanket alias.
    pub trait DeserializeOwned: crate::Deserialize {}

    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Support fn for derived code: extracts and deserializes a struct field.
pub fn __map_field<T: Deserialize>(c: &Content, name: &str) -> Result<T, Error> {
    match c.get(name) {
        Some(v) => T::from_content(v),
        None => Err(Error::custom(format!("missing field `{name}`"))),
    }
}

/// Support fn for derived code: extracts and deserializes a tuple element.
pub fn __seq_elem<T: Deserialize>(c: &Content, index: usize) -> Result<T, Error> {
    match c.get_index(index) {
        Some(v) => T::from_content(v),
        None => Err(Error::custom(format!("missing sequence element {index}"))),
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, Error> {
        Ok(c.clone())
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let n = c.as_u64().ok_or_else(|| {
                    Error::custom(concat!("expected a non-negative integer for ",
                        stringify!($t)))
                })?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let n = c.as_i64().ok_or_else(|| {
                    Error::custom(concat!("expected an integer for ", stringify!($t)))
                })?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_f64().ok_or_else(|| Error::custom("expected a number"))
    }
}
impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| Error::custom("expected a number"))
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_bool()
            .ok_or_else(|| Error::custom("expected a boolean"))
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected a string"))
    }
}
impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl Serialize for &str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            _ => Err(Error::custom("expected an array")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_content(c)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected an array of length {N}, got {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, Error> {
                Ok(($(__seq_elem::<$name>(c, $idx)?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_and_vec_round_trip() {
        let v: Vec<Option<u32>> = vec![Some(3), None, Some(7)];
        let c = v.to_content();
        assert_eq!(Vec::<Option<u32>>::from_content(&c).unwrap(), v);
    }

    #[test]
    fn tuple_round_trip() {
        let t = (1u32, -5i64, "x".to_string());
        let c = t.to_content();
        assert_eq!(
            <(u32, i64, String)>::from_content(&c).unwrap(),
            (1, -5, "x".to_string())
        );
    }

    #[test]
    fn index_falls_back_to_null() {
        let c = Content::object(vec![("a", Content::U64(1))]);
        assert_eq!(c["a"].as_u64(), Some(1));
        assert!(c["missing"].is_null());
        assert!(c[3].is_null());
    }
}
