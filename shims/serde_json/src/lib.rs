//! Offline stand-in for `serde_json`, built over the vendored `serde`
//! stand-in's [`Content`] tree.
//!
//! Provides the workspace's used subset: [`to_string`], [`to_string_pretty`],
//! [`from_str`], and a [`Value`] alias (the `serde::Content` tree itself)
//! with `Index` access for tests that poke into JSON documents.

pub use serde::Content as Value;
pub use serde::Error;

use serde::{Content, Deserialize, Serialize};
use std::fmt::Write as _;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_content(&v)
}

fn write_value(out: &mut String, v: &Content, indent: Option<usize>, depth: usize) {
    match v {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Content::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Content::F64(x) => {
            if x.is_finite() {
                // `{:?}` prints the shortest representation that round-trips,
                // and always includes a `.0` or exponent for integral values.
                let _ = write!(out, "{x:?}");
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_string(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain (unescaped, non-terminator) bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| Error::custom("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Content::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Content::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = Content::object(vec![
            ("name", Content::from("assay \"x\"\n")),
            (
                "values",
                Content::Seq(vec![
                    Content::U64(3),
                    Content::I64(-4),
                    Content::F64(2.5e-7),
                    Content::Null,
                    Content::Bool(true),
                ]),
            ),
            ("empty", Content::Seq(vec![])),
        ]);
        for text in [to_string(&doc).unwrap(), to_string_pretty(&doc).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, doc);
        }
    }

    #[test]
    fn parses_escapes() {
        let v: Value = from_str(r#""aA\né😀""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\né😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
