//! Offline stand-in for the `proptest` crate.
//!
//! Implements the generate-and-check core the workspace's property tests
//! use — [`Strategy`] with `prop_map`, range/tuple/`Just`/union strategies,
//! `collection::vec`, `option::of`, `sample::Index`, the `proptest!` /
//! `prop_assert*` / `prop_assume!` / `prop_oneof!` macros, and
//! [`test_runner::ProptestConfig`] — without shrinking. Case generation is
//! deterministic (seeded from the test name), so failures reproduce exactly.

/// The RNG that drives all generation.
pub type TestRng = rand::rngs::StdRng;

pub mod strategy {
    //! The [`Strategy`] trait and combinator types.

    use super::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// Produces random values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value *tree* and no shrinking: a
    /// strategy simply generates one value per case.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe mirror of [`Strategy`] used for type erasure.
    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between heterogeneous strategies of one value type
    /// (what `prop_oneof!` builds).
    pub struct Union<T> {
        members: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union from already-erased members; panics if empty.
        pub fn new(members: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!members.is_empty(), "prop_oneof! needs at least one arm");
            Union { members }
        }

        /// Erases one arm (helper for `prop_oneof!`).
        pub fn member<S>(s: S) -> BoxedStrategy<T>
        where
            S: Strategy<Value = T> + 'static,
        {
            s.boxed()
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.members.len());
            self.members[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// `&'static str` as a strategy: a tiny subset of proptest's
    /// string-regex support. `"\\PC{m,n}"` generates `m..=n` arbitrary
    /// printable (non-control) chars; any other literal generates itself.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            match parse_repeat_spec(self) {
                Some(("\\PC", lo, hi)) => {
                    let len = rng.gen_range(lo..=hi);
                    (0..len).map(|_| printable_char(rng)).collect()
                }
                _ => (*self).to_string(),
            }
        }
    }

    /// Splits `"<prefix>{m,n}"` into its parts.
    fn parse_repeat_spec(s: &str) -> Option<(&str, usize, usize)> {
        let body = s.strip_suffix('}')?;
        let brace = body.rfind('{')?;
        let (prefix, counts) = (&body[..brace], &body[brace + 1..]);
        let (lo, hi) = counts.split_once(',')?;
        Some((prefix, lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    /// An arbitrary non-control char, biased toward ASCII so the text
    /// still stresses real tokenizer paths.
    fn printable_char(rng: &mut TestRng) -> char {
        const EXOTIC: &[char] = &['é', 'µ', '→', '\u{00a0}', '≤', '∅', '😀', '中'];
        if rng.gen_bool(0.9) {
            char::from(rng.gen_range(0x20u8..0x7f))
        } else {
            EXOTIC[rng.gen_range(0..EXOTIC.len())]
        }
    }

    /// Strategy for [`any`](crate::arbitrary::any).
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait and [`any`].

    use super::strategy::Any;
    use super::TestRng;
    use rand::{Rng, RngCore};
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::sample::Index(rng.next_u64())
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for generated collections. Only `usize`
    /// ranges convert, which (as in real proptest) pins unsuffixed
    /// integer literals like `0..30` to `usize`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// `Vec` strategy: `size` picks the length, `element` fills it.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Strategy behind [`of`].
    pub struct OptionStrategy<S>(S);

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_bool(0.75) {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod sample {
    //! Sampling helpers.

    /// An arbitrary index into a collection whose length is only known at
    /// use time. Obtain via `any::<Index>()`, resolve with [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// Maps this abstract index into `0..len`.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

pub mod test_runner {
    //! Case loop, configuration, and failure plumbing.

    use super::TestRng;
    use rand::SeedableRng;

    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases each test must pass.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case's inputs did not satisfy a `prop_assume!`; it is
        /// retried with fresh inputs, not counted as a failure.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A rejection (see [`TestCaseError::Reject`]).
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }

        /// A failure (see [`TestCaseError::Fail`]).
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Result of one test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Drives one property: draws cases until `cfg.cases` are accepted,
    /// panicking on the first failure. Deterministically seeded from the
    /// test name so failures reproduce; setting `MFB_TEST_SEED=<u64>` in
    /// the environment mixes an extra seed in, letting CI run the same
    /// suite over several input streams (failures still reproduce by
    /// exporting the same value).
    pub fn run_proptest<F>(cfg: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        let extra = std::env::var("MFB_TEST_SEED")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .unwrap_or(0);
        let mut rng = TestRng::seed_from_u64(
            fnv1a(name.as_bytes()) ^ extra.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut accepted = 0u32;
        let mut attempts = 0u64;
        let max_attempts = u64::from(cfg.cases).saturating_mul(20).max(200);
        while accepted < cfg.cases {
            attempts += 1;
            assert!(
                attempts <= max_attempts,
                "proptest `{name}`: gave up after {attempts} attempts \
                 ({accepted}/{} cases accepted — prop_assume! too strict?)",
                cfg.cases
            );
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => continue,
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest `{name}` failed (case {}): {msg}", accepted + 1)
                }
            }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($p:pat_param in $s:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_proptest(
                &$cfg,
                stringify!($name),
                |__proptest_rng| {
                    $(let $p = $crate::strategy::Strategy::generate(&($s), __proptest_rng);)+
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{}` == `{}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), __l, __r
        );
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Discards the current case (retried with new inputs) when `cond` fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Union::member($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(
            n in 2usize..18,
            seed in any::<u64>(),
            pair in (1u32..4, -9.0f64..-4.0),
            v in crate::collection::vec(0u64..10, 0..20),
            opt in crate::option::of(1u32..5),
            idx in any::<crate::sample::Index>(),
            text in "\\PC{0,40}",
        ) {
            prop_assert!((2..18).contains(&n));
            let _ = seed;
            prop_assert!((1..4).contains(&pair.0));
            prop_assert!((-9.0..-4.0).contains(&pair.1));
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 10));
            if let Some(x) = opt {
                prop_assert!((1..5).contains(&x));
            }
            prop_assert_eq!(idx.index(1), 0);
            prop_assert!(idx.index(7) < 7);
            prop_assert!(text.chars().count() <= 40);
            prop_assert!(!text.chars().any(char::is_control));
        }

        #[test]
        fn oneof_and_assume(x in prop_oneof![Just(1u32), Just(2u32), 3u32..5]) {
            prop_assume!(x != 2);
            prop_assert!(x == 1 || (3..5).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn failures_panic() {
        proptest! {
            fn inner(_x in 0u32..5) {
                prop_assert!(false, "deliberate");
            }
        }
        inner();
    }
}
