//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for
//! the vendored offline `serde` stand-in.
//!
//! The real `serde_derive` cannot be used in this build environment (no
//! network registry), so this crate re-implements the subset of the derive
//! the workspace actually needs, parsing the raw [`TokenStream`] without
//! `syn`/`quote`:
//!
//! * structs with named fields;
//! * tuple structs (including `#[serde(transparent)]` newtypes);
//! * enums whose variants are unit or one-field tuple ("newtype") variants;
//! * the `#[serde(transparent)]` container attribute.
//!
//! Generics, struct variants, and renaming attributes are intentionally
//! unsupported and fail with a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a container declaration parsed down to.
enum Shape {
    /// `struct S { a: A, b: B }` — the field names, in order.
    NamedStruct(Vec<String>),
    /// `struct S(A, B);` — the field count.
    TupleStruct(usize),
    /// `struct S;`
    UnitStruct,
    /// `enum E { Unit, Newtype(T) }` — `(variant, has_payload)` pairs.
    Enum(Vec<(String, bool)>),
}

struct Container {
    name: String,
    transparent: bool,
    shape: Shape,
}

fn parse_container(input: TokenStream) -> Container {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut transparent = false;
    let mut i = 0;

    // Leading attributes and visibility.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    let text = g.stream().to_string().replace(' ', "");
                    if text.starts_with("serde(") && text.contains("transparent") {
                        transparent = true;
                    }
                }
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => break,
            _ => i += 1,
        }
    }

    let is_struct = matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "struct");
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected container name, found `{other}`"),
    };
    i += 1;
    if matches!(&tokens[i..], [TokenTree::Punct(p), ..] if p.as_char() == '<') {
        panic!("serde shim derive: generic containers are not supported (`{name}`)");
    }

    let shape = if is_struct {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde shim derive: unsupported struct body for `{name}`: {other:?}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream(), &name))
            }
            other => panic!("serde shim derive: unsupported enum body for `{name}`: {other:?}"),
        }
    };

    Container {
        name,
        transparent,
        shape,
    }
}

/// Splits a struct-body stream into named fields, returning the names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes (doc comments included) and visibility.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            _ => {}
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected field name, found `{other}`"),
        };
        fields.push(name);
        i += 1;
        // Expect `:`, then consume the type up to a top-level comma. Commas
        // inside `<...>` generic argument lists are not separators.
        assert!(
            matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "serde shim derive: expected `:` after field name"
        );
        i += 1;
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts comma-separated fields of a tuple-struct body.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

/// Splits an enum body into `(variant, has_payload)` pairs.
fn parse_variants(stream: TokenStream, container: &str) -> Vec<(String, bool)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {
                i += 1;
                continue;
            }
            TokenTree::Ident(id) => {
                let name = id.to_string();
                i += 1;
                let mut has_payload = false;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    match g.delimiter() {
                        Delimiter::Parenthesis => {
                            let n = count_top_level_fields(g.stream());
                            assert!(
                                n == 1,
                                "serde shim derive: variant `{container}::{name}` has {n} \
                                 fields; only unit and single-field tuple variants are supported"
                            );
                            has_payload = true;
                            i += 1;
                        }
                        Delimiter::Brace => panic!(
                            "serde shim derive: struct variant `{container}::{name}` \
                             is not supported"
                        ),
                        _ => {}
                    }
                }
                variants.push((name, has_payload));
            }
            other => panic!("serde shim derive: unexpected token in enum body: `{other}`"),
        }
    }
    variants
}

/// `#[derive(Serialize)]` for the supported container shapes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    let name = &c.name;
    let body = match &c.shape {
        Shape::NamedStruct(fields) => {
            if c.transparent {
                assert!(
                    fields.len() == 1,
                    "serde shim derive: #[serde(transparent)] requires exactly one field"
                );
                format!("::serde::Serialize::to_content(&self.{})", fields[0])
            } else {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_content(&self.{f}))"
                        )
                    })
                    .collect();
                format!("::serde::Content::Map(vec![{}])", entries.join(", "))
            }
        }
        Shape::TupleStruct(n) => {
            if c.transparent || *n == 1 {
                "::serde::Serialize::to_content(&self.0)".to_string()
            } else {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                    .collect();
                format!("::serde::Content::Seq(vec![{}])", elems.join(", "))
            }
        }
        Shape::UnitStruct => "::serde::Content::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, has_payload)| {
                    if *has_payload {
                        format!(
                            "{name}::{v}(__x) => ::serde::Content::Map(vec![\
                             (::std::string::String::from(\"{v}\"), \
                             ::serde::Serialize::to_content(__x))]),"
                        )
                    } else {
                        format!(
                            "{name}::{v} => \
                             ::serde::Content::Str(::std::string::String::from(\"{v}\")),"
                        )
                    }
                })
                .collect();
            format!(
                "match self {{ {} #[allow(unreachable_patterns)] _ => \
                 unreachable!(\"non-exhaustive enum\") }}",
                arms.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde shim derive: generated Serialize impl must parse")
}

/// `#[derive(Deserialize)]` for the supported container shapes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    let name = &c.name;
    let body = match &c.shape {
        Shape::NamedStruct(fields) => {
            if c.transparent {
                format!(
                    "Ok({name} {{ {}: ::serde::Deserialize::from_content(__c)? }})",
                    fields[0]
                )
            } else {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{f}: ::serde::__map_field(__c, \"{f}\")?"))
                    .collect();
                format!("Ok({name} {{ {} }})", inits.join(", "))
            }
        }
        Shape::TupleStruct(n) => {
            if c.transparent || *n == 1 {
                format!("Ok({name}(::serde::Deserialize::from_content(__c)?))")
            } else {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::__seq_elem(__c, {i})?"))
                    .collect();
                format!("Ok({name}({}))", elems.join(", "))
            }
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, p)| !p)
                .map(|(v, _)| format!("\"{v}\" => return Ok({name}::{v}),"))
                .collect();
            let map_arms: Vec<String> = variants
                .iter()
                .filter(|(_, p)| *p)
                .map(|(v, _)| {
                    format!(
                        "\"{v}\" => return Ok({name}::{v}(\
                         ::serde::Deserialize::from_content(__v)?)),"
                    )
                })
                .collect();
            format!(
                "match __c {{\n\
                 ::serde::Content::Str(__s) => {{\n\
                 match __s.as_str() {{ {} _ => {{}} }}\n\
                 Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{}}` of {name}\", __s)))\n\
                 }}\n\
                 ::serde::Content::Map(__m) if __m.len() == 1 => {{\n\
                 let (__k, __v) = &__m[0];\n\
                 match __k.as_str() {{ {} _ => {{}} }}\n\
                 Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{}}` of {name}\", __k)))\n\
                 }}\n\
                 _ => Err(::serde::Error::custom(\
                 \"expected a string or single-entry map for enum {name}\")),\n\
                 }}",
                unit_arms.join(" "),
                map_arms.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::Error> \
         {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde shim derive: generated Deserialize impl must parse")
}
