//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the bench targets compiling and runnable without the real
//! statistics engine: each benchmark closure is timed over a handful of
//! iterations and the mean wall-clock time is printed. Good enough to
//! eyeball relative cost; not a measurement tool.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Mirrors `Criterion::default().configure_from_args()`; CLI arguments
    /// are ignored here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra; exists for API parity).
    pub fn finish(self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        let mean = if bencher.iters > 0 {
            bencher.elapsed / bencher.iters
        } else {
            Duration::ZERO
        };
        println!(
            "  {}/{id}: {mean:?} mean over {} iters",
            self.name, bencher.iters
        );
    }
}

/// Times the measured routine.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Runs `routine` repeatedly (capped well below real criterion's
    /// sample counts) and records total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call outside the timed region.
        black_box(routine());
        let iters = self.samples.clamp(1, 10);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += iters as u32;
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{parameter}", name.into()),
        }
    }

    /// Just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` from one or more `criterion_group!` names.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_iters() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        let mut calls = 0u32;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        // warm-up + 10 timed iterations
        assert_eq!(calls, 11);
        assert_eq!(BenchmarkId::new("a", "b").to_string(), "a/b");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
