//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset the workspace uses — [`Rng::gen`],
//! [`Rng::gen_range`] over integer and float ranges, and
//! [`SeedableRng::seed_from_u64`] — on top of xoshiro256++ seeded through
//! splitmix64. Deterministic, reproducible, and *not* cryptographic, which
//! matches how the synthesis code uses randomness (seeded simulated
//! annealing and synthetic benchmark generation).

use std::ops::{Range, RangeInclusive};

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution of `T` (uniform bits
    /// for integers, `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding support.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// One splitmix64 step — used for seeding and as a fallback generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ state shared by both named generators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Xoshiro256 {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Stand-in for rand's `StdRng` (deterministic xoshiro256++ here).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Stand-in for rand's `SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// The "standard" distribution of a type.
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}
impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: u64 = rng.gen_range(5..=6);
            assert!((5..=6).contains(&y));
            let z: f64 = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&z));
            let w: f64 = rng.gen();
            assert!((0.0..1.0).contains(&w));
            let v: u8 = rng.gen_range(0..3u8);
            assert!(v < 3);
        }
    }
}
