//! The paper's Fig. 2(a)/Fig. 3 running example, end to end.

use mfb_bench_suite::motivating_example;
use mfb_core::prelude::*;
use mfb_model::prelude::*;

fn wash() -> LogLinearWash {
    LogLinearWash::paper_calibrated()
}

#[test]
fn priority_of_o1_is_21_seconds_at_tc_2() {
    // §IV-A: "the longest path from o1 to sink is o1→o5→o7→o10→sink, and
    // the priority value of o1 is 21 if t_c = 2".
    let b = motivating_example();
    let prio = b.graph.priority_values(Duration::from_secs(2));
    assert_eq!(prio[0], Duration::from_secs(21));
}

#[test]
fn o1_residue_needs_ten_seconds_of_washing() {
    // Fig. 3(a): "it takes 10 s to wash the residue left by o1".
    let b = motivating_example();
    let d = b.graph.op(OpId::new(0)).output_diffusion();
    assert_eq!(wash().wash_time(d), Duration::from_secs(10));
}

#[test]
fn five_components_execute_the_assay() {
    let b = motivating_example();
    assert_eq!(b.allocation.total(), 5);
    let comps = b.components(&ComponentLibrary::default());
    assert!(comps.covers(b.graph.ops().map(|o| o.kind())));
}

#[test]
fn storage_aware_flow_beats_baseline_like_fig3() {
    // Fig. 3 contrasts a 37 s / 62 % schedule against a 24 s / 82 % one.
    // Exact numbers depend on the unpublished operation durations; the
    // relationship — shorter makespan, higher utilization — must hold.
    let b = motivating_example();
    let comps = b.components(&ComponentLibrary::default());
    let ours = Synthesizer::paper_dcsa()
        .synthesize(&b.graph, &comps, &wash())
        .unwrap();
    let ba = Synthesizer::paper_baseline()
        .synthesize(&b.graph, &comps, &wash())
        .unwrap();

    let mo = SolutionMetrics::of(&ours, &comps);
    let mb = SolutionMetrics::of(&ba, &comps);
    assert!(
        mo.execution_time <= mb.execution_time,
        "ours {} vs BA {}",
        mo.execution_time,
        mb.execution_time
    );
    assert!(
        mo.utilization >= mb.utilization,
        "ours {:.3} vs BA {:.3}",
        mo.utilization,
        mb.utilization
    );
}

#[test]
fn both_solutions_replay_cleanly() {
    let b = motivating_example();
    let comps = b.components(&ComponentLibrary::default());
    for synth in [Synthesizer::paper_dcsa(), Synthesizer::paper_baseline()] {
        let sol = synth.synthesize(&b.graph, &comps, &wash()).unwrap();
        let report = sol.verify(&b.graph, &comps, &wash());
        assert!(report.is_valid(), "{:?}", report.violations);
    }
}

#[test]
fn storage_aware_flow_uses_case1() {
    let b = motivating_example();
    let comps = b.components(&ComponentLibrary::default());
    let sol = Synthesizer::paper_dcsa()
        .synthesize(&b.graph, &comps, &wash())
        .unwrap();
    assert!(
        sol.schedule.in_place_count() > 0,
        "the running example is built to reward Case-I reuse"
    );
}
