//! Qualitative reproduction of the paper's evaluation: the *shape* of
//! Table I, Fig. 8 and Fig. 9 — who wins, where the ties fall, how gains
//! scale with benchmark size. Absolute numbers differ (the original
//! benchmark files were never published; see DESIGN.md), so these tests pin
//! the relationships the paper's conclusions rest on.

use mfb_bench_suite::table1_benchmarks;
use mfb_core::prelude::*;
use mfb_model::prelude::*;

fn rows() -> Vec<ComparisonRow> {
    let lib = ComponentLibrary::default();
    let wash = LogLinearWash::paper_calibrated();
    table1_benchmarks()
        .into_iter()
        .map(|b| {
            ComparisonRow::compare(b.name, &b.graph, b.allocation, &lib, &wash)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name))
        })
        .collect()
}

#[test]
fn table1_execution_time_shape() {
    // Paper: 0.0 %–10.5 % improvement, never a regression; small
    // benchmarks tie or nearly tie, larger ones gain.
    let rows = rows();
    for r in &rows {
        assert!(
            r.ours.execution_time <= r.baseline.execution_time,
            "{}: ours must never lose on execution time ({} vs {})",
            r.name,
            r.ours.execution_time,
            r.baseline.execution_time
        );
    }
    // At least one small benchmark ties, and the large ones improve.
    assert!(
        rows.iter()
            .filter(|r| r.operations <= 12)
            .any(|r| r.execution_improvement_pct() < 1.0),
        "some small benchmark should tie"
    );
    let big_improved = rows
        .iter()
        .filter(|r| r.operations >= 30)
        .filter(|r| r.execution_improvement_pct() > 0.0)
        .count();
    assert!(big_improved >= 3, "large benchmarks should improve");
}

#[test]
fn table1_utilization_shape() {
    // Paper: +12.5 % average; every improving benchmark improves
    // utilization too, with the biggest gains on the biggest assays.
    let rows = rows();
    for r in &rows {
        assert!(
            r.ours.utilization >= r.baseline.utilization - 1e-9,
            "{}: utilization must not regress",
            r.name
        );
    }
    let avg: f64 = rows
        .iter()
        .map(ComparisonRow::utilization_improvement_pct)
        .sum::<f64>()
        / rows.len() as f64;
    assert!(avg > 0.0, "average utilization gain must be positive");
}

#[test]
fn table1_channel_length_shape() {
    // Paper: 0.0 %–11.5 % shorter channels, 5.7 % on average. Allow small
    // per-benchmark regressions (different reconstructed workloads) but
    // demand a clearly positive average.
    let rows = rows();
    let avg: f64 = rows
        .iter()
        .map(ComparisonRow::channel_improvement_pct)
        .sum::<f64>()
        / rows.len() as f64;
    assert!(
        avg > 0.0,
        "average channel-length gain must be positive: {avg:.1}%"
    );
    for r in &rows {
        assert!(
            r.channel_improvement_pct() > -15.0,
            "{}: channel length should not regress badly ({:.1}%)",
            r.name,
            r.channel_improvement_pct()
        );
    }
}

#[test]
fn fig8_cache_time_shape() {
    // Paper Fig. 8: total channel-cache time reduced, "particularly in the
    // benchmarks with large scale input".
    let rows = rows();
    for r in &rows {
        assert!(
            r.ours.cache_time <= r.baseline.cache_time,
            "{}: cache time must not regress ({} vs {})",
            r.name,
            r.ours.cache_time,
            r.baseline.cache_time
        );
    }
    let big: Vec<_> = rows.iter().filter(|r| r.operations >= 30).collect();
    assert!(
        big.iter()
            .any(|r| r.ours.cache_time.as_secs_f64() < 0.9 * r.baseline.cache_time.as_secs_f64()),
        "large benchmarks should show a clear cache-time reduction"
    );
}

#[test]
fn fig9_wash_time_shape() {
    // Paper Fig. 9: wash efficiency improves. The tiny assays wash little
    // either way; demand the reduction on every benchmark with >= 20 ops.
    let rows = rows();
    for r in rows.iter().filter(|r| r.operations >= 20) {
        assert!(
            r.ours.channel_wash_time <= r.baseline.channel_wash_time,
            "{}: channel wash time must not regress ({} vs {})",
            r.name,
            r.ours.channel_wash_time,
            r.baseline.channel_wash_time
        );
    }
}

#[test]
fn cpu_time_stays_interactive() {
    // Paper Table I: both flows finish in hundredths of a second. Our
    // substrate differs, so just require "clearly interactive".
    let rows = rows();
    for r in &rows {
        assert!(
            r.ours_cpu.as_secs_f64() < 5.0 && r.baseline_cpu.as_secs_f64() < 5.0,
            "{}: synthesis should stay interactive ({:?} / {:?})",
            r.name,
            r.ours_cpu,
            r.baseline_cpu
        );
    }
}

#[test]
fn baseline_pays_routing_delays_somewhere() {
    // The baseline's construction-by-correction is allowed to postpone
    // transports; the paper's narrative depends on those delays existing.
    // We only require that the machinery reports zero delay for ours.
    let rows = rows();
    for r in &rows {
        assert_eq!(
            r.ours.total_delay,
            Duration::ZERO,
            "{}: the conflict-aware flow never delays",
            r.name
        );
    }
}
