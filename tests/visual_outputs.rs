//! The visual renderers on real solutions: structural sanity of SVG,
//! ASCII maps and Gantt charts.

use mfb_bench_suite::table1_benchmarks;
use mfb_core::prelude::*;
use mfb_model::prelude::*;
use mfb_viz::prelude::*;

fn solved() -> (mfb_bench_suite::Benchmark, ComponentSet, Solution) {
    let wash = LogLinearWash::paper_calibrated();
    let b = table1_benchmarks()
        .into_iter()
        .find(|b| b.name == "Synthetic1")
        .unwrap();
    let comps = b.components(&ComponentLibrary::default());
    let sol = Synthesizer::paper_dcsa()
        .synthesize(&b.graph, &comps, &wash)
        .unwrap();
    (b, comps, sol)
}

#[test]
fn svg_contains_all_components_and_paths() {
    let (_b, comps, sol) = solved();
    let svg = render_svg(&sol.placement, &comps, Some(&sol.routing));
    assert!(svg.starts_with("<svg"));
    assert!(svg.trim_end().ends_with("</svg>"));
    for c in comps.ids() {
        assert!(svg.contains(&format!(">{c}<")), "label {c} missing");
    }
    let polylines = svg.matches("<polyline").count();
    let multi_cell_paths = sol.routing.paths.iter().filter(|p| p.len() >= 2).count();
    assert_eq!(polylines, multi_cell_paths);
}

#[test]
fn ascii_map_matches_grid_dimensions() {
    let (_b, comps, sol) = solved();
    let map = render_ascii(&sol.placement, &comps, Some(&sol.routing));
    let grid = sol.placement.grid();
    let lines: Vec<&str> = map.lines().collect();
    assert_eq!(lines.len(), grid.height as usize);
    assert!(lines
        .iter()
        .all(|l| l.chars().count() == grid.width as usize));
    assert!(map.contains('M'), "mixers visible");
    assert!(map.contains('*'), "channels visible");
}

#[test]
fn gantt_covers_every_component_row() {
    let (_b, comps, sol) = solved();
    let chart = render_gantt(&sol.schedule, &comps);
    for c in comps.iter() {
        assert!(
            chart.contains(&c.id().to_string()),
            "row for {} missing",
            c.id()
        );
    }
    assert!(chart.lines().count() >= comps.len() + 2);
}
