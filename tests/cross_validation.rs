//! Property-based cross-validation: random synthetic assays through the
//! complete flow, replayed through the independent simulator. Any
//! scheduler/placer/router bug that produces a physically impossible
//! solution fails here.

use mfb_bench_suite::synth::SyntheticSpec;
use mfb_core::prelude::*;
use mfb_model::prelude::*;
use proptest::prelude::*;

fn wash() -> LogLinearWash {
    LogLinearWash::paper_calibrated()
}

fn arb_alloc() -> impl Strategy<Value = Allocation> {
    (1u32..4, 1u32..3, 1u32..3, 1u32..3).prop_map(|(m, h, f, d)| Allocation::new(m, h, f, d))
}

proptest! {
    // The full pipeline per case is heavier than a unit test; keep the
    // case count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dcsa_flow_solutions_replay_cleanly(
        n in 2usize..28,
        seed in any::<u64>(),
        alloc in arb_alloc(),
    ) {
        let g = SyntheticSpec::new(n, seed).generate();
        let comps = alloc.instantiate(&ComponentLibrary::default());
        let sol = Synthesizer::paper_dcsa()
            .synthesize(&g, &comps, &wash())
            .expect("synthetic instances are routable");
        let report = sol.verify(&g, &comps, &wash());
        prop_assert!(report.is_valid(), "violations: {:?}", report.violations);
        prop_assert_eq!(sol.routing.completion(), sol.schedule.completion_time());
    }

    #[test]
    fn baseline_flow_solutions_replay_cleanly(
        n in 2usize..24,
        seed in any::<u64>(),
        alloc in arb_alloc(),
    ) {
        let g = SyntheticSpec::new(n, seed).generate();
        let comps = alloc.instantiate(&ComponentLibrary::default());
        let sol = Synthesizer::paper_baseline()
            .synthesize(&g, &comps, &wash())
            .expect("synthetic instances are routable");
        let report = sol.verify(&g, &comps, &wash());
        prop_assert!(report.is_valid(), "violations: {:?}", report.violations);
        prop_assert!(sol.routing.completion() >= sol.schedule.completion_time());
    }

    #[test]
    fn dcsa_beats_or_ties_baseline_makespan(
        n in 2usize..24,
        seed in any::<u64>(),
    ) {
        let g = SyntheticSpec::new(n, seed).generate();
        let alloc = Allocation::new(2, 2, 2, 2);
        let comps = alloc.instantiate(&ComponentLibrary::default());
        let ours = Synthesizer::paper_dcsa().synthesize(&g, &comps, &wash()).unwrap();
        let ba = Synthesizer::paper_baseline().synthesize(&g, &comps, &wash()).unwrap();
        let mo = SolutionMetrics::of(&ours, &comps);
        let mb = SolutionMetrics::of(&ba, &comps);
        // Greedy heuristics carry no absolute guarantee; allow a whisker.
        prop_assert!(
            mo.execution_time.as_secs_f64() <= mb.execution_time.as_secs_f64() * 1.25 + 5.0,
            "ours {} vs BA {}", mo.execution_time, mb.execution_time
        );
    }
}
