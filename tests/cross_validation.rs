//! Property-based cross-validation: random synthetic assays through the
//! complete flow, replayed through the independent simulator. Any
//! scheduler/placer/router bug that produces a physically impossible
//! solution fails here.

use mfb_bench_suite::synth::SyntheticSpec;
use mfb_core::prelude::*;
use mfb_model::prelude::*;
use proptest::prelude::*;

fn wash() -> LogLinearWash {
    LogLinearWash::paper_calibrated()
}

fn arb_alloc() -> impl Strategy<Value = Allocation> {
    (1u32..4, 1u32..3, 1u32..3, 1u32..3).prop_map(|(m, h, f, d)| Allocation::new(m, h, f, d))
}

proptest! {
    // The full pipeline per case is heavier than a unit test; keep the
    // case count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dcsa_flow_solutions_replay_cleanly(
        n in 2usize..28,
        seed in any::<u64>(),
        alloc in arb_alloc(),
    ) {
        let g = SyntheticSpec::new(n, seed).generate();
        let comps = alloc.instantiate(&ComponentLibrary::default());
        let sol = Synthesizer::paper_dcsa()
            .synthesize(&g, &comps, &wash())
            .expect("synthetic instances are routable");
        let report = sol.verify(&g, &comps, &wash());
        prop_assert!(report.is_valid(), "violations: {:?}", report.violations);
        prop_assert_eq!(sol.routing.completion(), sol.schedule.completion_time());
    }

    #[test]
    fn baseline_flow_solutions_replay_cleanly(
        n in 2usize..24,
        seed in any::<u64>(),
        alloc in arb_alloc(),
    ) {
        let g = SyntheticSpec::new(n, seed).generate();
        let comps = alloc.instantiate(&ComponentLibrary::default());
        let sol = Synthesizer::paper_baseline()
            .synthesize(&g, &comps, &wash())
            .expect("synthetic instances are routable");
        let report = sol.verify(&g, &comps, &wash());
        prop_assert!(report.is_valid(), "violations: {:?}", report.violations);
        prop_assert!(sol.routing.completion() >= sol.schedule.completion_time());
    }

    /// The DRC registry agrees with the legacy checkers: a clean pipeline
    /// yields zero error diagnostics, and after a corruption every legacy
    /// violation shows up in the registry's report under its mapped rule
    /// id (the registry finds a superset).
    #[test]
    fn drc_registry_supersets_legacy_checkers(
        n in 4usize..20,
        seed in any::<u64>(),
        victim in any::<proptest::sample::Index>(),
    ) {
        use mfb_verify::prelude::*;

        let g = SyntheticSpec::new(n, seed).generate();
        let comps = Allocation::new(2, 2, 2, 2).instantiate(&ComponentLibrary::default());
        let mut sol = Synthesizer::paper_dcsa()
            .synthesize(&g, &comps, &wash())
            .expect("synthetic instances are routable");

        let clean = sol.drc(&g, &comps, &wash());
        prop_assert!(
            clean.count(Severity::Error) == 0,
            "clean pipeline produced errors: {:?}",
            clean.diagnostics
        );

        // Teleport one path cell to a far corner and re-check.
        prop_assume!(!sol.routing.paths.is_empty());
        let pi = victim.index(sol.routing.paths.len());
        prop_assume!(!sol.routing.paths[pi].cells.is_empty());
        let grid = sol.placement.grid();
        let far = CellPos::new(grid.width - 1, grid.height - 1);
        let ci = victim.index(sol.routing.paths[pi].cells.len());
        prop_assume!(sol.routing.paths[pi].cells[ci].manhattan(far) > 2);
        sol.routing.paths[pi].cells[ci] = far;

        let report = sol.drc(&g, &comps, &wash());
        let legacy_sched = mfb_sched::prelude::validate(&sol.schedule, &g, &comps);
        let legacy_sim = sol.verify(&g, &comps, &wash());
        for v in &legacy_sched {
            let rule = rule_for_schedule_violation(v);
            prop_assert!(
                report.by_rule(rule).any(|d| d.message == v.to_string()),
                "legacy schedule violation `{v}` missing under {rule}"
            );
        }
        for v in &legacy_sim.violations {
            let rule = rule_for_sim_violation(v);
            prop_assert!(
                report.by_rule(rule).any(|d| d.message == v.to_string()),
                "legacy replay violation `{v}` missing under {rule}"
            );
        }
        prop_assert!(
            report.diagnostics.len() >= legacy_sched.len() + legacy_sim.violations.len(),
            "registry reported fewer findings than the legacy checkers"
        );
    }

    #[test]
    fn dcsa_beats_or_ties_baseline_makespan(
        n in 2usize..24,
        seed in any::<u64>(),
    ) {
        let g = SyntheticSpec::new(n, seed).generate();
        let alloc = Allocation::new(2, 2, 2, 2);
        let comps = alloc.instantiate(&ComponentLibrary::default());
        let ours = Synthesizer::paper_dcsa().synthesize(&g, &comps, &wash()).unwrap();
        let ba = Synthesizer::paper_baseline().synthesize(&g, &comps, &wash()).unwrap();
        let mo = SolutionMetrics::of(&ours, &comps);
        let mb = SolutionMetrics::of(&ba, &comps);
        // Greedy heuristics carry no absolute guarantee; allow a whisker.
        prop_assert!(
            mo.execution_time.as_secs_f64() <= mb.execution_time.as_secs_f64() * 1.25 + 5.0,
            "ours {} vs BA {}", mo.execution_time, mb.execution_time
        );
    }
}
