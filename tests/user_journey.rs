//! The complete downstream-user journey, end to end: author an assay in
//! the text format, synthesize it, audit it, archive the solution as JSON,
//! reload it, and re-validate — every public surface a user touches, in
//! one pass.

use mfb_core::prelude::*;
use mfb_model::prelude::*;
use mfb_route::prelude::{plan_washes, RouterConfig};
use mfb_sim::prelude::event_log;
use mfb_viz::prelude::*;

const ASSAY: &str = r#"
assay "journey"
op prepA   mix    5s wash=4s
op prepB   mix    5s wash=2s
op merge   mix    4s wash=6s
op incub   heat   3s wash=1s
op split   filter 3s wash=2s
op readout detect 4s wash=0.2s
edge prepA -> merge -> incub -> split -> readout
edge prepB -> merge
alloc 2 1 1 1
"#;

fn wash() -> LogLinearWash {
    LogLinearWash::paper_calibrated()
}

#[test]
fn author_synthesize_audit_archive_reload() {
    // 1. Author.
    let assay = parse_assay(ASSAY).expect("parses");
    let alloc = assay.allocation.expect("file declares an allocation");
    let comps = alloc.instantiate(&ComponentLibrary::default());
    assert!(comps.covers(assay.graph.ops().map(|o| o.kind())));

    // 2. Synthesize and verify.
    let solution = Synthesizer::paper_dcsa()
        .synthesize(&assay.graph, &comps, &wash())
        .expect("synthesizes");
    let report = solution.verify(&assay.graph, &comps, &wash());
    assert!(report.is_valid(), "{:?}", report.violations);

    // 3. Audit: physics, area, washes, control.
    let audit = audit_transport_times(&solution, &PressureDriven::typical_pdms());
    assert!(audit.is_sound(), "short chip paths fit 2 s");
    let area = area_report(&solution);
    assert!(area.occupied_mm2 > 0.0);
    let plan = plan_washes(
        &solution.routing,
        &solution.schedule,
        &assay.graph,
        &solution.placement,
        &wash(),
        &RouterConfig::paper(),
    );
    assert!(plan.coverage() > 0.99, "every wash should be flushable");
    let control =
        mfb_control::ControlEstimate::of_chip(&solution.routing, &solution.placement, &comps);
    assert!(control.valves > 0);

    // 4. Render everything a user would look at.
    let gantt = render_gantt(&solution.schedule, &comps);
    assert!(gantt.contains("mixer"));
    let svg = render_svg(&solution.placement, &comps, Some(&solution.routing));
    assert!(svg.starts_with("<svg"));
    let svg_gantt = render_svg_gantt(&solution.schedule, &comps);
    assert!(svg_gantt.contains("</svg>"));
    let heat = render_heatmap(&solution.placement, &solution.routing);
    assert!(heat.contains('#'));
    let events = event_log(&solution.schedule, &solution.routing);
    assert!(!events.is_empty());

    // 5. Archive, reload, re-validate: the JSON is the solution.
    let json = serde_json::to_string(&solution).expect("serializes");
    let reloaded: Solution = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(reloaded, solution);
    let report2 = reloaded.verify(&assay.graph, &comps, &wash());
    assert!(report2.is_valid());

    // 6. The text format round-trips the assay itself.
    let text = write_assay(&assay.graph, Some(alloc));
    let again = parse_assay(&text).expect("round trip");
    assert_eq!(again.graph.len(), assay.graph.len());
    assert_eq!(again.allocation, Some(alloc));
}

#[test]
fn concentration_analysis_matches_assay_chemistry() {
    // The CPA reconstruction is a dilution ladder: concentrations must
    // decay monotonically along every chain.
    let b = mfb_bench_suite::table1_benchmarks()
        .into_iter()
        .find(|b| b.name == "CPA")
        .unwrap();
    let g = &b.graph;
    let root = g.sources().next().unwrap();
    let mut map = ConcentrationMap::new().source(root, 1.0, 1.0);
    for o in g.op_ids() {
        if o != root && g.op(o).kind() == OperationKind::Mix {
            // Every dilution/dye mix adds one part of buffer or reagent.
            map = map.source(o, 0.0, 1.0);
        }
    }
    let conc = map.profile(g);
    assert!((conc[root.index()] - 1.0).abs() < 1e-12);
    for (p, c) in g.edges() {
        if g.op(c).kind() == OperationKind::Mix {
            assert!(
                conc[c.index()] <= conc[p.index()] + 1e-12,
                "dilution must not concentrate: {p} {} -> {c} {}",
                conc[p.index()],
                conc[c.index()]
            );
        }
    }
    // Detects see exactly what their parent produced.
    for o in g.op_ids() {
        if g.op(o).kind() == OperationKind::Detect {
            let parent = g.parents(o)[0];
            assert_eq!(conc[o.index()], conc[parent.index()]);
        }
    }
}
