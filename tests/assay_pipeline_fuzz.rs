//! Bounded, deterministic slice of the grammar fuzzer, run on every
//! `cargo test`: a few hundred seeded cases through parse → lower →
//! synthesize → verify → DRC. The open-ended version lives in the
//! `assay_fuzz` binary (see CI's fuzz smoke job); this test pins the
//! same invariants on a fixed seed range so a regression fails locally
//! before it ever reaches the fuzzer.

use mfb_core::prelude::*;
use mfb_model::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use xtask_tests::assaygen::{mutated_assay, valid_assay, GenOptions};

fn config_for(file: &AssayFile) -> SynthesisConfig {
    let mut config = match file.flow.kind {
        Some(FlowKind::Baseline) => SynthesisConfig::paper_baseline(),
        _ => SynthesisConfig::paper_dcsa(),
    };
    if let Some(t_c) = file.flow.t_c {
        config.t_c = t_c;
    }
    if let Some(seed) = file.flow.seed {
        config = config.with_seed(seed);
    }
    config
}

/// Parses one program and, when accepted and allocatable, pushes it
/// through the full pipeline. Any panic or invalid accepted solution is
/// a test failure.
fn pipeline_survives(text: &str) -> Result<(), String> {
    let file = match parse_assay(text) {
        Err(e) => {
            if e.line() == 0 || e.column() == 0 {
                return Err(format!("error without a 1-based position: {e}"));
            }
            return Ok(());
        }
        Ok(f) => f,
    };
    let Some(allocation) = file.allocation else {
        return Ok(());
    };
    let comps = allocation.instantiate(&ComponentLibrary::default());
    let wash = LogLinearWash::paper_calibrated();
    let synth = Synthesizer::new(config_for(&file));
    match synth.synthesize_with_defects(&file.graph, &comps, &wash, &file.defects) {
        Err(_) => Ok(()),
        Ok(solution) => {
            let sim = solution.verify(&file.graph, &comps, &wash);
            if !sim.is_valid() {
                return Err("accepted program replayed invalid".into());
            }
            if !solution.drc(&file.graph, &comps, &wash).is_clean() {
                return Err("accepted program failed DRC".into());
            }
            Ok(())
        }
    }
}

#[test]
fn seeded_fuzz_slice_never_panics_and_accepted_inputs_verify() {
    let opts = GenOptions::default();
    // Keep the valid share small: valid programs run full synthesis and
    // dominate wall-clock time.
    for seed in 0..60u64 {
        let text = valid_assay(seed, &opts);
        let r = catch_unwind(AssertUnwindSafe(|| pipeline_survives(&text)));
        match r {
            Ok(Ok(())) => {}
            Ok(Err(msg)) => panic!("valid seed {seed}: {msg}\n---\n{text}"),
            Err(_) => panic!("valid seed {seed}: pipeline panicked\n---\n{text}"),
        }
    }
    for seed in 0..400u64 {
        let text = mutated_assay(seed, &opts);
        let r = catch_unwind(AssertUnwindSafe(|| pipeline_survives(&text)));
        match r {
            Ok(Ok(())) => {}
            Ok(Err(msg)) => panic!("mutated seed {seed}: {msg}\n---\n{text}"),
            Err(_) => panic!("mutated seed {seed}: pipeline panicked\n---\n{text}"),
        }
    }
}
