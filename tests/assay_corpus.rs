//! Literature-corpus golden suite: every `.assay` under `assets/corpus/`
//! must be canonically formatted, synthesize DRC-clean, replay valid,
//! produce byte-identical solutions under `MFB_THREADS=1` and `=8`, and
//! match the digest pinned in `assets/corpus/GOLDEN.json`.
//!
//! One `#[test]` because `MFB_THREADS` is process-global: parallel test
//! functions mutating it would race. Regenerate the goldens after an
//! intentional algorithm change with:
//!
//! ```sh
//! MFB_UPDATE_GOLDEN=1 cargo test -p xtask-tests --test assay_corpus
//! ```

use mfb_core::prelude::*;
use mfb_model::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../assets/corpus")
}

/// FNV-1a 64 over the serialized solution: a compact, stable digest.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Mirrors the flag-free CLI path: the file's `flow` statement picks the
/// base config, its `t_c=`/`seed=` overlay it.
fn config_for(file: &AssayFile) -> SynthesisConfig {
    let mut config = match file.flow.kind {
        Some(FlowKind::Baseline) => SynthesisConfig::paper_baseline(),
        _ => SynthesisConfig::paper_dcsa(),
    };
    if let Some(t_c) = file.flow.t_c {
        config.t_c = t_c;
    }
    if let Some(seed) = file.flow.seed {
        config = config.with_seed(seed);
    }
    config
}

/// Synthesizes one corpus file and returns the serialized solution.
fn synthesize_json(file: &AssayFile) -> String {
    let allocation = file.allocation.expect("corpus files carry an alloc line");
    let comps = allocation.instantiate(&ComponentLibrary::default());
    let wash = LogLinearWash::paper_calibrated();
    let synth = Synthesizer::new(config_for(file));
    let solution = synth
        .synthesize_with_defects(&file.graph, &comps, &wash, &file.defects)
        .expect("corpus files must synthesize");

    let sim = solution.verify(&file.graph, &comps, &wash);
    assert!(sim.is_valid(), "corpus solution must replay valid");
    let drc = solution.drc(&file.graph, &comps, &wash);
    assert!(drc.is_clean(), "corpus solution must pass DRC: {drc:?}");

    serde_json::to_string(&solution).expect("Solution serializes")
}

#[test]
fn corpus_synthesizes_clean_and_matches_goldens_across_thread_counts() {
    let dir = corpus_dir();
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("assets/corpus exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "assay"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 8,
        "the corpus holds at least eight assays, found {}",
        files.len()
    );

    let mut digests: BTreeMap<String, String> = BTreeMap::new();
    for path in &files {
        let name = path
            .file_name()
            .expect("file name")
            .to_string_lossy()
            .into_owned();
        let text = std::fs::read_to_string(path).expect("corpus file reads");

        // Canonical form: what `mfb fmt --check` enforces in CI.
        let ast = parse_assay_ast(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            write_assay_ast(&ast),
            text,
            "{name} is not canonically formatted (run `mfb fmt` on it)"
        );

        let file = ast.lower().unwrap_or_else(|e| panic!("{name}: {e}"));

        // Byte-identical solutions whatever the worker-pool width.
        std::env::set_var("MFB_THREADS", "1");
        let serial = synthesize_json(&file);
        std::env::set_var("MFB_THREADS", "8");
        let parallel = synthesize_json(&file);
        std::env::remove_var("MFB_THREADS");
        assert_eq!(serial, parallel, "{name}: solution depends on MFB_THREADS");

        digests.insert(name, format!("{:016x}", fnv64(serial.as_bytes())));
    }

    let golden_path = dir.join("GOLDEN.json");
    let mut rendered = String::from("{\n");
    for (i, (name, digest)) in digests.iter().enumerate() {
        let comma = if i + 1 < digests.len() { "," } else { "" };
        rendered.push_str(&format!("  {name:?}: {digest:?}{comma}\n"));
    }
    rendered.push_str("}\n");

    if std::env::var_os("MFB_UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &rendered).expect("write GOLDEN.json");
        eprintln!("updated {}", golden_path.display());
        return;
    }

    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "{} missing ({e}); regenerate with MFB_UPDATE_GOLDEN=1",
            golden_path.display()
        )
    });
    assert_eq!(
        golden, rendered,
        "corpus digests drifted from GOLDEN.json; if the change is \
         intentional, regenerate with MFB_UPDATE_GOLDEN=1"
    );
}
