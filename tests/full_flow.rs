//! Full-pipeline integration: every Table-I benchmark through both flows,
//! replay-validated and deterministic.

use mfb_bench_suite::table1_benchmarks;
use mfb_core::prelude::*;
use mfb_model::prelude::*;

fn wash() -> LogLinearWash {
    LogLinearWash::paper_calibrated()
}

#[test]
fn every_benchmark_synthesizes_and_replays_under_both_flows() {
    let lib = ComponentLibrary::default();
    for b in table1_benchmarks() {
        let comps = b.components(&lib);
        for (flow, synth) in [
            ("ours", Synthesizer::paper_dcsa()),
            ("ba", Synthesizer::paper_baseline()),
        ] {
            let sol = synth
                .synthesize(&b.graph, &comps, &wash())
                .unwrap_or_else(|e| panic!("{} [{flow}]: {e}", b.name));
            let report = sol.verify(&b.graph, &comps, &wash());
            assert!(
                report.is_valid(),
                "{} [{flow}]: {:?}",
                b.name,
                report.violations
            );
        }
    }
}

#[test]
fn dcsa_flow_never_delays_the_schedule() {
    let lib = ComponentLibrary::default();
    for b in table1_benchmarks() {
        let comps = b.components(&lib);
        let sol = Synthesizer::paper_dcsa()
            .synthesize(&b.graph, &comps, &wash())
            .unwrap();
        assert_eq!(
            sol.routing.completion(),
            sol.schedule.completion_time(),
            "{}: the conflict-aware router must realize the schedule exactly",
            b.name
        );
        let m = SolutionMetrics::of(&sol, &comps);
        assert_eq!(m.total_delay, Duration::ZERO, "{}", b.name);
    }
}

#[test]
fn whole_flow_is_deterministic() {
    let lib = ComponentLibrary::default();
    for b in table1_benchmarks().into_iter().take(3) {
        let comps = b.components(&lib);
        let a = Synthesizer::paper_dcsa()
            .synthesize(&b.graph, &comps, &wash())
            .unwrap();
        let c = Synthesizer::paper_dcsa()
            .synthesize(&b.graph, &comps, &wash())
            .unwrap();
        assert_eq!(a.schedule, c.schedule, "{}", b.name);
        assert_eq!(a.placement, c.placement, "{}", b.name);
        assert_eq!(a.routing, c.routing, "{}", b.name);
    }
}

#[test]
fn metrics_are_internally_consistent() {
    let lib = ComponentLibrary::default();
    for b in table1_benchmarks() {
        let comps = b.components(&lib);
        let sol = Synthesizer::paper_dcsa()
            .synthesize(&b.graph, &comps, &wash())
            .unwrap();
        let m = SolutionMetrics::of(&sol, &comps);
        assert!(m.utilization > 0.0 && m.utilization <= 1.0, "{}", b.name);
        assert!(
            m.execution_time.as_secs_f64() >= b.graph.critical_path(Duration::ZERO).as_secs_f64(),
            "{}: below critical path",
            b.name
        );
        assert_eq!(
            m.transports + m.in_place,
            b.graph.edge_count(),
            "{}: every dependency delivered exactly once",
            b.name
        );
        // Channel length equals distinct cells times pitch.
        let grid = sol.placement.grid();
        assert!(
            (m.channel_length_mm - grid.cells_to_mm(sol.routing.used_cells as u64)).abs() < 1e-9,
            "{}",
            b.name
        );
    }
}

#[test]
fn schedule_validator_accepts_flow_outputs() {
    let lib = ComponentLibrary::default();
    for b in table1_benchmarks() {
        let comps = b.components(&lib);
        for synth in [Synthesizer::paper_dcsa(), Synthesizer::paper_baseline()] {
            let sol = synth.synthesize(&b.graph, &comps, &wash()).unwrap();
            let v = mfb_sched::validate::validate(&sol.schedule, &b.graph, &comps);
            assert!(v.is_empty(), "{}: {:?}", b.name, v);
        }
    }
}

#[test]
fn solutions_serialize_roundtrip() {
    let lib = ComponentLibrary::default();
    let b = &table1_benchmarks()[0];
    let comps = b.components(&lib);
    let sol = Synthesizer::paper_dcsa()
        .synthesize(&b.graph, &comps, &wash())
        .unwrap();

    // Round-trip every stage artifact through JSON: anything the flow
    // produces can be archived and reloaded bit-identically.
    let g2: SequencingGraph = json_roundtrip(&b.graph);
    assert_eq!(g2, b.graph);
    let s2: mfb_sched::prelude::Schedule = json_roundtrip(&sol.schedule);
    assert_eq!(s2, sol.schedule);
    let p2: mfb_place::prelude::Placement = json_roundtrip(&sol.placement);
    assert_eq!(p2, sol.placement);
    let r2: mfb_route::prelude::Routing = json_roundtrip(&sol.routing);
    assert_eq!(r2, sol.routing);
}

fn json_roundtrip<T: serde::Serialize + serde::de::DeserializeOwned>(value: &T) -> T {
    let text = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&text).expect("deserializes")
}
