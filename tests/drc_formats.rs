//! DRC on the shipped example assay: the full pipeline comes out clean,
//! and a corrupted artifact reports the expected rule ids through all
//! three output formats (pretty, JSON, SARIF).

use mfb_core::prelude::*;
use mfb_model::prelude::*;
use mfb_verify::prelude::*;

fn wash() -> LogLinearWash {
    LogLinearWash::paper_calibrated()
}

fn example_pipeline() -> (SequencingGraph, ComponentSet, Solution) {
    let text = include_str!("../assets/example.assay");
    let assay = mfb_model::text::parse_assay(text).expect("example assay parses");
    let alloc = assay.allocation.expect("example assay has an alloc line");
    let comps = alloc.instantiate(&ComponentLibrary::default());
    let sol = Synthesizer::paper_dcsa()
        .synthesize(&assay.graph, &comps, &wash())
        .expect("example assay synthesizes");
    (assay.graph, comps, sol)
}

#[test]
fn example_assay_pipeline_is_drc_clean() {
    let (g, comps, sol) = example_pipeline();
    let report = sol.drc(&g, &comps, &wash());
    assert_eq!(
        report.count(Severity::Error),
        0,
        "errors on the example assay: {:?}",
        report.diagnostics
    );
}

#[test]
fn corrupted_example_reports_rule_ids_in_all_formats() {
    let (g, comps, mut sol) = example_pipeline();
    // Teleport a mid-path cell: breaks contiguity (DRC-ROUTE-001) at
    // minimum, possibly traversal/conflict rules too.
    let pi = (0..sol.routing.paths.len())
        .find(|&i| sol.routing.paths[i].cells.len() > 2)
        .expect("the example assay routes at least one multi-cell path");
    let grid = sol.placement.grid();
    let mid = sol.routing.paths[pi].cells.len() / 2;
    sol.routing.paths[pi].cells[mid] = CellPos::new(grid.width - 1, grid.height - 1);

    let registry = RuleRegistry::with_all_rules();
    let report = sol.drc_with(
        &g,
        &comps,
        &wash(),
        mfb_route::prelude::RouterConfig::paper(),
        &registry,
    );
    assert!(report.count(Severity::Error) > 0);
    let expected: Vec<&str> = report.diagnostics.iter().map(|d| d.rule.as_str()).collect();
    assert!(
        expected.iter().any(|r| r.starts_with("DRC-ROUTE-")),
        "teleport should trip a routing rule: {expected:?}"
    );

    let pretty = render_pretty(&report);
    let json = render_json(&report);
    let sarif = render_sarif(&report, &registry);
    for rule in &expected {
        assert!(pretty.contains(rule), "pretty output missing {rule}");
        assert!(json.contains(rule), "JSON output missing {rule}");
        assert!(sarif.contains(rule), "SARIF output missing {rule}");
    }

    // Both JSON documents parse and carry the right headline fields.
    let json_doc: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert!(json_doc.get("summary").is_some());
    let sarif_doc: serde_json::Value = serde_json::from_str(&sarif).unwrap();
    assert_eq!(
        sarif_doc.get("version").and_then(serde_json::Value::as_str),
        Some("2.1.0")
    );
}
