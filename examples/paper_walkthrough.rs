//! The paper, stage by stage: runs the Fig. 2(a) example through every
//! phase of the top-down flow and prints what each algorithm decided —
//! a guided tour of the whole API surface.
//!
//! Run with `cargo run --release --example paper_walkthrough`.

use mfb_bench_suite::motivating_example;
use mfb_core::prelude::*;
use mfb_model::prelude::*;
use mfb_place::prelude::*;
use mfb_route::prelude::*;
use mfb_sched::prelude::*;
use mfb_sim::prelude::*;
use mfb_viz::prelude::*;

fn main() {
    let wash = LogLinearWash::paper_calibrated();
    let bench = motivating_example();
    let graph = &bench.graph;
    let comps = bench.components(&ComponentLibrary::default());

    println!("== 0. The bioassay (paper Fig. 2(a)) ==");
    println!("{graph}");
    for op in graph.ops() {
        println!("  {}  wash {}", op, wash.wash_time(op.output_diffusion()));
    }

    println!("\n== 1. Priority values (Algorithm 1, lines 1-2) ==");
    let t_c = Duration::from_secs(2);
    let prio = graph.priority_values(t_c);
    for o in graph.op_ids() {
        println!("  {}: priority {}", o, prio[o.index()]);
    }
    let timing = TimingAnalysis::of(graph, t_c);
    println!(
        "  critical path {} | critical ops: {:?}",
        timing.makespan,
        timing.critical_ops().collect::<Vec<_>>()
    );

    println!("\n== 2. Binding & scheduling (Algorithm 1) ==");
    let sched = schedule(graph, &comps, &wash, &SchedulerConfig::paper_dcsa()).expect("schedules");
    println!(
        "  completes {} | {} in-place (Case I), {} transports, cache {}",
        sched.completion_time(),
        sched.in_place_count(),
        sched.transports().len(),
        sched.total_cache_time()
    );
    println!("{}", render_gantt(&sched, &comps));

    println!("== 3. Connection priorities (Eq. (4)) and placement (Eq. (3)) ==");
    let nets = NetList::build(&sched, graph, &wash, 0.6, 0.4);
    for n in nets.nets() {
        println!("  {n}");
    }
    let placement = place_sa_auto(&comps, &nets, &SaConfig::paper()).expect("places");
    println!(
        "  energy {:.1} on {}",
        energy(&placement, &nets),
        placement.grid()
    );

    println!("\n== 4. Conflict-free routing (Eq. (5)) ==");
    let routing =
        route_dcsa(&sched, graph, &placement, &wash, &RouterConfig::paper()).expect("routes");
    println!("  {routing}");
    println!("{}", render_ascii(&placement, &comps, Some(&routing)));

    println!("== 5. Independent replay validation ==");
    let report = replay(graph, &comps, &sched, &placement, &routing, &wash);
    assert!(report.is_valid(), "{:?}", report.violations);
    println!(
        "  physically executable; peak {} parallel transports, {} channel cells",
        report.stats.peak_parallel_transports, report.stats.used_cells
    );

    println!("\n== 6. The same assay through the one-call API ==");
    let solution = Synthesizer::paper_dcsa()
        .synthesize(graph, &comps, &wash)
        .expect("synthesizes");
    let metrics = SolutionMetrics::of(&solution, &comps);
    println!(
        "  exec {} | utilization {:.1}% | channels {:.0} mm",
        metrics.execution_time,
        metrics.utilization * 100.0,
        metrics.channel_length_mm
    );
}
