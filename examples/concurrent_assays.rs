//! Concurrent assays on one chip — the headline promise of DCSA platforms
//! ("hundreds of such assays can be integrated … and automatically
//! completed").
//!
//! Runs PCR and IVD together on a shared chip and compares against running
//! them back to back: the merged schedule overlaps the two assays on the
//! same components, and the distributed channel storage absorbs the extra
//! fluid traffic.
//!
//! Run with `cargo run --release --example concurrent_assays`.

use mfb_bench_suite::table1_benchmarks;
use mfb_core::prelude::*;
use mfb_model::prelude::*;

fn main() {
    let wash = LogLinearWash::paper_calibrated();
    let benches = table1_benchmarks();
    let pcr = benches.iter().find(|b| b.name == "PCR").unwrap();
    let ivd = benches.iter().find(|b| b.name == "IVD").unwrap();

    // A chip able to host both: the union of the two allocations.
    let alloc = Allocation::new(4, 0, 0, 2);
    let comps = alloc.instantiate(&ComponentLibrary::default());

    // Serial: one after the other on the same chip.
    let serial: Duration = [&pcr.graph, &ivd.graph]
        .into_iter()
        .map(|g| {
            let sol = Synthesizer::paper_dcsa()
                .synthesize(g, &comps, &wash)
                .expect("synthesizes");
            SolutionMetrics::of(&sol, &comps).execution_time
        })
        .sum();

    // Concurrent: the disjoint union scheduled as one workload.
    let mut b = SequencingGraph::builder();
    b.name("PCR+IVD");
    b.append_graph(&pcr.graph);
    b.append_graph(&ivd.graph);
    let merged = b.build().expect("disjoint union is a DAG");

    let sol = Synthesizer::paper_dcsa()
        .synthesize(&merged, &comps, &wash)
        .expect("synthesizes");
    assert!(sol.verify(&merged, &comps, &wash).is_valid());
    let m = SolutionMetrics::of(&sol, &comps);

    println!("chip: {alloc} ({} components)", comps.len());
    println!("PCR then IVD, serial : {serial}");
    println!("PCR + IVD, concurrent: {}", m.execution_time);
    println!(
        "speedup {:.2}x | utilization {:.1}% | channels {:.0} mm | cache {}",
        serial.as_secs_f64() / m.execution_time.as_secs_f64(),
        m.utilization * 100.0,
        m.channel_length_mm,
        m.cache_time
    );
    assert!(
        m.execution_time <= serial,
        "concurrency must not be slower than serial execution"
    );
}
