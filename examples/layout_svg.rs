//! Layout rendering: synthesize a benchmark and emit its chip layout as an
//! SVG file plus a terminal map and schedule Gantt chart — the workspace's
//! version of the paper's Fig. 3/Fig. 4 illustrations.
//!
//! Run with `cargo run --release --example layout_svg [benchmark] [out.svg]`
//! (defaults: `Synthetic1`, `layout.svg`).

use mfb_bench_suite::benchmark_by_name;
use mfb_core::prelude::*;
use mfb_model::prelude::*;
use mfb_viz::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let bench = args.next().unwrap_or_else(|| "Synthetic1".to_string());
    let out = args.next().unwrap_or_else(|| "layout.svg".to_string());

    let wash = LogLinearWash::paper_calibrated();
    let b = benchmark_by_name(&bench).expect("benchmark exists; see `mfb list`");
    let comps = b.components(&ComponentLibrary::default());
    let solution = Synthesizer::paper_dcsa()
        .synthesize(&b.graph, &comps, &wash)
        .expect("synthesis succeeds");
    assert!(solution.verify(&b.graph, &comps, &wash).is_valid());

    println!("== {} placed and routed ==", b.name);
    println!(
        "{}",
        render_ascii(&solution.placement, &comps, Some(&solution.routing))
    );
    println!("{}", render_gantt(&solution.schedule, &comps));

    let svg = render_svg(&solution.placement, &comps, Some(&solution.routing));
    std::fs::write(&out, svg).expect("SVG written");
    println!("layout written to {out}");
}
