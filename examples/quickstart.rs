//! Quickstart: describe a bioassay, synthesize a DCSA chip for it, and
//! inspect the result.
//!
//! Run with `cargo run --release --example quickstart`.

use mfb_core::prelude::*;
use mfb_model::prelude::*;

fn main() {
    // 1. Physics: the paper-calibrated wash model maps each fluid's
    //    diffusion coefficient to the time needed to flush its residue.
    let wash = LogLinearWash::paper_calibrated();
    // Helper: a fluid whose residue takes `secs` seconds to wash.
    let fluid = |secs: f64| wash.coefficient_for(Duration::from_secs_f64(secs));

    // 2. The bioassay: two sample preparations merge, get heated, and are
    //    read out — a miniature immunoassay.
    let mut b = SequencingGraph::builder();
    b.name("quickstart-assay");
    let prep_a = b.labelled_operation(
        OperationKind::Mix,
        Duration::from_secs(5),
        fluid(4.0),
        "dilute sample A",
    );
    let prep_b = b.labelled_operation(
        OperationKind::Mix,
        Duration::from_secs(5),
        fluid(2.0),
        "dilute sample B",
    );
    let merge = b.labelled_operation(
        OperationKind::Mix,
        Duration::from_secs(4),
        fluid(6.0),
        "merge A+B",
    );
    let denature = b.labelled_operation(
        OperationKind::Heat,
        Duration::from_secs(3),
        fluid(1.0),
        "denature",
    );
    let read = b.labelled_operation(
        OperationKind::Detect,
        Duration::from_secs(4),
        fluid(0.2),
        "optical readout",
    );
    b.edge(prep_a, merge).unwrap();
    b.edge(prep_b, merge).unwrap();
    b.edge(merge, denature).unwrap();
    b.edge(denature, read).unwrap();
    let assay = b.build().expect("assay is a DAG");

    // 3. The chip: two mixers, one heater, one detector.
    let chip = Allocation::new(2, 1, 0, 1).instantiate(&ComponentLibrary::default());

    // 4. Synthesize with the paper's flow (storage-aware scheduling,
    //    SA placement, conflict-free routing)…
    let solution = Synthesizer::paper_dcsa()
        .synthesize(&assay, &chip, &wash)
        .expect("synthesis succeeds");

    // …and replay it through the independent validator.
    let report = solution.verify(&assay, &chip, &wash);
    assert!(report.is_valid(), "solution must be physically executable");

    // 5. Inspect.
    let metrics = SolutionMetrics::of(&solution, &chip);
    println!("assay          : {assay}");
    println!("execution time : {}", metrics.execution_time);
    println!("utilization    : {:.1}%", metrics.utilization * 100.0);
    println!("channel length : {:.0} mm", metrics.channel_length_mm);
    println!("cache in chans : {}", metrics.cache_time);
    println!("in-place (Case I) deliveries: {}", metrics.in_place);
    println!(
        "peak parallel transports    : {}",
        report.stats.peak_parallel_transports
    );
}
