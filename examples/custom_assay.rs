//! Custom everything: a user-defined bioassay with a tabulated wash model
//! and a custom component library, compared under both flows.
//!
//! Shows the extension points a downstream user has: wash physics
//! ([`TableWash`]), component geometry ([`ComponentLibrary`]), and flow
//! configuration ([`SynthesisConfig`]).
//!
//! Run with `cargo run --release --example custom_assay`.

use mfb_core::prelude::*;
use mfb_model::prelude::*;

fn main() {
    // A lab-specific wash table: we only distinguish three contaminant
    // classes (buffer / protein / cell debris).
    let wash = TableWash::new(
        vec![
            (
                DiffusionCoefficient::SMALL_MOLECULE,
                Duration::from_secs_f64(0.5),
            ),
            (DiffusionCoefficient::PROTEIN, Duration::from_secs(3)),
            (DiffusionCoefficient::VIRUS, Duration::from_secs(8)),
        ],
        Duration::from_secs_f64(0.5),
    );

    // A plate with chunkier mixers and tiny detectors.
    let library = ComponentLibrary::new([
        Footprint::new(5, 4), // mixer
        Footprint::new(3, 3), // heater
        Footprint::new(3, 2), // filter
        Footprint::new(1, 1), // detector
    ]);

    // The assay: filter a raw sample, split it into three analyses that
    // each mix with a different reagent, then detect all three.
    let mut b = SequencingGraph::builder();
    b.name("three-way-panel");
    let filter = b.labelled_operation(
        OperationKind::Filter,
        Duration::from_secs(6),
        DiffusionCoefficient::VIRUS,
        "remove debris",
    );
    for i in 0..3 {
        let mix = b.labelled_operation(
            OperationKind::Mix,
            Duration::from_secs(4 + i),
            DiffusionCoefficient::PROTEIN,
            format!("reagent {i}"),
        );
        let heat = b.labelled_operation(
            OperationKind::Heat,
            Duration::from_secs(3),
            DiffusionCoefficient::PROTEIN,
            format!("incubate {i}"),
        );
        let det = b.labelled_operation(
            OperationKind::Detect,
            Duration::from_secs(5),
            DiffusionCoefficient::SMALL_MOLECULE,
            format!("read {i}"),
        );
        b.edge(filter, mix).unwrap();
        b.edge(mix, heat).unwrap();
        b.edge(heat, det).unwrap();
    }
    let assay = b.build().unwrap();
    let chip = Allocation::new(2, 1, 1, 2).instantiate(&library);

    println!(
        "{assay}: critical path {}",
        assay.critical_path(Duration::from_secs(2))
    );
    println!();

    for (label, synth) in [
        ("ours (DCSA-aware)", Synthesizer::paper_dcsa()),
        ("baseline (BA)", Synthesizer::paper_baseline()),
    ] {
        let solution = synth.synthesize(&assay, &chip, &wash).expect("synthesizes");
        assert!(solution.verify(&assay, &chip, &wash).is_valid());
        let m = SolutionMetrics::of(&solution, &chip);
        println!("{label}:");
        println!(
            "  execution {}   utilization {:.1}%",
            m.execution_time,
            m.utilization * 100.0
        );
        println!(
            "  channels {:.0} mm   cache {}   channel wash {}",
            m.channel_length_mm, m.cache_time, m.channel_wash_time
        );
        println!("  in-place {}   delay {}", m.in_place, m.total_delay);
        println!();
    }
}
