//! Design-space exploration: how many mixers does the CPA assay actually
//! need, and how sensitive is the flow to the transport-time constant
//! `t_c`?
//!
//! Sweeps the mixer count of the CPA benchmark's allocation and, separately,
//! `t_c`, printing the latency/utilization trade-off each time — the kind
//! of study a chip architect runs before committing to a fabrication mask.
//!
//! Run with `cargo run --release --example design_space`.

use mfb_bench_suite::table1_benchmarks;
use mfb_core::prelude::*;
use mfb_model::prelude::*;

fn main() {
    let wash = LogLinearWash::paper_calibrated();
    let lib = ComponentLibrary::default();
    let cpa = table1_benchmarks()
        .into_iter()
        .find(|b| b.name == "CPA")
        .expect("CPA is in the suite");

    println!("== Mixer-count sweep (CPA, 2 detectors, t_c = 2 s) ==");
    println!(
        "{:>7} {:>9} {:>9} {:>12} {:>9}",
        "Mixers", "Exec(s)", "Util(%)", "Channel(mm)", "Cache(s)"
    );
    for mixers in 2..=10u32 {
        let alloc = Allocation::new(mixers, 0, 0, 2);
        let comps = alloc.instantiate(&lib);
        match Synthesizer::paper_dcsa().synthesize(&cpa.graph, &comps, &wash) {
            Ok(sol) => {
                let m = SolutionMetrics::of(&sol, &comps);
                println!(
                    "{:>7} {:>9.0} {:>9.1} {:>12.0} {:>9.1}",
                    mixers,
                    m.execution_time.as_secs_f64(),
                    m.utilization * 100.0,
                    m.channel_length_mm,
                    m.cache_time.as_secs_f64()
                );
            }
            Err(e) => println!("{mixers:>7} synthesis failed: {e}"),
        }
    }

    println!();
    println!("== Transport-time sweep (CPA, paper allocation) ==");
    println!(
        "{:>7} {:>9} {:>9} {:>9}",
        "t_c(s)", "Exec(s)", "Util(%)", "Cache(s)"
    );
    let comps = cpa.allocation.instantiate(&lib);
    for tc_tenths in [5u64, 10, 20, 40, 80] {
        let mut cfg = mfb_core::config::SynthesisConfig::paper_dcsa();
        cfg.t_c = Duration::from_ticks(tc_tenths);
        match Synthesizer::new(cfg).synthesize(&cpa.graph, &comps, &wash) {
            Ok(sol) => {
                let m = SolutionMetrics::of(&sol, &comps);
                println!(
                    "{:>7.1} {:>9.0} {:>9.1} {:>9.1}",
                    tc_tenths as f64 / 10.0,
                    m.execution_time.as_secs_f64(),
                    m.utilization * 100.0,
                    m.cache_time.as_secs_f64()
                );
            }
            Err(e) => println!("{:>7.1} synthesis failed: {e}", tc_tenths as f64 / 10.0),
        }
    }
}
