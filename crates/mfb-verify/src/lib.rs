//! Unified static design-rule checker (DRC) for DCSA synthesis results.
//!
//! The synthesis pipeline of Chen et al. (DATE 2019) produces a stack of
//! artifacts — sequencing graph, schedule, floorplan, routed paths with a
//! wash plan — and the workspace historically checked them with two
//! separate mechanisms: `mfb_sched::validate` (schedule invariants) and
//! the `mfb-sim` replay engine (cell-level physics). This crate unifies
//! both behind a single [`RuleRegistry`] of named, individually
//! toggleable design rules, adds cross-stage rules neither legacy checker
//! can express, and renders the findings as pretty terminal text, JSON,
//! or SARIF 2.1.0 for code-scanning UIs.
//!
//! Each rule has a stable `DRC-<AREA>-<NNN>` identifier (for example
//! `DRC-ROUTE-003 cell-conflict` for §II-C.2 conflict classes 1–2) and
//! emits structured [`Diagnostic`]s with a severity, a source location
//! (operation, task, component, cell or edge) and an optional time
//! window. The legacy checkers keep working — the registry wraps them as
//! adapter rules, so its findings are a superset of theirs by
//! construction.
//!
//! # Example
//!
//! ```no_run
//! use mfb_verify::prelude::*;
//! # fn demo(graph: &mfb_model::prelude::SequencingGraph,
//! #         components: &mfb_model::prelude::ComponentSet,
//! #         schedule: &mfb_sched::prelude::Schedule,
//! #         placement: &mfb_place::prelude::Placement,
//! #         routing: &mfb_route::prelude::Routing,
//! #         wash: &dyn mfb_model::prelude::WashModel) {
//! let input = VerifyInput::new(
//!     graph, components, schedule, placement, routing, wash,
//!     mfb_route::prelude::RouterConfig::paper(),
//! );
//! let report = RuleRegistry::with_all_rules().run(&input);
//! println!("{}", render_pretty(&report));
//! std::process::exit(report.exit_code());
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod diag;
pub mod input;
pub mod render;
pub mod rules;

pub use diag::{Diagnostic, EdgeRef, Location, Severity, VerifyReport};
pub use input::VerifyInput;
pub use render::{render_json, render_pretty, render_sarif, render_sarif_with};
pub use rules::{
    rule_for_schedule_violation, rule_for_sim_violation, Rule, RuleInfo, RuleRegistry,
};

/// Everything a DRC consumer normally needs.
pub mod prelude {
    pub use crate::diag::{Diagnostic, EdgeRef, Location, Severity, VerifyReport};
    pub use crate::input::VerifyInput;
    pub use crate::render::{render_json, render_pretty, render_sarif, render_sarif_with};
    pub use crate::rules::{
        rule_for_schedule_violation, rule_for_sim_violation, Rule, RuleInfo, RuleRegistry,
    };
}
