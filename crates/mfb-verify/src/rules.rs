//! The rule registry: every design rule has a stable `DRC-…` identifier,
//! a default severity, and can be toggled individually.
//!
//! Two rule families exist:
//!
//! * **adapters** wrap the legacy checkers (`mfb_sched::validate`, the
//!   `mfb-sim` replay engine) so that every violation those report shows
//!   up as exactly one diagnostic under a stable rule id — the registry's
//!   findings are a superset of the legacy ones *by construction*;
//! * **native** cross-stage rules check invariants no single stage can
//!   see: schedule↔floorplan binding consistency, cached fluids blocking
//!   other transports, and wash-plan coverage of every channel wash.

use crate::diag::{Diagnostic, EdgeRef, Location, Severity, VerifyReport};
use crate::input::VerifyInput;
use mfb_model::prelude::*;
use mfb_sched::prelude::ScheduleViolation;
use mfb_sim::prelude::SimViolation;
use std::collections::BTreeSet;
use std::fmt;

/// Static description of one design rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleInfo {
    /// Stable identifier, e.g. `DRC-ROUTE-003`.
    pub id: &'static str,
    /// Short kebab-case name, e.g. `cell-conflict`.
    pub name: &'static str,
    /// One-sentence description of what the rule checks.
    pub description: &'static str,
    /// Severity of this rule's findings.
    pub severity: Severity,
}

/// One design rule: a named check over a complete synthesis result.
///
/// `Send + Sync` so a shared [`RuleRegistry`] can verify independent
/// solutions from worker threads (e.g. the `mfb faults --sweep` trials).
pub trait Rule: fmt::Debug + Send + Sync {
    /// The rule's static description.
    fn info(&self) -> RuleInfo;
    /// Runs the check; returns every finding (empty = rule satisfied).
    fn check(&self, input: &VerifyInput<'_>) -> Vec<Diagnostic>;
}

/// The rule id under which a legacy schedule violation is reported.
pub fn rule_for_schedule_violation(v: &ScheduleViolation) -> &'static str {
    match v {
        ScheduleViolation::ComponentOverlap { .. } => "DRC-SCHED-001",
        ScheduleViolation::KindMismatch { .. } => "DRC-SCHED-002",
        ScheduleViolation::PrecedenceViolation { .. } => "DRC-SCHED-003",
        ScheduleViolation::TransportTiming { .. }
        | ScheduleViolation::TransportEndpoints { .. } => "DRC-SCHED-004",
        ScheduleViolation::MissingDelivery { .. }
        | ScheduleViolation::InPlaceAcrossComponents { .. } => "DRC-SCHED-005",
        ScheduleViolation::WashOverlap { .. } => "DRC-WASH-001",
        _ => "DRC-MISC-001",
    }
}

/// The rule id under which a legacy replay violation is reported.
pub fn rule_for_sim_violation(v: &SimViolation) -> &'static str {
    match v {
        SimViolation::PathDiscontiguous { .. }
        | SimViolation::BadEndpoint { .. }
        | SimViolation::MissingPath { .. } => "DRC-ROUTE-001",
        SimViolation::PathThroughComponent { .. } => "DRC-ROUTE-002",
        SimViolation::CellConflict { .. } => "DRC-ROUTE-003",
        SimViolation::WindowOutsideLifetime { .. } => "DRC-ROUTE-004",
        SimViolation::WashGap { .. } => "DRC-WASH-002",
        SimViolation::ComponentOverlap { .. } => "DRC-EXEC-001",
        SimViolation::PrecedenceViolation { .. } => "DRC-EXEC-002",
        SimViolation::IllegalPlacement => "DRC-PLACE-001",
        SimViolation::ShapeMismatch { .. } => "DRC-SHAPE-001",
        _ => "DRC-MISC-001",
    }
}

fn location_for_schedule_violation(v: &ScheduleViolation) -> Location {
    match *v {
        ScheduleViolation::KindMismatch { op, .. } => Location::Op(op),
        ScheduleViolation::ComponentOverlap { component, .. }
        | ScheduleViolation::WashOverlap { component, .. } => Location::Component(component),
        ScheduleViolation::PrecedenceViolation { parent, child }
        | ScheduleViolation::InPlaceAcrossComponents { parent, child }
        | ScheduleViolation::MissingDelivery { parent, child } => {
            Location::Edge(EdgeRef { parent, child })
        }
        ScheduleViolation::TransportTiming { task }
        | ScheduleViolation::TransportEndpoints { task } => Location::Task(task),
        _ => Location::Chip,
    }
}

fn location_for_sim_violation(v: &SimViolation) -> Location {
    match *v {
        SimViolation::PathDiscontiguous { task }
        | SimViolation::BadEndpoint { task }
        | SimViolation::MissingPath { task }
        | SimViolation::WindowOutsideLifetime { task } => Location::Task(task),
        SimViolation::PathThroughComponent { cell, .. }
        | SimViolation::CellConflict { cell, .. }
        | SimViolation::WashGap { cell, .. } => Location::Cell(cell),
        SimViolation::ComponentOverlap { component, .. } => Location::Component(component),
        SimViolation::PrecedenceViolation { parent, child } => {
            Location::Edge(EdgeRef { parent, child })
        }
        SimViolation::IllegalPlacement | SimViolation::ShapeMismatch { .. } => Location::Chip,
        _ => Location::Chip,
    }
}

fn diag(rule: &'static str, severity: Severity, message: String, location: Location) -> Diagnostic {
    Diagnostic {
        rule: rule.to_string(),
        severity,
        message,
        location,
        window: None,
    }
}

/// Adapter over `mfb_sched::validate`: reports the legacy violations whose
/// mapped rule id matches `self`'s.
#[derive(Debug)]
struct SchedAdapter(RuleInfo);

impl Rule for SchedAdapter {
    fn info(&self) -> RuleInfo {
        self.0
    }

    fn check(&self, input: &VerifyInput<'_>) -> Vec<Diagnostic> {
        if !input.ids_in_range() {
            return Vec::new(); // DRC-BIND-001 reports the dangling ids
        }
        input
            .schedule_violations()
            .iter()
            .filter(|v| rule_for_schedule_violation(v) == self.0.id)
            .map(|v| {
                diag(
                    self.0.id,
                    self.0.severity,
                    v.to_string(),
                    location_for_schedule_violation(v),
                )
            })
            .collect()
    }
}

/// Adapter over the `mfb-sim` replay engine, analogous to [`SchedAdapter`].
#[derive(Debug)]
struct SimAdapter(RuleInfo);

impl Rule for SimAdapter {
    fn info(&self) -> RuleInfo {
        self.0
    }

    fn check(&self, input: &VerifyInput<'_>) -> Vec<Diagnostic> {
        if !input.ids_in_range() {
            return Vec::new(); // DRC-BIND-001 reports the dangling ids
        }
        input
            .replay_report()
            .violations
            .iter()
            .filter(|v| rule_for_sim_violation(v) == self.0.id)
            .map(|v| {
                diag(
                    self.0.id,
                    self.0.severity,
                    v.to_string(),
                    location_for_sim_violation(v),
                )
            })
            .collect()
    }
}

/// Catch-all adapter for violation variants added to the (non-exhaustive)
/// legacy enums after this crate was written.
#[derive(Debug)]
struct MiscAdapter(RuleInfo);

impl Rule for MiscAdapter {
    fn info(&self) -> RuleInfo {
        self.0
    }

    fn check(&self, input: &VerifyInput<'_>) -> Vec<Diagnostic> {
        if !input.ids_in_range() {
            return Vec::new();
        }
        let sched = input
            .schedule_violations()
            .iter()
            .filter(|v| rule_for_schedule_violation(v) == self.0.id)
            .map(|v| {
                diag(
                    self.0.id,
                    self.0.severity,
                    v.to_string(),
                    location_for_schedule_violation(v),
                )
            });
        let sim = input
            .replay_report()
            .violations
            .iter()
            .filter(|v| rule_for_sim_violation(v) == self.0.id)
            .map(|v| {
                diag(
                    self.0.id,
                    self.0.severity,
                    v.to_string(),
                    location_for_sim_violation(v),
                )
            });
        sched.chain(sim).collect()
    }
}

/// Native cross-stage rule: every schedule binding must reference a
/// placed component, and every routed path must start and end next to the
/// components its transport task names in the schedule.
#[derive(Debug)]
struct BindingConsistency(RuleInfo);

impl Rule for BindingConsistency {
    fn info(&self) -> RuleInfo {
        self.0
    }

    fn check(&self, input: &VerifyInput<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let placed = input.placement.len().min(input.components.len());
        for s in input.schedule.ops() {
            if s.component.index() >= placed {
                out.push(diag(
                    self.0.id,
                    self.0.severity,
                    format!(
                        "{} is bound to {} but only {placed} components are placed",
                        s.op, s.component
                    ),
                    Location::Op(s.op),
                ));
            }
        }
        for t in input.schedule.transports() {
            for (label, c) in [("source", t.src), ("destination", t.dst)] {
                if c.index() >= placed {
                    out.push(diag(
                        self.0.id,
                        self.0.severity,
                        format!(
                            "transport {} names {label} component {c} but only {placed} \
                             components are placed",
                            t.id
                        ),
                        Location::Task(t.id),
                    ));
                }
            }
        }
        for w in input.schedule.washes() {
            if w.component.index() >= placed {
                out.push(diag(
                    self.0.id,
                    self.0.severity,
                    format!(
                        "wash event names component {} but only {placed} components are placed",
                        w.component
                    ),
                    Location::Component(w.component),
                ));
            }
        }
        let transports = input.schedule.transports().len();
        for p in &input.routing.paths {
            if p.task.index() >= transports {
                out.push(diag(
                    self.0.id,
                    self.0.severity,
                    format!(
                        "routed path for {} has no transport record in the schedule",
                        p.task
                    ),
                    Location::Task(p.task),
                ));
                continue;
            }
            if p.is_empty() {
                continue; // DRC-ROUTE-001 reports missing paths
            }
            let t = input.schedule.transport(p.task);
            if t.src.index() >= placed || t.dst.index() >= placed {
                continue; // dangling endpoints already reported above
            }
            let first = p.cells[0];
            let last = *p.cells.last().expect("non-empty path");
            for (what, cell, c) in [("start", first, t.src), ("end", last, t.dst)] {
                if !input.placement.rect(c).inflated(1).contains(cell) {
                    out.push(diag(
                        self.0.id,
                        self.0.severity,
                        format!(
                            "path of {} {what}s at {cell}, away from its scheduled {} component \
                             {c} at {}",
                            p.task,
                            if what == "start" {
                                "source"
                            } else {
                                "destination"
                            },
                            input.placement.rect(c)
                        ),
                        Location::Task(p.task),
                    ));
                }
            }
        }
        out
    }
}

/// Native cross-stage rule: while the schedule says a fluid is cached in
/// the channel (`arrive..consumed_at`), no other fluid's routed path may
/// pass through the cells the cached plug occupies.
#[derive(Debug)]
struct CachedFluidBlocks(RuleInfo);

impl Rule for CachedFluidBlocks {
    fn info(&self) -> RuleInfo {
        self.0
    }

    fn check(&self, input: &VerifyInput<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let paths = &input.routing.paths;
        let transports = input.schedule.transports().len();
        for p in paths {
            if p.task.index() >= transports || p.is_empty() {
                continue;
            }
            let t = input.schedule.transport(p.task);
            if t.consumed_at <= t.arrive {
                continue; // not cached
            }
            let cache = Interval::new(t.arrive, t.consumed_at);
            // Cells where the parked plug is present during the cache phase.
            let parked: Vec<(CellPos, Interval)> =
                p.occupancies().filter(|(_, w)| w.overlaps(cache)).collect();
            'pairs: for q in paths {
                if q.task == p.task || q.fluid == p.fluid {
                    continue;
                }
                for (qc, qw) in q.occupancies() {
                    let Some(&(_, pw)) = parked.iter().find(|&&(pc, _)| pc == qc) else {
                        continue;
                    };
                    if qw.overlaps(cache) && qw.overlaps(pw) {
                        let clash = Interval::new(qw.start.max(cache.start), qw.end.min(cache.end));
                        out.push(Diagnostic {
                            rule: self.0.id.to_string(),
                            severity: self.0.severity,
                            message: format!(
                                "fluid {} cached by {} ({} in channel) blocks transport {} at {qc}",
                                t.fluid,
                                p.task,
                                t.cache_time(),
                                q.task
                            ),
                            location: Location::Cell(qc),
                            window: Some(clash),
                        });
                        continue 'pairs; // one finding per blocked pair
                    }
                }
            }
        }
        out
    }
}

/// Native cross-stage rule: when the [`VerifyInput`] carries a defect map,
/// nothing in the solution may touch a defect — no routed path cell or
/// channel wash on a blocked cell, no component footprint covering one,
/// and no binding, transport endpoint or component wash on a dead
/// component. Without a defect map the rule passes trivially.
#[derive(Debug)]
struct DefectAvoidance(RuleInfo);

impl Rule for DefectAvoidance {
    fn info(&self) -> RuleInfo {
        self.0
    }

    fn check(&self, input: &VerifyInput<'_>) -> Vec<Diagnostic> {
        let Some(defects) = input.defects() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut push = |message: String, location: Location| {
            out.push(diag(self.0.id, self.0.severity, message, location));
        };

        for p in &input.routing.paths {
            for &cell in &p.cells {
                if defects.is_blocked(cell) {
                    push(
                        format!("path of {} crosses blocked cell {cell}", p.task),
                        Location::Cell(cell),
                    );
                }
            }
        }
        for w in &input.routing.channel_washes {
            if defects.is_blocked(w.cell) {
                push(
                    format!("channel wash scheduled on blocked cell {}", w.cell),
                    Location::Cell(w.cell),
                );
            }
        }
        let placed = input.placement.len().min(input.components.len());
        for i in 0..placed {
            let c = ComponentId::new(i as u32);
            let rect = input.placement.rect(c);
            if let Some(&cell) = defects.blocked_cells().iter().find(|&&b| rect.contains(b)) {
                push(
                    format!("component {c} placed over blocked cell {cell}"),
                    Location::Component(c),
                );
            }
        }
        for s in input.schedule.ops() {
            if defects.is_dead(s.component) {
                push(
                    format!("{} is bound to dead component {}", s.op, s.component),
                    Location::Op(s.op),
                );
            }
        }
        for t in input.schedule.transports() {
            for (label, c) in [("source", t.src), ("destination", t.dst)] {
                if defects.is_dead(c) {
                    push(
                        format!("transport {} uses dead component {c} as {label}", t.id),
                        Location::Task(t.id),
                    );
                }
            }
        }
        for w in input.schedule.washes() {
            if defects.is_dead(w.component) {
                push(
                    format!("wash scheduled on dead component {}", w.component),
                    Location::Component(w.component),
                );
            }
        }
        out
    }
}

/// Native cross-stage rule: every channel wash demanded by the routing
/// should be covered by a planned buffer flush (warning — valid solutions
/// can leave washes unplannable when traffic is dense).
#[derive(Debug)]
struct WashCoverage(RuleInfo);

impl Rule for WashCoverage {
    fn info(&self) -> RuleInfo {
        self.0
    }

    fn check(&self, input: &VerifyInput<'_>) -> Vec<Diagnostic> {
        if !input.ids_in_range() {
            return Vec::new();
        }
        input
            .wash_plan()
            .unplanned
            .iter()
            .map(|w| {
                diag(
                    self.0.id,
                    self.0.severity,
                    format!(
                        "channel wash at {} (residue {}, before task {}) has no feasible \
                         buffer flush",
                        w.cell, w.residue, w.task
                    ),
                    Location::Cell(w.cell),
                )
            })
            .collect()
    }
}

macro_rules! info {
    ($id:literal, $name:literal, $sev:ident, $desc:literal) => {
        RuleInfo {
            id: $id,
            name: $name,
            description: $desc,
            severity: Severity::$sev,
        }
    };
}

fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(SchedAdapter(info!(
            "DRC-SCHED-001",
            "component-overlap",
            Error,
            "operations bound to the same component must not overlap in time"
        ))),
        Box::new(SchedAdapter(info!(
            "DRC-SCHED-002",
            "kind-mismatch",
            Error,
            "every operation must be bound to a component able to execute its kind"
        ))),
        Box::new(SchedAdapter(info!(
            "DRC-SCHED-003",
            "schedule-precedence",
            Error,
            "a child operation must not start before its parents finish"
        ))),
        Box::new(SchedAdapter(info!(
            "DRC-SCHED-004",
            "transport-timing",
            Error,
            "transport tasks must depart after production, arrive after t_c, and link real components"
        ))),
        Box::new(SchedAdapter(info!(
            "DRC-SCHED-005",
            "delivery-record",
            Error,
            "every dependency edge needs a delivery record consistent with its bindings"
        ))),
        Box::new(SimAdapter(info!(
            "DRC-ROUTE-001",
            "path-integrity",
            Error,
            "every transport needs a contiguous routed path with endpoints at its components' ports"
        ))),
        Box::new(SimAdapter(info!(
            "DRC-ROUTE-002",
            "component-traversal",
            Error,
            "routed paths must not cross component interiors"
        ))),
        Box::new(SimAdapter(info!(
            "DRC-ROUTE-003",
            "cell-conflict",
            Error,
            "two different fluids must never occupy the same cell at overlapping times (conflict classes 1-2)"
        ))),
        Box::new(SimAdapter(info!(
            "DRC-ROUTE-004",
            "fluid-lifetime",
            Error,
            "a path's cell occupancy must lie within the fluid's production-to-consumption lifetime"
        ))),
        Box::new(SimAdapter(info!(
            "DRC-EXEC-001",
            "realized-overlap",
            Error,
            "operations on one component must not overlap under the routing's realized times"
        ))),
        Box::new(SimAdapter(info!(
            "DRC-EXEC-002",
            "realized-precedence",
            Error,
            "operation precedence must hold under the routing's realized times"
        ))),
        Box::new(SimAdapter(info!(
            "DRC-PLACE-001",
            "placement-legality",
            Error,
            "the floorplan must be legal: on-grid, non-overlapping, with routing clearance"
        ))),
        Box::new(SimAdapter(info!(
            "DRC-SHAPE-001",
            "artifact-shape",
            Error,
            "schedule, floorplan and routing must all describe the same problem instance"
        ))),
        Box::new(SchedAdapter(info!(
            "DRC-WASH-001",
            "component-wash-overlap",
            Error,
            "component wash events must not overlap operations on the same component"
        ))),
        Box::new(SimAdapter(info!(
            "DRC-WASH-002",
            "wash-gap",
            Error,
            "a cell reused by another fluid must first be washed for the residue's wash time (conflict class 3)"
        ))),
        Box::new(WashCoverage(info!(
            "DRC-WASH-003",
            "wash-coverage",
            Warning,
            "every channel wash should be covered by a feasible buffer flush in the wash plan"
        ))),
        Box::new(BindingConsistency(info!(
            "DRC-BIND-001",
            "binding-consistency",
            Error,
            "schedule bindings must reference placed components and paths must connect their scheduled endpoints"
        ))),
        Box::new(CachedFluidBlocks(info!(
            "DRC-CACHE-001",
            "cached-fluid-blocks-transport",
            Error,
            "a fluid cached in the channel must not block another fluid's transport"
        ))),
        Box::new(DefectAvoidance(info!(
            "DRC-FAULT-001",
            "defect-avoidance",
            Error,
            "no routed path, placement footprint or binding may touch a defect-map entry"
        ))),
        Box::new(MiscAdapter(info!(
            "DRC-MISC-001",
            "unclassified",
            Error,
            "legacy checker findings with no dedicated rule (forward compatibility)"
        ))),
    ]
}

/// The ordered collection of design rules, with per-rule enable switches.
pub struct RuleRegistry {
    rules: Vec<Box<dyn Rule>>,
    disabled: BTreeSet<String>,
}

impl fmt::Debug for RuleRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RuleRegistry")
            .field("rules", &self.rules.len())
            .field("disabled", &self.disabled)
            .finish()
    }
}

impl Default for RuleRegistry {
    fn default() -> Self {
        Self::with_all_rules()
    }
}

impl RuleRegistry {
    /// A registry with every built-in rule enabled.
    pub fn with_all_rules() -> Self {
        RuleRegistry {
            rules: all_rules(),
            disabled: BTreeSet::new(),
        }
    }

    /// Static descriptions of all registered rules, in registry order.
    pub fn rules(&self) -> impl Iterator<Item = RuleInfo> + '_ {
        self.rules.iter().map(|r| r.info())
    }

    /// Looks up a rule description by id.
    pub fn rule(&self, id: &str) -> Option<RuleInfo> {
        self.rules().find(|r| r.id == id)
    }

    /// Disables the rule with the given id (unknown ids are ignored).
    pub fn disable(&mut self, id: &str) {
        self.disabled.insert(id.to_string());
    }

    /// Re-enables a previously disabled rule.
    pub fn enable(&mut self, id: &str) {
        self.disabled.remove(id);
    }

    /// Disables every rule whose id is **not** in `ids` (the `--only`
    /// filter). Unknown ids in `ids` are ignored; combine with
    /// [`rule`](Self::rule) to reject them up front.
    pub fn retain_only<'i>(&mut self, ids: impl IntoIterator<Item = &'i str>) {
        let keep: BTreeSet<&str> = ids.into_iter().collect();
        let all: Vec<&'static str> = self.rules().map(|r| r.id).collect();
        for id in all {
            if !keep.contains(id) {
                self.disable(id);
            }
        }
    }

    /// `true` when the rule with the given id will run.
    pub fn is_enabled(&self, id: &str) -> bool {
        !self.disabled.contains(id)
    }

    /// Runs every enabled rule and collects the findings in the canonical
    /// deduplicated order of [`VerifyReport::sorted`].
    pub fn run(&self, input: &VerifyInput<'_>) -> VerifyReport {
        VerifyReport::sorted(
            self.rules
                .iter()
                .filter(|r| self.is_enabled(r.info().id))
                .flat_map(|r| r.check(input))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_unique_and_well_formed() {
        let registry = RuleRegistry::with_all_rules();
        let ids: Vec<&str> = registry.rules().map(|r| r.id).collect();
        let unique: BTreeSet<&str> = ids.iter().copied().collect();
        assert_eq!(ids.len(), unique.len(), "duplicate rule ids");
        for info in registry.rules() {
            assert!(info.id.starts_with("DRC-"), "{}", info.id);
            assert!(!info.name.is_empty() && !info.description.is_empty());
        }
    }

    #[test]
    fn toggles_work() {
        let mut registry = RuleRegistry::with_all_rules();
        assert!(registry.is_enabled("DRC-ROUTE-003"));
        registry.disable("DRC-ROUTE-003");
        assert!(!registry.is_enabled("DRC-ROUTE-003"));
        registry.enable("DRC-ROUTE-003");
        assert!(registry.is_enabled("DRC-ROUTE-003"));
        assert!(registry.rule("DRC-WASH-003").unwrap().severity == Severity::Warning);
        assert!(registry.rule("DRC-NOPE-999").is_none());
    }

    #[test]
    fn every_mapped_rule_id_is_registered() {
        let registry = RuleRegistry::with_all_rules();
        // The mapping functions only ever emit registered ids; spot-check
        // via representative variants.
        let sched = ScheduleViolation::TransportTiming {
            task: TaskId::new(0),
        };
        assert!(registry.rule(rule_for_schedule_violation(&sched)).is_some());
        let sim = SimViolation::IllegalPlacement;
        assert!(registry.rule(rule_for_sim_violation(&sim)).is_some());
    }
}
