//! Diagnostic data model: severity, source location, and the report type
//! every rule feeds into.

use mfb_model::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How bad a finding is. Ordered: `Info < Warning < Error`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Severity {
    /// Informational note; never affects the exit code beyond 0.
    #[default]
    Info,
    /// Suspicious but not necessarily wrong (exit code 1).
    Warning,
    /// A design-rule violation: the artifact is not executable as-is
    /// (exit code 2).
    Error,
}

impl Severity {
    /// The process exit code this severity maps to (`0`, `1`, `2`).
    pub fn exit_code(self) -> i32 {
        match self {
            Severity::Info => 0,
            Severity::Warning => 1,
            Severity::Error => 2,
        }
    }

    /// The SARIF `level` string (`"note"`, `"warning"`, `"error"`).
    pub fn sarif_level(self) -> &'static str {
        match self {
            Severity::Info => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// A dependency edge of the sequencing graph, used as a diagnostic anchor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeRef {
    /// Producing operation.
    pub parent: OpId,
    /// Consuming operation.
    pub child: OpId,
}

impl fmt::Display for EdgeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.parent, self.child)
    }
}

/// Where in the synthesis artifact a diagnostic points.
///
/// Locations order by variant (chip first) then payload, giving reports a
/// total, deterministic diagnostic order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Location {
    /// The artifact as a whole (shape mismatches, floorplan legality).
    Chip,
    /// An operation of the sequencing graph.
    Op(OpId),
    /// A transport task.
    Task(TaskId),
    /// An allocated on-chip component.
    Component(ComponentId),
    /// A routing-grid cell.
    Cell(CellPos),
    /// A dependency edge `parent -> child`.
    Edge(EdgeRef),
}

impl Location {
    /// A short machine-friendly kind tag (`"chip"`, `"op"`, `"task"`,
    /// `"component"`, `"cell"`, `"edge"`) used by the SARIF renderer.
    pub fn kind(&self) -> &'static str {
        match self {
            Location::Chip => "chip",
            Location::Op(_) => "op",
            Location::Task(_) => "task",
            Location::Component(_) => "component",
            Location::Cell(_) => "cell",
            Location::Edge(_) => "edge",
        }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Chip => f.write_str("chip"),
            Location::Op(o) => write!(f, "{o}"),
            Location::Task(t) => write!(f, "{t}"),
            Location::Component(c) => write!(f, "{c}"),
            Location::Cell(p) => write!(f, "{p}"),
            Location::Edge(e) => write!(f, "{e}"),
        }
    }
}

/// One finding of one rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Identifier of the rule that produced this finding (`DRC-…`).
    pub rule: String,
    /// Severity of the finding.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
    /// What the finding points at.
    pub location: Location,
    /// The time window during which the problem manifests, when known.
    pub window: Option<Interval>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {} (at {}",
            self.severity, self.rule, self.message, self.location
        )?;
        if let Some(w) = self.window {
            write!(f, ", during {}..{}", w.start, w.end)?;
        }
        f.write_str(")")
    }
}

/// Everything the registry found, sorted most severe first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct VerifyReport {
    /// All findings of all enabled rules.
    pub diagnostics: Vec<Diagnostic>,
}

impl VerifyReport {
    /// Builds a report from raw findings in canonical order: most severe
    /// first, ties broken by rule id, message, location and window, with
    /// exact duplicates removed. Every checker in the workspace funnels its
    /// findings through here, so report output is deterministic and
    /// deduplicated regardless of which rules ran, in which order, or on
    /// how many threads.
    pub fn sorted(mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.rule.cmp(&b.rule))
                .then_with(|| a.message.cmp(&b.message))
                .then_with(|| a.location.cmp(&b.location))
                .then_with(|| a.window.cmp(&b.window))
        });
        diagnostics.dedup();
        VerifyReport { diagnostics }
    }

    /// The worst severity present, or `None` for an empty report.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Process exit code: `0` clean/info-only, `1` warnings, `2` errors.
    pub fn exit_code(&self) -> i32 {
        self.max_severity().map_or(0, Severity::exit_code)
    }

    /// Number of findings with exactly the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// `true` when no error-severity findings exist (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.count(Severity::Error) == 0
    }

    /// All findings produced by the rule with the given id.
    pub fn by_rule<'a>(&'a self, rule: &'a str) -> impl Iterator<Item = &'a Diagnostic> + 'a {
        self.diagnostics.iter().filter(move |d| d.rule == rule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_maps() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.exit_code(), 2);
        assert_eq!(Severity::Info.sarif_level(), "note");
        assert_eq!(Severity::Warning.to_string(), "warning");
    }

    #[test]
    fn report_summarises() {
        let mk = |sev| Diagnostic {
            rule: "DRC-TEST-001".into(),
            severity: sev,
            message: "m".into(),
            location: Location::Chip,
            window: None,
        };
        let report = VerifyReport {
            diagnostics: vec![mk(Severity::Warning), mk(Severity::Error)],
        };
        assert_eq!(report.max_severity(), Some(Severity::Error));
        assert_eq!(report.exit_code(), 2);
        assert_eq!(report.count(Severity::Warning), 1);
        assert!(!report.is_clean());
        assert_eq!(report.by_rule("DRC-TEST-001").count(), 2);
        assert!(VerifyReport::default().is_clean());
        assert_eq!(VerifyReport::default().exit_code(), 0);
    }

    #[test]
    fn diagnostic_displays() {
        let d = Diagnostic {
            rule: "DRC-ROUTE-003".into(),
            severity: Severity::Error,
            message: "boom".into(),
            location: Location::Cell(CellPos::new(3, 4)),
            window: Some(Interval::new(Instant::from_secs(1), Instant::from_secs(2))),
        };
        let s = d.to_string();
        assert!(s.contains("error[DRC-ROUTE-003]"), "{s}");
        assert!(s.contains("(3,4)"), "{s}");
        assert!(s.contains("t=1.0s..t=2.0s"), "{s}");
    }
}
