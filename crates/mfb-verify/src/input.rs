//! The bundle of synthesis artifacts a DRC run inspects, with memoised
//! access to the (potentially expensive) legacy checkers.

use mfb_model::prelude::*;
use mfb_place::prelude::Placement;
use mfb_route::prelude::{plan_washes, RouterConfig, Routing, WashPlan};
use mfb_sched::prelude::{validate, FluidDelivery, Schedule, ScheduleViolation};
use mfb_sim::prelude::{replay, SimReport};
use std::cell::OnceCell;

/// Borrowed view of one complete synthesis result.
///
/// Rules never recompute the legacy checkers: [`schedule_violations`]
/// (`mfb-sched`'s `validate`), [`replay_report`] (`mfb-sim`'s `replay`)
/// and [`wash_plan`] (`mfb-route`'s `plan_washes`) each run at most once
/// per input, however many rules consult them.
///
/// [`schedule_violations`]: VerifyInput::schedule_violations
/// [`replay_report`]: VerifyInput::replay_report
/// [`wash_plan`]: VerifyInput::wash_plan
#[derive(Debug)]
pub struct VerifyInput<'a> {
    /// The bioassay being synthesised.
    pub graph: &'a SequencingGraph,
    /// The component allocation.
    pub components: &'a ComponentSet,
    /// Stage 1 result: operation schedule with transport tasks.
    pub schedule: &'a Schedule,
    /// Stage 2 result: the floorplan.
    pub placement: &'a Placement,
    /// Stage 3 result: routed paths with realized times.
    pub routing: &'a Routing,
    /// Wash model the solution was synthesised under.
    pub wash: &'a dyn WashModel,
    /// Router configuration used when the wash plan must be rebuilt.
    pub router_config: RouterConfig,
    defects: Option<&'a DefectMap>,
    sched_cache: OnceCell<Vec<ScheduleViolation>>,
    replay_cache: OnceCell<SimReport>,
    wash_plan_cache: OnceCell<WashPlan>,
}

impl<'a> VerifyInput<'a> {
    /// Bundles the artifacts of one synthesis run for checking.
    pub fn new(
        graph: &'a SequencingGraph,
        components: &'a ComponentSet,
        schedule: &'a Schedule,
        placement: &'a Placement,
        routing: &'a Routing,
        wash: &'a dyn WashModel,
        router_config: RouterConfig,
    ) -> Self {
        VerifyInput {
            graph,
            components,
            schedule,
            placement,
            routing,
            wash,
            router_config,
            defects: None,
            sched_cache: OnceCell::new(),
            replay_cache: OnceCell::new(),
            wash_plan_cache: OnceCell::new(),
        }
    }

    /// Attaches the defect map the solution was synthesised against, so
    /// `DRC-FAULT-001` can assert no artifact touches a defect. Without
    /// this the chip is assumed pristine and the rule passes trivially.
    pub fn with_defects(mut self, defects: &'a DefectMap) -> Self {
        self.defects = Some(defects);
        self
    }

    /// The attached defect map, if any.
    pub fn defects(&self) -> Option<&'a DefectMap> {
        self.defects
    }

    /// `true` when every cross-reference in the artifacts resolves: bound
    /// components exist, transport endpoints are allocated, delivery
    /// records point at real tasks, and all routed cells lie on the grid.
    ///
    /// The legacy checkers index by these ids without guarding every one,
    /// so on a `false` result the adapter rules stand down (instead of
    /// panicking) and `DRC-BIND-001` reports the dangling references.
    pub fn ids_in_range(&self) -> bool {
        let n_ops = self.graph.len();
        let n_comps = self.components.len();
        let n_tasks = self.schedule.transports().len();
        let grid = self.placement.grid();
        let in_grid = |c: CellPos| c.x < grid.width && c.y < grid.height;
        self.schedule.ops().len() == n_ops
            && self
                .schedule
                .ops()
                .all(|s| s.op.index() < n_ops && s.component.index() < n_comps)
            && self.schedule.transports().all(|t| {
                t.fluid.index() < n_ops
                    && t.consumer.index() < n_ops
                    && t.src.index() < n_comps
                    && t.dst.index() < n_comps
            })
            && self
                .schedule
                .washes()
                .all(|w| w.component.index() < n_comps)
            && self.schedule.deliveries().all(|&(p, c, ref d)| {
                p.index() < n_ops
                    && c.index() < n_ops
                    && if let FluidDelivery::Transported(t) = *d {
                        t.index() < n_tasks
                    } else {
                        true
                    }
            })
            && self
                .routing
                .paths
                .iter()
                .all(|p| p.cells.iter().all(|&c| in_grid(c)))
            && self
                .routing
                .channel_washes
                .iter()
                .all(|w| w.residue.index() < n_ops && in_grid(w.cell))
    }

    /// The legacy schedule checker's findings (memoised).
    pub fn schedule_violations(&self) -> &[ScheduleViolation] {
        self.sched_cache
            .get_or_init(|| validate(self.schedule, self.graph, self.components))
    }

    /// The legacy replay engine's report (memoised).
    pub fn replay_report(&self) -> &SimReport {
        self.replay_cache.get_or_init(|| {
            replay(
                self.graph,
                self.components,
                self.schedule,
                self.placement,
                self.routing,
                self.wash,
            )
        })
    }

    /// The buffer-flush wash plan for the routed solution (memoised).
    pub fn wash_plan(&self) -> &WashPlan {
        self.wash_plan_cache.get_or_init(|| {
            plan_washes(
                self.routing,
                self.schedule,
                self.graph,
                self.placement,
                self.wash,
                &self.router_config,
            )
        })
    }
}
