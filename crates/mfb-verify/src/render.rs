//! Report renderers: pretty terminal text, a JSON document, and a SARIF
//! 2.1.0 log consumable by code-scanning UIs.

use crate::diag::{Severity, VerifyReport};
use crate::rules::RuleRegistry;
use serde::Serialize;
use serde_json::Value;

/// Renders the report for a terminal: one line per finding, most severe
/// first, followed by a summary line.
pub fn render_pretty(report: &VerifyReport) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let (e, w, i) = (
        report.count(Severity::Error),
        report.count(Severity::Warning),
        report.count(Severity::Info),
    );
    if report.diagnostics.is_empty() {
        out.push_str("mfb-verify: clean — no design-rule violations\n");
    } else {
        out.push_str(&format!(
            "mfb-verify: {e} error{}, {w} warning{}, {i} info\n",
            if e == 1 { "" } else { "s" },
            if w == 1 { "" } else { "s" },
        ));
    }
    out
}

/// Renders the report as a standalone JSON document:
/// `{"tool": …, "diagnostics": […], "summary": …}`.
pub fn render_json(report: &VerifyReport) -> String {
    let doc = Value::object(vec![
        (
            "tool",
            Value::object(vec![
                ("name", Value::Str("mfb-verify".into())),
                ("version", Value::Str(env!("CARGO_PKG_VERSION").into())),
            ]),
        ),
        ("diagnostics", report.diagnostics.to_content()),
        (
            "summary",
            Value::object(vec![
                ("errors", Value::U64(report.count(Severity::Error) as u64)),
                (
                    "warnings",
                    Value::U64(report.count(Severity::Warning) as u64),
                ),
                ("infos", Value::U64(report.count(Severity::Info) as u64)),
                ("exit_code", Value::U64(report.exit_code() as u64)),
            ]),
        ),
    ]);
    serde_json::to_string_pretty(&doc).expect("JSON rendering is infallible")
}

/// Renders the report as a SARIF 2.1.0 log. The `registry` supplies the
/// rule table (`runs[0].tool.driver.rules`); every result references its
/// rule by id and index.
pub fn render_sarif(report: &VerifyReport, registry: &RuleRegistry) -> String {
    let rule_infos: Vec<_> = registry.rules().collect();
    render_sarif_with(report, &rule_infos)
}

/// [`render_sarif`] against an explicit rule table — for checkers (such as
/// `mfb-analyze`) whose rules do not live in a [`RuleRegistry`].
pub fn render_sarif_with(report: &VerifyReport, rule_infos: &[crate::rules::RuleInfo]) -> String {
    let rules: Vec<Value> = rule_infos
        .iter()
        .map(|r| {
            Value::object(vec![
                ("id", Value::Str(r.id.into())),
                ("name", Value::Str(r.name.into())),
                (
                    "shortDescription",
                    Value::object(vec![("text", Value::Str(r.description.into()))]),
                ),
                (
                    "defaultConfiguration",
                    Value::object(vec![("level", Value::Str(r.severity.sarif_level().into()))]),
                ),
            ])
        })
        .collect();
    let results: Vec<Value> = report
        .diagnostics
        .iter()
        .map(|d| {
            let mut fields = vec![
                ("ruleId", Value::Str(d.rule.clone())),
                ("level", Value::Str(d.severity.sarif_level().into())),
                (
                    "message",
                    Value::object(vec![("text", Value::Str(d.message.clone()))]),
                ),
                (
                    "locations",
                    Value::Seq(vec![Value::object(vec![(
                        "logicalLocations",
                        Value::Seq(vec![Value::object(vec![
                            ("name", Value::Str(d.location.to_string())),
                            ("kind", Value::Str(d.location.kind().into())),
                        ])]),
                    )])]),
                ),
            ];
            if let Some(ix) = rule_infos.iter().position(|r| r.id == d.rule) {
                fields.insert(1, ("ruleIndex", Value::U64(ix as u64)));
            }
            Value::object(fields)
        })
        .collect();
    let doc = Value::object(vec![
        (
            "$schema",
            Value::Str("https://json.schemastore.org/sarif-2.1.0.json".into()),
        ),
        ("version", Value::Str("2.1.0".into())),
        (
            "runs",
            Value::Seq(vec![Value::object(vec![
                (
                    "tool",
                    Value::object(vec![(
                        "driver",
                        Value::object(vec![
                            ("name", Value::Str("mfb-verify".into())),
                            ("version", Value::Str(env!("CARGO_PKG_VERSION").into())),
                            (
                                "informationUri",
                                Value::Str(env!("CARGO_PKG_REPOSITORY").into()),
                            ),
                            ("rules", Value::Seq(rules)),
                        ]),
                    )]),
                ),
                ("results", Value::Seq(results)),
            ])]),
        ),
    ]);
    serde_json::to_string_pretty(&doc).expect("SARIF rendering is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Diagnostic, Location};
    use mfb_model::prelude::*;

    fn sample_report() -> VerifyReport {
        VerifyReport {
            diagnostics: vec![
                Diagnostic {
                    rule: "DRC-ROUTE-003".into(),
                    severity: Severity::Error,
                    message: "two fluids collide".into(),
                    location: Location::Cell(CellPos::new(2, 5)),
                    window: Some(Interval::new(Instant::from_secs(1), Instant::from_secs(3))),
                },
                Diagnostic {
                    rule: "DRC-WASH-003".into(),
                    severity: Severity::Warning,
                    message: "wash not planned".into(),
                    location: Location::Task(TaskId::new(1)),
                    window: None,
                },
            ],
        }
    }

    #[test]
    fn pretty_lists_findings_and_summary() {
        let text = render_pretty(&sample_report());
        assert!(text.contains("error[DRC-ROUTE-003]"), "{text}");
        assert!(text.contains("warning[DRC-WASH-003]"), "{text}");
        assert!(text.contains("1 error, 1 warning, 0 info"), "{text}");
        let clean = render_pretty(&VerifyReport::default());
        assert!(clean.contains("clean"), "{clean}");
    }

    #[test]
    fn json_document_round_trips() {
        let text = render_json(&sample_report());
        let doc: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(
            doc.get("tool")
                .and_then(|t| t.get("name"))
                .and_then(Value::as_str),
            Some("mfb-verify")
        );
        let summary = doc.get("summary").unwrap();
        assert_eq!(summary.get("errors").and_then(Value::as_u64), Some(1));
        assert_eq!(summary.get("exit_code").and_then(Value::as_u64), Some(2));
        let diags = doc.get("diagnostics").unwrap();
        assert!(diags.get_index(0).is_some());
    }

    /// The SARIF 2.1.0 shape: schema/version headers, a tool driver with a
    /// rule table, and results referencing rules by id and index.
    #[test]
    fn sarif_shape_is_valid() {
        let registry = RuleRegistry::with_all_rules();
        let text = render_sarif(&sample_report(), &registry);
        let doc: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(
            doc.get("$schema").and_then(Value::as_str),
            Some("https://json.schemastore.org/sarif-2.1.0.json")
        );
        assert_eq!(doc.get("version").and_then(Value::as_str), Some("2.1.0"));
        let run = doc.get("runs").and_then(|r| r.get_index(0)).unwrap();
        let driver = run.get("tool").and_then(|t| t.get("driver")).unwrap();
        assert_eq!(
            driver.get("name").and_then(Value::as_str),
            Some("mfb-verify")
        );
        let rules = match driver.get("rules").unwrap() {
            Value::Seq(rules) => rules,
            other => panic!("rules is not an array: {other:?}"),
        };
        assert_eq!(rules.len(), registry.rules().count());
        for rule in rules {
            assert!(rule.get("id").and_then(Value::as_str).is_some());
            assert!(rule
                .get("shortDescription")
                .and_then(|s| s.get("text"))
                .is_some());
            let level = rule
                .get("defaultConfiguration")
                .and_then(|c| c.get("level"))
                .and_then(Value::as_str)
                .unwrap();
            assert!(matches!(level, "note" | "warning" | "error"), "{level}");
        }
        let results = match run.get("results").unwrap() {
            Value::Seq(results) => results,
            other => panic!("results is not an array: {other:?}"),
        };
        assert_eq!(results.len(), 2);
        for result in results {
            let id = result.get("ruleId").and_then(Value::as_str).unwrap();
            let ix = result.get("ruleIndex").and_then(Value::as_u64).unwrap() as usize;
            assert_eq!(rules[ix].get("id").and_then(Value::as_str), Some(id));
            assert!(result.get("message").and_then(|m| m.get("text")).is_some());
            let lvl = result.get("level").and_then(Value::as_str).unwrap();
            assert!(matches!(lvl, "note" | "warning" | "error"), "{lvl}");
            assert!(result
                .get("locations")
                .and_then(|l| l.get_index(0))
                .and_then(|l| l.get("logicalLocations"))
                .and_then(|l| l.get_index(0))
                .and_then(|l| l.get("name"))
                .is_some());
        }
    }
}
