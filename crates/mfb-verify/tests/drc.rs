//! End-to-end DRC runs: a freshly synthesised solution is clean, and
//! targeted corruptions of each artifact trigger the expected rules.

use mfb_bench_suite::synth::SyntheticSpec;
use mfb_core::prelude::*;
use mfb_model::prelude::*;
use mfb_route::prelude::RouterConfig;
use mfb_sched::prelude::{Schedule, ScheduledOp, TransportTask};
use mfb_verify::prelude::*;

fn wash() -> LogLinearWash {
    LogLinearWash::paper_calibrated()
}

fn solved(seed: u64) -> (SequencingGraph, ComponentSet, Solution) {
    let g = SyntheticSpec::new(14, seed).generate();
    let comps = Allocation::new(2, 2, 2, 2).instantiate(&ComponentLibrary::default());
    let sol = Synthesizer::paper_dcsa()
        .synthesize(&g, &comps, &wash())
        .expect("synthesizes");
    (g, comps, sol)
}

fn run_drc(
    g: &SequencingGraph,
    comps: &ComponentSet,
    sol: &Solution,
    registry: &RuleRegistry,
) -> VerifyReport {
    let w = wash();
    let input = VerifyInput::new(
        g,
        comps,
        &sol.schedule,
        &sol.placement,
        &sol.routing,
        &w,
        RouterConfig::paper(),
    );
    registry.run(&input)
}

/// Rebuilds a schedule from its parts so tests can corrupt single fields.
fn rebuild(s: &Schedule, ops: Vec<ScheduledOp>, transports: Vec<TransportTask>) -> Schedule {
    Schedule::new(
        s.t_c,
        ops,
        s.deliveries().copied().collect(),
        transports,
        s.washes().copied().collect(),
    )
}

#[test]
fn clean_dcsa_pipeline_has_zero_errors() {
    let registry = RuleRegistry::with_all_rules();
    for seed in [1, 2, 3] {
        let (g, comps, sol) = solved(seed);
        let report = run_drc(&g, &comps, &sol, &registry);
        let errors: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "seed {seed}: {errors:?}");
        assert!(report.exit_code() <= 1, "warnings at most");
    }
}

#[test]
fn clean_baseline_pipeline_has_zero_errors() {
    let g = SyntheticSpec::new(14, 5).generate();
    let comps = Allocation::new(2, 2, 2, 2).instantiate(&ComponentLibrary::default());
    let sol = Synthesizer::paper_baseline()
        .synthesize(&g, &comps, &wash())
        .expect("synthesizes");
    let report = run_drc(&g, &comps, &sol, &RuleRegistry::with_all_rules());
    assert!(report.is_clean(), "{:?}", report.diagnostics);
}

#[test]
fn teleported_cell_triggers_route_rules() {
    let (g, comps, mut sol) = solved(1);
    let pi = (0..sol.routing.paths.len())
        .find(|&i| sol.routing.paths[i].cells.len() > 2)
        .expect("a non-trivial path exists");
    let grid = sol.placement.grid();
    let mid = sol.routing.paths[pi].cells.len() / 2;
    sol.routing.paths[pi].cells[mid] = CellPos::new(grid.width - 1, grid.height - 1);
    let report = run_drc(&g, &comps, &sol, &RuleRegistry::with_all_rules());
    assert!(!report.is_clean());
    let route_rules = ["DRC-ROUTE-001", "DRC-ROUTE-002", "DRC-ROUTE-003"];
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| route_rules.contains(&d.rule.as_str())),
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn rewired_transport_triggers_binding_rule() {
    let (g, comps, mut sol) = solved(1);
    // Point some transport's source at a different placed component, far
    // from where its path actually starts.
    let mut transports: Vec<TransportTask> = sol.schedule.transports().copied().collect();
    let (ti, new_src) = transports
        .iter()
        .enumerate()
        .find_map(|(i, t)| {
            let path = sol.routing.paths.iter().find(|p| p.task == t.id)?;
            if path.is_empty() {
                return None;
            }
            let start = path.cells[0];
            (0..sol.placement.len() as u32)
                .map(ComponentId::new)
                .find(|&c| {
                    c != t.src && c != t.dst && !sol.placement.rect(c).inflated(1).contains(start)
                })
                .map(|c| (i, c))
        })
        .expect("a rewirable transport exists");
    transports[ti].src = new_src;
    sol.schedule = rebuild(
        &sol.schedule,
        sol.schedule.ops().copied().collect(),
        transports,
    );
    let report = run_drc(&g, &comps, &sol, &RuleRegistry::with_all_rules());
    assert!(
        report.by_rule("DRC-BIND-001").count() > 0,
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn dangling_binding_is_reported_without_panicking() {
    let (g, comps, mut sol) = solved(2);
    // Bind the first operation to a component that does not exist: the
    // legacy checkers would panic on this, the DRC must report it.
    let mut ops: Vec<ScheduledOp> = sol.schedule.ops().copied().collect();
    ops[0].component = ComponentId::new(999);
    let transports = sol.schedule.transports().copied().collect();
    sol.schedule = rebuild(&sol.schedule, ops, transports);
    let report = run_drc(&g, &comps, &sol, &RuleRegistry::with_all_rules());
    assert!(!report.is_clean());
    assert!(
        report
            .by_rule("DRC-BIND-001")
            .any(|d| d.message.contains("c999")),
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn cached_plug_collision_triggers_cache_rule() {
    // Find a solution with a cached transport, then steer another fluid's
    // path through the parked plug during the cache window.
    let registry = RuleRegistry::with_all_rules();
    for seed in 1..40 {
        let (g, comps, mut sol) = solved(seed);
        let cached = sol.schedule.transports().copied().find(|t| {
            !t.cache_time().is_zero()
                && sol
                    .routing
                    .paths
                    .iter()
                    .any(|p| p.task == t.id && !p.is_empty())
        });
        let Some(t) = cached else { continue };
        let pi = sol
            .routing
            .paths
            .iter()
            .position(|p| p.task == t.id)
            .expect("path found above");
        let cache = Interval::new(t.arrive, t.consumed_at);
        let parked = sol.routing.paths[pi]
            .occupancies()
            .find(|&(_, w)| w.overlaps(cache));
        let Some((cell, window)) = parked else {
            continue;
        };
        let fluid = sol.routing.paths[pi].fluid;
        let Some(qi) = (0..sol.routing.paths.len()).find(|&i| {
            i != pi && !sol.routing.paths[i].is_empty() && sol.routing.paths[i].fluid != fluid
        }) else {
            continue;
        };
        sol.routing.paths[qi].cells[0] = cell;
        sol.routing.paths[qi].windows[0] = window;
        let report = run_drc(&g, &comps, &sol, &registry);
        assert!(
            report.by_rule("DRC-CACHE-001").count() > 0,
            "seed {seed}: {:?}",
            report.diagnostics
        );
        return;
    }
    panic!("no seed produced a cached transport to corrupt");
}

#[test]
fn disabling_a_rule_suppresses_its_findings() {
    let (g, comps, mut sol) = solved(1);
    let pi = (0..sol.routing.paths.len())
        .find(|&i| sol.routing.paths[i].cells.len() > 2)
        .expect("a non-trivial path exists");
    let grid = sol.placement.grid();
    let mid = sol.routing.paths[pi].cells.len() / 2;
    sol.routing.paths[pi].cells[mid] = CellPos::new(grid.width - 1, grid.height - 1);

    let mut registry = RuleRegistry::with_all_rules();
    let with_all = run_drc(&g, &comps, &sol, &registry);
    let triggered: Vec<String> = with_all
        .diagnostics
        .iter()
        .map(|d| d.rule.clone())
        .collect();
    assert!(!triggered.is_empty());
    for rule in &triggered {
        registry.disable(rule);
    }
    let with_none = run_drc(&g, &comps, &sol, &registry);
    assert_eq!(
        with_none
            .diagnostics
            .iter()
            .filter(|d| triggered.contains(&d.rule))
            .count(),
        0,
        "disabled rules still reported"
    );
}

#[test]
fn registry_findings_superset_legacy_checkers() {
    // For a corrupted (but in-range) artifact, every legacy violation
    // appears in the registry's report under its mapped rule id.
    let (g, comps, mut sol) = solved(3);
    let pi = (0..sol.routing.paths.len())
        .find(|&i| sol.routing.paths[i].cells.len() > 2)
        .expect("a non-trivial path exists");
    let grid = sol.placement.grid();
    sol.routing.paths[pi].cells[1] = CellPos::new(grid.width - 1, grid.height - 1);

    let w = wash();
    let input = VerifyInput::new(
        &g,
        &comps,
        &sol.schedule,
        &sol.placement,
        &sol.routing,
        &w,
        RouterConfig::paper(),
    );
    let report = RuleRegistry::with_all_rules().run(&input);
    let legacy_sched = mfb_sched::prelude::validate(&sol.schedule, &g, &comps);
    let legacy_sim =
        mfb_sim::prelude::replay(&g, &comps, &sol.schedule, &sol.placement, &sol.routing, &w);
    for v in &legacy_sched {
        let rule = rule_for_schedule_violation(v);
        assert!(
            report.by_rule(rule).any(|d| d.message == v.to_string()),
            "missing {rule}: {v}"
        );
    }
    for v in &legacy_sim.violations {
        let rule = rule_for_sim_violation(v);
        assert!(
            report.by_rule(rule).any(|d| d.message == v.to_string()),
            "missing {rule}: {v}"
        );
    }
}

#[test]
fn diagnostic_serde_round_trip() {
    let (g, comps, mut sol) = solved(1);
    let grid = sol.placement.grid();
    let pi = (0..sol.routing.paths.len())
        .find(|&i| sol.routing.paths[i].cells.len() > 2)
        .expect("a non-trivial path exists");
    sol.routing.paths[pi].cells[1] = CellPos::new(grid.width - 1, grid.height - 1);
    let report = run_drc(&g, &comps, &sol, &RuleRegistry::with_all_rules());
    assert!(!report.diagnostics.is_empty());
    let json = serde_json::to_string(&report).unwrap();
    let back: VerifyReport = serde_json::from_str(&json).unwrap();
    assert_eq!(report, back);
}
