//! Review repro: corruptions that trip ids_in_range() but that
//! DRC-BIND-001 does not cover should NOT yield a clean report.

use mfb_bench_suite::synth::SyntheticSpec;
use mfb_core::prelude::*;
use mfb_model::prelude::*;
use mfb_route::prelude::RouterConfig;
use mfb_sched::prelude::{Schedule, WashEvent};
use mfb_verify::prelude::*;

#[test]
fn dangling_wash_component_is_not_silently_clean() {
    let g = SyntheticSpec::new(14, 1).generate();
    let comps = Allocation::new(2, 2, 2, 2).instantiate(&ComponentLibrary::default());
    let w = LogLinearWash::paper_calibrated();
    let mut sol = Synthesizer::paper_dcsa()
        .synthesize(&g, &comps, &w)
        .expect("synthesizes");

    // Corrupt: a wash event naming a component that does not exist.
    let mut washes: Vec<WashEvent> = sol.schedule.washes().copied().collect();
    washes.push(WashEvent {
        component: ComponentId::new(999),
        residue: OpId::new(0),
        start: Instant::from_secs(0),
        end: Instant::from_secs(1),
    });
    sol.schedule = Schedule::new(
        sol.schedule.t_c,
        sol.schedule.ops().copied().collect(),
        sol.schedule.deliveries().copied().collect(),
        sol.schedule.transports().copied().collect(),
        washes,
    );

    let input = VerifyInput::new(
        &g,
        &comps,
        &sol.schedule,
        &sol.placement,
        &sol.routing,
        &w,
        RouterConfig::paper(),
    );
    let report = RuleRegistry::with_all_rules().run(&input);
    eprintln!("diagnostics: {:?}", report.diagnostics);
    eprintln!("exit code: {}", report.exit_code());
    assert!(
        !report.is_clean(),
        "corrupted artifact (dangling wash component) reported CLEAN"
    );
}
