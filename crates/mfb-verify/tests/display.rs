//! Display coverage for every legacy violation variant, plus the rule-id
//! mapping: each variant renders a useful message and lands under a
//! registered rule.

use mfb_model::prelude::*;
use mfb_sched::prelude::ScheduleViolation;
use mfb_sim::prelude::SimViolation;
use mfb_verify::prelude::*;

fn op(i: u32) -> OpId {
    OpId::new(i)
}

fn comp(i: u32) -> ComponentId {
    ComponentId::new(i)
}

fn task(i: u32) -> TaskId {
    TaskId::new(i)
}

/// Every `ScheduleViolation` variant with distinctive ids.
fn all_schedule_violations() -> Vec<ScheduleViolation> {
    vec![
        ScheduleViolation::KindMismatch {
            op: op(1),
            component: comp(2),
        },
        ScheduleViolation::ComponentOverlap {
            a: op(3),
            b: op(4),
            component: comp(5),
        },
        ScheduleViolation::WashOverlap {
            op: op(6),
            component: comp(7),
        },
        ScheduleViolation::PrecedenceViolation {
            parent: op(8),
            child: op(9),
        },
        ScheduleViolation::InPlaceAcrossComponents {
            parent: op(10),
            child: op(11),
        },
        ScheduleViolation::TransportTiming { task: task(12) },
        ScheduleViolation::TransportEndpoints { task: task(13) },
        ScheduleViolation::MissingDelivery {
            parent: op(14),
            child: op(15),
        },
    ]
}

/// Every `SimViolation` variant with distinctive ids.
fn all_sim_violations() -> Vec<SimViolation> {
    vec![
        SimViolation::PathDiscontiguous { task: task(1) },
        SimViolation::PathThroughComponent {
            task: task(2),
            cell: CellPos::new(3, 4),
            component: comp(5),
        },
        SimViolation::BadEndpoint { task: task(6) },
        SimViolation::CellConflict {
            cell: CellPos::new(7, 8),
            a: task(9),
            b: task(10),
        },
        SimViolation::WashGap {
            cell: CellPos::new(11, 12),
            previous: task(13),
            next: task(14),
        },
        SimViolation::PrecedenceViolation {
            parent: op(15),
            child: op(16),
        },
        SimViolation::ComponentOverlap {
            a: op(17),
            b: op(18),
            component: comp(19),
        },
        SimViolation::WindowOutsideLifetime { task: task(20) },
        SimViolation::MissingPath { task: task(21) },
        SimViolation::IllegalPlacement,
        SimViolation::ShapeMismatch {
            what: "operation count",
        },
    ]
}

/// The ids each violation's message must mention (empty = chip-global).
fn expected_tokens_sched(v: &ScheduleViolation) -> Vec<String> {
    match *v {
        ScheduleViolation::KindMismatch { op, component } => {
            vec![op.to_string(), component.to_string()]
        }
        ScheduleViolation::ComponentOverlap { a, b, component } => {
            vec![a.to_string(), b.to_string(), component.to_string()]
        }
        ScheduleViolation::WashOverlap { op, component } => {
            vec![op.to_string(), component.to_string()]
        }
        ScheduleViolation::PrecedenceViolation { parent, child }
        | ScheduleViolation::InPlaceAcrossComponents { parent, child }
        | ScheduleViolation::MissingDelivery { parent, child } => {
            vec![parent.to_string(), child.to_string()]
        }
        ScheduleViolation::TransportTiming { task }
        | ScheduleViolation::TransportEndpoints { task } => vec![task.to_string()],
        _ => vec![],
    }
}

fn expected_tokens_sim(v: &SimViolation) -> Vec<String> {
    match *v {
        SimViolation::PathDiscontiguous { task }
        | SimViolation::BadEndpoint { task }
        | SimViolation::WindowOutsideLifetime { task }
        | SimViolation::MissingPath { task } => vec![task.to_string()],
        SimViolation::PathThroughComponent {
            task,
            cell,
            component,
        } => vec![task.to_string(), cell.to_string(), component.to_string()],
        SimViolation::CellConflict { cell, a, b } => {
            vec![cell.to_string(), a.to_string(), b.to_string()]
        }
        SimViolation::WashGap {
            cell,
            previous,
            next,
        } => vec![cell.to_string(), previous.to_string(), next.to_string()],
        SimViolation::PrecedenceViolation { parent, child } => {
            vec![parent.to_string(), child.to_string()]
        }
        SimViolation::ComponentOverlap { a, b, component } => {
            vec![a.to_string(), b.to_string(), component.to_string()]
        }
        SimViolation::ShapeMismatch { what } => vec![what.to_string()],
        SimViolation::IllegalPlacement => vec![],
        _ => vec![],
    }
}

#[test]
fn every_schedule_violation_variant_displays_its_ids() {
    for v in all_schedule_violations() {
        let text = v.to_string();
        assert!(!text.is_empty());
        for token in expected_tokens_sched(&v) {
            assert!(text.contains(&token), "`{text}` missing `{token}`");
        }
    }
}

#[test]
fn every_sim_violation_variant_displays_its_ids() {
    for v in all_sim_violations() {
        let text = v.to_string();
        assert!(!text.is_empty());
        for token in expected_tokens_sim(&v) {
            assert!(text.contains(&token), "`{text}` missing `{token}`");
        }
    }
}

#[test]
fn every_variant_maps_to_a_registered_rule() {
    let registry = RuleRegistry::with_all_rules();
    for v in all_schedule_violations() {
        let rule = rule_for_schedule_violation(&v);
        assert!(registry.rule(rule).is_some(), "{rule} not registered");
    }
    for v in all_sim_violations() {
        let rule = rule_for_sim_violation(&v);
        assert!(registry.rule(rule).is_some(), "{rule} not registered");
    }
    // The two mapping domains never collide on the schedule/exec split:
    // schedule-time overlap and realized-time overlap are distinct rules.
    let sched = ScheduleViolation::ComponentOverlap {
        a: op(0),
        b: op(1),
        component: comp(0),
    };
    let sim = SimViolation::ComponentOverlap {
        a: op(0),
        b: op(1),
        component: comp(0),
    };
    assert_ne!(
        rule_for_schedule_violation(&sched),
        rule_for_sim_violation(&sim)
    );
}
