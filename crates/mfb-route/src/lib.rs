//! Flow-channel routing for DCSA-based biochips.
//!
//! Implements the routing half of the paper's **Algorithm 2**: the layout is
//! partitioned into grid cells carrying weights and occupancy time slots
//! ([`grid`]); transport tasks are routed in start-time order with a
//! time-windowed, wash-weighted A* ([`astar`], Eq. (5)) that makes the three
//! transportation-conflict classes of §II-C.2 unrepresentable
//! ([`router::route_dcsa`]). The baseline's construction-by-correction
//! router, which fixes conflicts after the fact by re-routing or postponing
//! tasks, lives in [`baseline::route_corrected`].
//!
//! The result type [`router::Routing`] carries Table I's *total channel
//! length*, Fig. 9's *total channel wash time*, and the **realized**
//! operation times after any correction delays — the quantity Table I's
//! execution-time column actually compares.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod astar;
pub mod baseline;
pub mod error;
pub mod grid;
pub mod negotiate;
pub mod optimize;
pub mod reference;
pub mod router;
pub mod washplan;

/// One-stop import of the routing API.
pub mod prelude {
    pub use crate::astar::{
        dijkstra_map_with, find_path, find_path_soft, find_path_with, AstarOptions, SearchScratch,
        SearchStats,
    };
    pub use crate::baseline::{route_corrected, route_corrected_with_defects};
    pub use crate::error::RouteError;
    pub use crate::grid::{ChannelWash, Reservation, RoutingGrid};
    pub use crate::negotiate::{
        route_negotiated, route_negotiated_budgeted, route_negotiated_with_scratch,
        NegotiationParams,
    };
    pub use crate::optimize::{optimize_channel_length, optimize_channel_length_with_defects};
    pub use crate::router::{
        ports, route_dcsa, route_dcsa_budgeted, route_dcsa_with_defects, route_dcsa_with_scratch,
        RealizedTimes, RoutedPath, RouterConfig, Routing,
    };
    pub use crate::washplan::{plan_washes, Flush, WashPlan};
}
