//! Post-routing cleanup: iterative re-routing to shrink total channel
//! length.
//!
//! The sequential router commits each task against only the *earlier*
//! tasks' reservations; once everything is routed, a task routed early may
//! have an unnecessarily long path that a later re-route could shorten
//! (all the sharing opportunities now exist). This pass sweeps the tasks
//! in decreasing path length, rips each out and re-routes it against the
//! full reservation picture, keeping the change only when the chip's
//! distinct-channel-cell count does not grow. Conflict-freedom and the
//! realized times are preserved exactly — only geometry improves.

use crate::astar::{AstarOptions, SearchScratch};
use crate::grid::RoutingGrid;
use crate::router::{ports, route_one, RoutedPath, RouterConfig, Routing};
use mfb_model::prelude::*;
use mfb_place::prelude::Placement;
use mfb_sched::prelude::*;

/// Maximum improvement sweeps over all tasks.
const MAX_SWEEPS: usize = 3;

/// Re-routes tasks of `routing` to reduce the distinct-cell channel count
/// (Table I's *total channel length*). Returns the improved routing;
/// idempotent once no task improves.
pub fn optimize_channel_length(
    routing: &Routing,
    schedule: &Schedule,
    graph: &SequencingGraph,
    placement: &Placement,
    wash: &dyn WashModel,
    config: &RouterConfig,
) -> Routing {
    optimize_channel_length_with_defects(
        routing,
        schedule,
        graph,
        placement,
        wash,
        config,
        &DefectMap::pristine(),
    )
}

/// [`optimize_channel_length`] on a damaged chip: re-routes are attempted on
/// a defect-aware grid, so the optimizer never trades a legal detour for a
/// shorter path through a blocked cell. With a pristine map this is exactly
/// the plain optimizer.
#[allow(clippy::too_many_arguments)]
pub fn optimize_channel_length_with_defects(
    routing: &Routing,
    schedule: &Schedule,
    graph: &SequencingGraph,
    placement: &Placement,
    wash: &dyn WashModel,
    config: &RouterConfig,
    defects: &DefectMap,
) -> Routing {
    // The optimizer re-books tasks at their *scheduled* windows; a routing
    // that carries correction delays lives at shifted times, and re-routing
    // it against scheduled windows would resurrect the conflicts the
    // correction resolved. Leave such routings untouched.
    if routing.total_delay(schedule) > Duration::ZERO {
        return routing.clone();
    }

    let wash_of = |op: OpId| wash.wash_time(graph.op(op).output_diffusion());
    let options = AstarOptions {
        use_weights: config.wash_aware_weights,
    };

    // Rebuild the grid from the existing paths.
    let mut grid = RoutingGrid::new_with_defects(placement, config.w_e, defects);
    // One search arena reused across every re-route attempt.
    let mut scratch = SearchScratch::new();
    let mut paths: Vec<RoutedPath> = routing.paths.clone();
    for p in &paths {
        for (cell, window) in p.occupancies() {
            grid.reserve(cell, p.task, p.fluid, window, wash_of);
        }
    }

    for _sweep in 0..MAX_SWEEPS {
        let mut improved = false;
        // Longest paths first: they have the most to gain.
        let mut order: Vec<usize> = (0..paths.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(paths[i].len()));

        for i in order {
            let task_id = paths[i].task;
            let t = schedule.transport(task_id);
            let before = grid.used_cell_count();

            grid.unreserve(task_id, wash_of);
            let src_ports = ports(placement, &grid, t.src);
            let dst_ports = ports(placement, &grid, t.dst);
            let attempt = route_one(
                &mut scratch,
                &grid,
                schedule,
                t,
                &src_ports,
                &dst_ports,
                config,
                wash_of,
                options,
            );

            match attempt {
                Some((cells, windows)) => {
                    for (&cell, &window) in cells.iter().zip(&windows) {
                        grid.reserve(cell, task_id, t.fluid, window, wash_of);
                    }
                    let after = grid.used_cell_count();
                    if after <= before && cells.len() <= paths[i].cells.len() {
                        if after < before || cells.len() < paths[i].cells.len() {
                            improved = true;
                        }
                        paths[i] = RoutedPath {
                            task: task_id,
                            fluid: t.fluid,
                            cells,
                            windows,
                        };
                    } else {
                        // Worse: restore the original path.
                        grid.unreserve(task_id, wash_of);
                        for (cell, window) in paths[i].occupancies() {
                            grid.reserve(cell, task_id, paths[i].fluid, window, wash_of);
                        }
                    }
                }
                None => {
                    // Should not happen (the old path is itself feasible),
                    // but restore defensively.
                    for (cell, window) in paths[i].occupancies() {
                        grid.reserve(cell, task_id, paths[i].fluid, window, wash_of);
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }

    Routing {
        paths,
        channel_washes: crate::router::collect_washes(&grid, wash_of),
        realized: routing.realized.clone(),
        grid: grid.spec(),
        used_cells: grid.used_cell_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::route_dcsa;
    use mfb_place::prelude::*;
    use mfb_sched::list::{schedule as run_sched, SchedulerConfig};

    fn setup(name: &str) -> (SequencingGraph, ComponentSet, Schedule, Placement, Routing) {
        let wash = LogLinearWash::paper_calibrated();
        let b = mfb_bench_suite::table1_benchmarks()
            .into_iter()
            .find(|b| b.name == name)
            .unwrap();
        let comps = b.components(&ComponentLibrary::default());
        let s = run_sched(&b.graph, &comps, &wash, &SchedulerConfig::paper_dcsa()).unwrap();
        let nets = NetList::build(&s, &b.graph, &wash, 0.6, 0.4);
        let p = place_sa_auto(&comps, &nets, &SaConfig::paper()).unwrap();
        let r = route_dcsa(&s, &b.graph, &p, &wash, &RouterConfig::paper()).unwrap();
        (b.graph, comps, s, p, r)
    }

    #[test]
    fn never_worsens_and_stays_conflict_free() {
        let wash = LogLinearWash::paper_calibrated();
        for name in ["IVD", "CPA", "Synthetic1"] {
            let (g, _c, s, p, r) = setup(name);
            let opt = optimize_channel_length(&r, &s, &g, &p, &wash, &RouterConfig::paper());
            assert!(
                opt.used_cells <= r.used_cells,
                "{name}: {} -> {}",
                r.used_cells,
                opt.used_cells
            );
            assert_eq!(opt.realized, r.realized, "{name}: times must not move");
            for i in 0..opt.paths.len() {
                for j in (i + 1)..opt.paths.len() {
                    assert!(
                        !opt.paths[i].conflicts_with(&opt.paths[j]),
                        "{name}: optimization introduced a conflict"
                    );
                }
            }
        }
    }

    #[test]
    fn is_idempotent_once_converged() {
        let wash = LogLinearWash::paper_calibrated();
        let (g, _c, s, p, r) = setup("IVD");
        let once = optimize_channel_length(&r, &s, &g, &p, &wash, &RouterConfig::paper());
        let twice = optimize_channel_length(&once, &s, &g, &p, &wash, &RouterConfig::paper());
        assert_eq!(once.used_cells, twice.used_cells);
    }
}
