//! Routing errors.

use mfb_model::prelude::*;
use std::fmt;

/// Errors produced by the routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouteError {
    /// No conflict-free path exists for a transport task: the grid is too
    /// congested. Retry on a larger grid.
    Unroutable {
        /// The task that could not be routed.
        task: TaskId,
    },
    /// A component has no routable adjacent cell (it is walled in by other
    /// components or the chip edge).
    NoPorts {
        /// The walled-in component.
        component: ComponentId,
    },
    /// The baseline's correction loop exceeded its postponement budget —
    /// the layout is pathologically congested.
    CorrectionDiverged {
        /// The task whose postponement exceeded the budget.
        task: TaskId,
    },
    /// The schedule handed to the router is internally inconsistent (e.g. a
    /// transport task whose consumer never appears among the scheduled
    /// operations), so the task was never visited.
    InconsistentSchedule {
        /// The task the router could not account for.
        task: TaskId,
    },
    /// The router stopped at a budget checkpoint before finishing: the
    /// deadline passed or the job was cancelled. Not a congestion proof —
    /// retrying with a fresh budget may succeed.
    Interrupted(BudgetExceeded),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::Unroutable { task } => {
                write!(f, "no conflict-free path for transport task {task}")
            }
            RouteError::NoPorts { component } => {
                write!(f, "component {component} has no routable port cell")
            }
            RouteError::CorrectionDiverged { task } => {
                write!(f, "correction could not resolve conflicts for task {task}")
            }
            RouteError::InconsistentSchedule { task } => {
                write!(
                    f,
                    "schedule is internally inconsistent: transport task {task} was never visited"
                )
            }
            RouteError::Interrupted(why) => write!(f, "routing interrupted: {why}"),
        }
    }
}

impl std::error::Error for RouteError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_mention_ids() {
        assert!(RouteError::Unroutable {
            task: TaskId::new(4)
        }
        .to_string()
        .contains("tk4"));
        assert!(RouteError::NoPorts {
            component: ComponentId::new(2)
        }
        .to_string()
        .contains("c2"));
        assert!(RouteError::CorrectionDiverged {
            task: TaskId::new(1)
        }
        .to_string()
        .contains("tk1"));
    }
}
