//! Time-windowed, wash-weighted A* path search (paper Eq. (5)).
//!
//! The search runs over the routable cells of a [`RoutingGrid`]; a cell is
//! expandable only if the task's occupancy window fits the cell's time slots
//! and wash gaps ([`RoutingGrid::feasible`]), which makes the three conflict
//! classes of §II-C.2 unrepresentable in any returned path. The cost of a
//! path is its length plus the accumulated cell weights `w(i)` — wash times
//! of current residues — so the search prefers sharing cheap-to-wash
//! channels over breaking fresh ground, exactly the bias the paper uses to
//! shorten total channel length.
//!
//! Components expose several port cells (every routable cell adjacent to
//! their rectangle), so the search is multi-source / multi-target.

use crate::grid::RoutingGrid;
use mfb_model::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Cost units per cell of path length. Weights are measured in ticks
/// (0.1 s), so with `LENGTH_COST = 10` one grid cell trades against one
/// second of wash time.
const LENGTH_COST: u64 = 10;

/// Extra cost for traversing a component's access ring
/// ([`RoutingGrid::is_ring`]). Keeps through-traffic away from ports so
/// transit paths do not wall components in with wash shadows; endpoints pay
/// it a constant number of times, so path comparisons are unaffected.
const RING_TAX: u64 = 3 * LENGTH_COST;

/// Search options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AstarOptions {
    /// Add the per-cell weights `w(i)` to the cost (Eq. (5)). Disable to get
    /// plain shortest-feasible-path search (used by the baseline router and
    /// the weight ablation).
    pub use_weights: bool,
}

impl Default for AstarOptions {
    fn default() -> Self {
        AstarOptions { use_weights: true }
    }
}

/// Finds a feasible path from any cell of `sources` to any cell of
/// `targets`, for a fluid occupying each visited cell during
/// `window_of(cell)`.
///
/// The per-cell window lets callers model *where the fluid parks*: cells
/// near the destination carry the full transport-plus-cache window, cells
/// merely passed through carry only the transport window (see
/// [`crate::router::RouterConfig::plug_cells`]).
///
/// Returns the cell sequence (source first), or `None` when no feasible
/// path exists. Source and target sets may intersect; the path then is a
/// single cell.
pub fn find_path(
    grid: &RoutingGrid,
    sources: &[CellPos],
    targets: &[CellPos],
    window_of: impl Fn(CellPos) -> Interval + Copy,
    fluid: OpId,
    wash_of: impl Fn(OpId) -> Duration + Copy,
    options: AstarOptions,
) -> Option<Vec<CellPos>> {
    if sources.is_empty() || targets.is_empty() {
        return None;
    }
    let spec = grid.spec();
    let n = spec.cell_count() as usize;
    let mut is_target = vec![false; n];
    for &t in targets {
        if spec.contains(t) {
            is_target[spec.index(t)] = true;
        }
    }

    let h = |cell: CellPos| -> u64 {
        targets
            .iter()
            .map(|&t| u64::from(cell.manhattan(t)))
            .min()
            .unwrap_or(0)
            * LENGTH_COST
    };
    let cell_cost = |cell: CellPos| -> u64 {
        LENGTH_COST
            + if grid.is_ring(cell) { RING_TAX } else { 0 }
            + if options.use_weights {
                grid.weight(cell).as_ticks()
            } else {
                0
            }
    };

    let mut dist = vec![u64::MAX; n];
    let mut prev: Vec<Option<CellPos>> = vec![None; n];
    // Heap entries: Reverse((f, g, y, x)) — deterministic tie-breaking.
    let mut heap: BinaryHeap<Reverse<(u64, u64, u32, u32)>> = BinaryHeap::new();

    for &s in sources {
        if !grid.feasible(s, window_of(s), fluid, wash_of) {
            continue;
        }
        let g = cell_cost(s);
        let idx = spec.index(s);
        if g < dist[idx] {
            dist[idx] = g;
            heap.push(Reverse((g + h(s), g, s.y, s.x)));
        }
    }

    while let Some(Reverse((_, g, y, x))) = heap.pop() {
        let cell = CellPos::new(x, y);
        let idx = spec.index(cell);
        if g > dist[idx] {
            continue; // stale entry
        }
        if is_target[idx] {
            // Reconstruct.
            let mut path = vec![cell];
            let mut cur = cell;
            while let Some(p) = prev[spec.index(cur)] {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for nb in cell.neighbours(spec.width, spec.height) {
            if !grid.feasible(nb, window_of(nb), fluid, wash_of) {
                continue;
            }
            let ng = g + cell_cost(nb);
            let nidx = spec.index(nb);
            if ng < dist[nidx] {
                dist[nidx] = ng;
                prev[nidx] = Some(cell);
                heap.push(Reverse((ng + h(nb), ng, nb.y, nb.x)));
            }
        }
    }
    None
}

/// Single-source(-set) shortest-path map under a fixed occupancy window:
/// Dijkstra over all cells feasible for `window`, returning per-cell cost
/// (`u64::MAX` where unreachable) and predecessor maps.
///
/// Used by the remote-parking fallback, which needs distances from the
/// source ports *and* from the destination ports to every candidate parking
/// cell.
pub fn dijkstra_map(
    grid: &RoutingGrid,
    sources: &[CellPos],
    window: Interval,
    fluid: OpId,
    wash_of: impl Fn(OpId) -> Duration + Copy,
    options: AstarOptions,
) -> (Vec<u64>, Vec<Option<CellPos>>) {
    let spec = grid.spec();
    let n = spec.cell_count() as usize;
    let cell_cost = |cell: CellPos| -> u64 {
        LENGTH_COST
            + if grid.is_ring(cell) { RING_TAX } else { 0 }
            + if options.use_weights {
                grid.weight(cell).as_ticks()
            } else {
                0
            }
    };
    let mut dist = vec![u64::MAX; n];
    let mut prev: Vec<Option<CellPos>> = vec![None; n];
    let mut heap: BinaryHeap<Reverse<(u64, u32, u32)>> = BinaryHeap::new();
    for &s in sources {
        if !grid.feasible(s, window, fluid, wash_of) {
            continue;
        }
        let g = cell_cost(s);
        let idx = spec.index(s);
        if g < dist[idx] {
            dist[idx] = g;
            heap.push(Reverse((g, s.y, s.x)));
        }
    }
    while let Some(Reverse((g, y, x))) = heap.pop() {
        let cell = CellPos::new(x, y);
        let idx = spec.index(cell);
        if g > dist[idx] {
            continue;
        }
        for nb in cell.neighbours(spec.width, spec.height) {
            if !grid.feasible(nb, window, fluid, wash_of) {
                continue;
            }
            let ng = g + cell_cost(nb);
            let nidx = spec.index(nb);
            if ng < dist[nidx] {
                dist[nidx] = ng;
                prev[nidx] = Some(cell);
                heap.push(Reverse((ng, nb.y, nb.x)));
            }
        }
    }
    (dist, prev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfb_place::prelude::Placement;

    fn wash2(_: OpId) -> Duration {
        Duration::from_secs(2)
    }

    fn iv(a: u64, b: u64) -> Interval {
        Interval::new(Instant::from_secs(a), Instant::from_secs(b))
    }

    fn open_grid() -> RoutingGrid {
        let p = Placement::new(GridSpec::square(10), vec![]);
        RoutingGrid::new(&p, Duration::from_secs(10))
    }

    #[test]
    fn straight_line_on_empty_grid() {
        let g = open_grid();
        let path = find_path(
            &g,
            &[CellPos::new(0, 5)],
            &[CellPos::new(9, 5)],
            |_| iv(0, 10),
            OpId::new(0),
            wash2,
            AstarOptions::default(),
        )
        .unwrap();
        assert_eq!(path.len(), 10);
        assert_eq!(path[0], CellPos::new(0, 5));
        assert_eq!(path[9], CellPos::new(9, 5));
        // Consecutive cells are neighbours.
        for w in path.windows(2) {
            assert_eq!(w[0].manhattan(w[1]), 1);
        }
    }

    #[test]
    fn single_cell_when_source_is_target() {
        let g = open_grid();
        let path = find_path(
            &g,
            &[CellPos::new(3, 3)],
            &[CellPos::new(3, 3)],
            |_| iv(0, 5),
            OpId::new(0),
            wash2,
            AstarOptions::default(),
        )
        .unwrap();
        assert_eq!(path, vec![CellPos::new(3, 3)]);
    }

    #[test]
    fn routes_around_components() {
        // A wall of component cells with one gap.
        let p = Placement::new(
            GridSpec::square(10),
            vec![
                CellRect::new(CellPos::new(4, 0), 2, 4),
                CellRect::new(CellPos::new(4, 5), 2, 5),
            ],
        );
        let g = RoutingGrid::new(&p, Duration::from_secs(10));
        let path = find_path(
            &g,
            &[CellPos::new(0, 0)],
            &[CellPos::new(9, 0)],
            |_| iv(0, 10),
            OpId::new(0),
            wash2,
            AstarOptions::default(),
        )
        .unwrap();
        // Must pass through the gap row y = 4.
        assert!(path.contains(&CellPos::new(4, 4)) && path.contains(&CellPos::new(5, 4)));
    }

    #[test]
    fn avoids_time_conflicts() {
        let mut g = open_grid();
        // Reserve the entire middle column for an overlapping window.
        for y in 0..10 {
            g.reserve(
                CellPos::new(5, y),
                TaskId::new(0),
                OpId::new(7),
                iv(0, 100),
                wash2,
            );
        }
        let path = find_path(
            &g,
            &[CellPos::new(0, 5)],
            &[CellPos::new(9, 5)],
            |_| iv(0, 10),
            OpId::new(1),
            wash2,
            AstarOptions::default(),
        );
        assert!(path.is_none(), "column blocks every crossing");

        // A later window clears the wash gap (100 + 2 s) and is feasible.
        let later = find_path(
            &g,
            &[CellPos::new(0, 5)],
            &[CellPos::new(9, 5)],
            |_| iv(102, 110),
            OpId::new(1),
            wash2,
            AstarOptions::default(),
        );
        assert!(later.is_some());
    }

    #[test]
    fn weights_attract_reuse() {
        let mut g = open_grid();
        // A previously-routed straight channel with cheap residue (2 s wash
        // vs w_e = 10 s): rerouting the same endpoints later should ride it.
        let fluid = OpId::new(0);
        for x in 0..10 {
            g.reserve(CellPos::new(x, 5), TaskId::new(0), fluid, iv(0, 5), wash2);
        }
        let path = find_path(
            &g,
            &[CellPos::new(0, 5)],
            &[CellPos::new(9, 5)],
            |_| iv(10, 20),
            OpId::new(1),
            wash2,
            AstarOptions::default(),
        )
        .unwrap();
        assert!(
            path.iter().all(|c| c.y == 5),
            "expected the washed channel to be reused: {path:?}"
        );
    }

    #[test]
    fn without_weights_any_shortest_path_wins() {
        let g = open_grid();
        let path = find_path(
            &g,
            &[CellPos::new(0, 0)],
            &[CellPos::new(3, 3)],
            |_| iv(0, 5),
            OpId::new(0),
            wash2,
            AstarOptions { use_weights: false },
        )
        .unwrap();
        assert_eq!(path.len(), 7); // manhattan 6 + start cell
    }

    #[test]
    fn multi_target_prefers_nearest() {
        let g = open_grid();
        let path = find_path(
            &g,
            &[CellPos::new(0, 0)],
            &[CellPos::new(9, 9), CellPos::new(2, 0)],
            |_| iv(0, 5),
            OpId::new(0),
            wash2,
            AstarOptions::default(),
        )
        .unwrap();
        assert_eq!(*path.last().unwrap(), CellPos::new(2, 0));
        assert_eq!(path.len(), 3);
    }

    #[test]
    fn empty_sets_yield_none() {
        let g = open_grid();
        assert!(find_path(
            &g,
            &[],
            &[CellPos::new(1, 1)],
            |_| iv(0, 5),
            OpId::new(0),
            wash2,
            AstarOptions::default()
        )
        .is_none());
        assert!(find_path(
            &g,
            &[CellPos::new(1, 1)],
            &[],
            |_| iv(0, 5),
            OpId::new(0),
            wash2,
            AstarOptions::default()
        )
        .is_none());
    }
}
