//! Time-windowed, wash-weighted A* path search (paper Eq. (5)).
//!
//! The search runs over the routable cells of a [`RoutingGrid`]; a cell is
//! expandable only if the task's occupancy window fits the cell's time slots
//! and wash gaps ([`RoutingGrid::feasible`]), which makes the three conflict
//! classes of §II-C.2 unrepresentable in any returned path. The cost of a
//! path is its length plus the accumulated cell weights `w(i)` — wash times
//! of current residues — so the search prefers sharing cheap-to-wash
//! channels over breaking fresh ground, exactly the bias the paper uses to
//! shorten total channel length.
//!
//! Components expose several port cells (every routable cell adjacent to
//! their rectangle), so the search is multi-source / multi-target.

use crate::grid::RoutingGrid;
use mfb_model::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Cost units per cell of path length. Weights are measured in ticks
/// (0.1 s), so with `LENGTH_COST = 10` one grid cell trades against one
/// second of wash time.
const LENGTH_COST: u64 = 10;

/// Extra cost for traversing a component's access ring
/// ([`RoutingGrid::is_ring`]). Keeps through-traffic away from ports so
/// transit paths do not wall components in with wash shadows; endpoints pay
/// it a constant number of times, so path comparisons are unaffected.
const RING_TAX: u64 = 3 * LENGTH_COST;

/// Search options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AstarOptions {
    /// Add the per-cell weights `w(i)` to the cost (Eq. (5)). Disable to get
    /// plain shortest-feasible-path search (used by the baseline router and
    /// the weight ablation).
    pub use_weights: bool,
}

impl Default for AstarOptions {
    fn default() -> Self {
        AstarOptions { use_weights: true }
    }
}

/// Search counters, accumulated across every query run on one
/// [`SearchScratch`]; `mfb bench` reports expansions/sec from these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Queries started (`find_path` + `dijkstra_map` calls).
    pub queries: u64,
    /// Heap pops that survived the stale-entry check and were expanded.
    pub expansions: u64,
    /// Heap pushes.
    pub heap_pushes: u64,
    /// Parked-path window retries: banning iterations in
    /// `find_parked_path` after the first attempt.
    pub window_retries: u64,
    /// Rip-up-and-reroute evictions performed by the conflict-aware router
    /// (each blocker torn out of the grid counts once).
    pub rips: u64,
    /// Negotiation sweeps run by the negotiated-congestion router
    /// ([`crate::negotiate`]).
    pub negotiation_iters: u64,
}

/// Reusable search arena: one per router, shared by every net.
///
/// All per-query state lives in flat arrays validated by a generation
/// stamp: [`SearchScratch::begin`] bumps a `u32` epoch instead of
/// refilling, so starting a query is O(1) and a whole routing run performs
/// no per-net allocation once the arrays have grown to the grid size. The
/// heuristic and feasibility of a cell are each computed at most once per
/// query (they are pure within one query) and memoized under the same
/// epoch; the heuristic memo keeps the exact min-over-targets Manhattan
/// value — with a bounding-box lower bound used only to stop the target
/// scan early — so f-values, heap order and tie-breaking are bit-identical
/// to the historical per-expansion scan.
#[derive(Debug, Default)]
pub struct SearchScratch {
    epoch: u32,
    /// Stamp validating `dist`/`prev` for the current query.
    visit_stamp: Vec<u32>,
    dist: Vec<u64>,
    prev: Vec<Option<CellPos>>,
    /// Stamp marking target cells for the current query.
    target_stamp: Vec<u32>,
    /// Memoized heuristic (`h_stamp` validates `h_val`).
    h_stamp: Vec<u32>,
    h_val: Vec<u64>,
    /// Memoized feasibility (`feas_stamp` validates `feas_val`).
    feas_stamp: Vec<u32>,
    feas_val: Vec<bool>,
    /// Memoized per-cell step cost (`cost_stamp` validates `cost_val`) —
    /// constant within a query, and probed up to once per incoming edge.
    cost_stamp: Vec<u32>,
    cost_val: Vec<u64>,
    /// A* heap, cleared (not reallocated) between queries. Entries are
    /// `(f, g·2³² | y·2¹⁶ | x)` — see [`pack`].
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    /// Dijkstra heap for [`dijkstra_map_with`]; entries are [`pack`]ed.
    dheap: BinaryHeap<Reverse<u64>>,
    /// Execution budget polled every [`BUDGET_CHECK_MASK`]+1 expansions.
    /// `None` (the default, and any unlimited budget) skips the poll
    /// entirely, keeping the hot loop identical to the unbudgeted search.
    budget: Option<Budget>,
    /// Set when a query stopped at a budget checkpoint; the searches then
    /// return "no path" / partial maps and the router surfaces
    /// [`crate::error::RouteError::Interrupted`].
    interrupted: Option<BudgetExceeded>,
    /// Counters across all queries since construction.
    pub stats: SearchStats,
}

/// Budget poll cadence: every `BUDGET_CHECK_MASK + 1` expansions. A few
/// thousand expansions take well under a millisecond, so deadlines are
/// honored promptly while the per-expansion overhead stays one masked
/// compare.
const BUDGET_CHECK_MASK: u64 = 0xFFF;

impl SearchScratch {
    /// An empty arena; arrays grow on first use.
    #[must_use]
    pub fn new() -> Self {
        SearchScratch::default()
    }

    /// Installs an execution budget: subsequent queries poll it periodically
    /// and stop early when it trips (see
    /// [`interrupted`](Self::interrupted)). An unlimited budget uninstalls
    /// the poll. Clears any previous interrupt flag.
    pub fn set_budget(&mut self, budget: &Budget) {
        self.budget = if budget.is_unlimited() {
            None
        } else {
            Some(budget.clone())
        };
        self.interrupted = None;
    }

    /// Why the last query stopped early, if it did. The flag persists until
    /// the next [`set_budget`](Self::set_budget), so drivers can run a whole
    /// routing pass and ask once at the end.
    pub fn interrupted(&self) -> Option<BudgetExceeded> {
        self.interrupted
    }

    /// Polls the installed budget between queries (the in-query poll only
    /// fires every few thousand expansions, so cheap queries could otherwise
    /// outrun the deadline). Latches and returns the interrupt, if any.
    pub fn poll_budget(&mut self) -> Option<BudgetExceeded> {
        if self.interrupted.is_none() {
            if let Some(b) = &self.budget {
                if let Err(why) = b.check() {
                    self.interrupted = Some(why);
                }
            }
        }
        self.interrupted
    }

    /// Starts a query over `n` cells: grows the arrays if needed and bumps
    /// the epoch, invalidating every stamped entry at once.
    fn begin(&mut self, n: usize) {
        if self.visit_stamp.len() < n {
            self.visit_stamp.resize(n, 0);
            self.dist.resize(n, u64::MAX);
            self.prev.resize(n, None);
            self.target_stamp.resize(n, 0);
            self.h_stamp.resize(n, 0);
            self.h_val.resize(n, 0);
            self.feas_stamp.resize(n, 0);
            self.feas_val.resize(n, false);
            self.cost_stamp.resize(n, 0);
            self.cost_val.resize(n, 0);
        }
        if self.epoch == u32::MAX {
            // Epoch wrap: degrade gracefully by resetting every stamp.
            self.visit_stamp.fill(0);
            self.target_stamp.fill(0);
            self.h_stamp.fill(0);
            self.feas_stamp.fill(0);
            self.cost_stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
        self.heap.clear();
        self.dheap.clear();
        self.stats.queries += 1;
    }
}

/// Packs `(g, y, x)` into one `u64` whose natural order **is** the
/// `(g, y, x)` lexicographic order of the historical heap tuples: `g` is
/// bounded by grid area times the per-cell cost (≪ 2³²) and coordinates by
/// the grid dimensions (≪ 2¹⁶), so the fields never carry.
#[inline]
fn pack(g: u64, cell: CellPos) -> u64 {
    debug_assert!(g < 1 << 32 && cell.x < 1 << 16 && cell.y < 1 << 16);
    (g << 32) | u64::from(cell.y) << 16 | u64::from(cell.x)
}

/// Inverse of [`pack`].
#[inline]
fn unpack(key: u64) -> (u64, CellPos) {
    (
        key >> 32,
        CellPos::new((key & 0xFFFF) as u32, ((key >> 16) & 0xFFFF) as u32),
    )
}

/// Finds a feasible path from any cell of `sources` to any cell of
/// `targets`, for a fluid occupying each visited cell during
/// `window_of(cell)`.
///
/// The per-cell window lets callers model *where the fluid parks*: cells
/// near the destination carry the full transport-plus-cache window, cells
/// merely passed through carry only the transport window (see
/// [`crate::router::RouterConfig::plug_cells`]).
///
/// Returns the cell sequence (source first), or `None` when no feasible
/// path exists. Source and target sets may intersect; the path then is a
/// single cell.
pub fn find_path(
    grid: &RoutingGrid,
    sources: &[CellPos],
    targets: &[CellPos],
    window_of: impl Fn(CellPos) -> Interval + Copy,
    fluid: OpId,
    wash_of: impl Fn(OpId) -> Duration + Copy,
    options: AstarOptions,
) -> Option<Vec<CellPos>> {
    let mut scratch = SearchScratch::new();
    find_path_with(
        &mut scratch,
        grid,
        sources,
        targets,
        window_of,
        fluid,
        wash_of,
        options,
    )
}

/// [`find_path`] on a caller-owned [`SearchScratch`] — the hot-path entry
/// the router uses, allocation-free once the arena has grown to the grid.
#[allow(clippy::too_many_arguments)]
pub fn find_path_with(
    scratch: &mut SearchScratch,
    grid: &RoutingGrid,
    sources: &[CellPos],
    targets: &[CellPos],
    window_of: impl Fn(CellPos) -> Interval + Copy,
    fluid: OpId,
    wash_of: impl Fn(OpId) -> Duration + Copy,
    options: AstarOptions,
) -> Option<Vec<CellPos>> {
    if sources.is_empty() || targets.is_empty() {
        return None;
    }
    let spec = grid.spec();
    // Every target off the grid: unreachable, and the historical search
    // would only have exhausted the heap to conclude the same.
    if !targets.iter().any(|&t| spec.contains(t)) {
        return None;
    }
    let n = spec.cell_count() as usize;
    scratch.begin(n);
    let SearchScratch {
        epoch,
        visit_stamp,
        dist,
        prev,
        target_stamp,
        h_stamp,
        h_val,
        feas_stamp,
        feas_val,
        cost_stamp,
        cost_val,
        heap,
        budget,
        interrupted,
        stats,
        ..
    } = scratch;
    let epoch = *epoch;
    for &t in targets {
        if spec.contains(t) {
            target_stamp[spec.index(t)] = epoch;
        }
    }
    // Bounding box over *all* targets (off-grid included — they shape the
    // historical heuristic too): a lower bound that lets the memoized exact
    // min-over-targets scan stop early without changing its value.
    let bx0 = targets.iter().map(|t| t.x).min().unwrap_or(0);
    let bx1 = targets.iter().map(|t| t.x).max().unwrap_or(0);
    let by0 = targets.iter().map(|t| t.y).min().unwrap_or(0);
    let by1 = targets.iter().map(|t| t.y).max().unwrap_or(0);

    let mut h = |cell: CellPos, idx: usize| -> u64 {
        if h_stamp[idx] == epoch {
            return h_val[idx];
        }
        let dx = u64::from(cell.x.clamp(bx0, bx1).abs_diff(cell.x));
        let dy = u64::from(cell.y.clamp(by0, by1).abs_diff(cell.y));
        let bound = dx + dy;
        let mut min = u64::MAX;
        for &t in targets {
            min = min.min(u64::from(cell.manhattan(t)));
            if min == bound {
                break; // cannot get below the bounding-box distance
            }
        }
        let v = min * LENGTH_COST;
        h_stamp[idx] = epoch;
        h_val[idx] = v;
        v
    };
    let mut cell_cost = |cell: CellPos, idx: usize| -> u64 {
        if cost_stamp[idx] == epoch {
            return cost_val[idx];
        }
        let c = LENGTH_COST
            + if grid.is_ring(cell) { RING_TAX } else { 0 }
            + if options.use_weights {
                grid.weight(cell).as_ticks()
            } else {
                0
            };
        cost_stamp[idx] = epoch;
        cost_val[idx] = c;
        c
    };
    let mut feasible = |cell: CellPos, idx: usize| -> bool {
        if feas_stamp[idx] == epoch {
            return feas_val[idx];
        }
        let f = grid.feasible(cell, window_of(cell), fluid, wash_of);
        feas_stamp[idx] = epoch;
        feas_val[idx] = f;
        f
    };

    for &s in sources {
        let idx = spec.index(s);
        if !feasible(s, idx) {
            continue;
        }
        let g = cell_cost(s, idx);
        let known = if visit_stamp[idx] == epoch {
            dist[idx]
        } else {
            u64::MAX
        };
        if g < known {
            visit_stamp[idx] = epoch;
            dist[idx] = g;
            prev[idx] = None;
            heap.push(Reverse((g + h(s, idx), pack(g, s))));
            stats.heap_pushes += 1;
        }
    }

    while let Some(Reverse((_, key))) = heap.pop() {
        let (g, cell) = unpack(key);
        let idx = spec.index(cell);
        if g > dist[idx] {
            continue; // stale entry — the cell was finalized cheaper
        }
        stats.expansions += 1;
        if stats.expansions & BUDGET_CHECK_MASK == 0 {
            if let Some(b) = budget {
                if let Err(why) = b.check() {
                    *interrupted = Some(why);
                    return None;
                }
            }
        }
        if target_stamp[idx] == epoch {
            // Reconstruct.
            let mut path = vec![cell];
            let mut cur = cell;
            while let Some(p) = prev[spec.index(cur)] {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for nb in cell.neighbours(spec.width, spec.height) {
            let nidx = spec.index(nb);
            // Cost test first: it is cheap, and a cell that cannot improve
            // was either never feasible (dist = MAX, test passes) or
            // already relaxed cheaper — skipping the feasibility probe and
            // the heap push either way is outcome-identical.
            let ng = g + cell_cost(nb, nidx);
            let known = if visit_stamp[nidx] == epoch {
                dist[nidx]
            } else {
                u64::MAX
            };
            if ng >= known || !feasible(nb, nidx) {
                continue;
            }
            visit_stamp[nidx] = epoch;
            dist[nidx] = ng;
            prev[nidx] = Some(cell);
            heap.push(Reverse((ng + h(nb, nidx), pack(ng, nb))));
            stats.heap_pushes += 1;
        }
    }
    None
}

/// A* with **soft** occupancy: time-window conflicts do not gate
/// expansion at all — instead each cell pays an extra `congestion(cell)`
/// cost on top of length, ring tax and wash weights. This is the search
/// primitive of the PathFinder-style negotiated router
/// ([`crate::negotiate`]): structural constraints (`RoutingGrid::is_routable`
/// plus the caller's `hard_ok` mask, used for foreign-ring tail bans) stay
/// hard, while sharing a contested cell merely becomes expensive.
///
/// Deterministic tie-breaking is inherited unchanged from
/// [`find_path_with`]: heap keys are `(f, g·2³² | y·2¹⁶ | x)`, so equal-cost
/// frontiers pop in a fixed coordinate order regardless of insertion
/// history. `congestion` must be pure within one query (it is memoized
/// per cell alongside the base step cost).
///
/// Returns the cell sequence (source first), or `None` when the structural
/// grid admits no path at all.
#[allow(clippy::too_many_arguments)]
pub fn find_path_soft(
    scratch: &mut SearchScratch,
    grid: &RoutingGrid,
    sources: &[CellPos],
    targets: &[CellPos],
    hard_ok: impl Fn(CellPos) -> bool + Copy,
    congestion: impl Fn(CellPos) -> u64 + Copy,
    options: AstarOptions,
) -> Option<Vec<CellPos>> {
    if sources.is_empty() || targets.is_empty() {
        return None;
    }
    let spec = grid.spec();
    if !targets.iter().any(|&t| spec.contains(t)) {
        return None;
    }
    let n = spec.cell_count() as usize;
    scratch.begin(n);
    let SearchScratch {
        epoch,
        visit_stamp,
        dist,
        prev,
        target_stamp,
        h_stamp,
        h_val,
        feas_stamp,
        feas_val,
        cost_stamp,
        cost_val,
        heap,
        budget,
        interrupted,
        stats,
        ..
    } = scratch;
    let epoch = *epoch;
    for &t in targets {
        if spec.contains(t) {
            target_stamp[spec.index(t)] = epoch;
        }
    }
    let bx0 = targets.iter().map(|t| t.x).min().unwrap_or(0);
    let bx1 = targets.iter().map(|t| t.x).max().unwrap_or(0);
    let by0 = targets.iter().map(|t| t.y).min().unwrap_or(0);
    let by1 = targets.iter().map(|t| t.y).max().unwrap_or(0);

    let mut h = |cell: CellPos, idx: usize| -> u64 {
        if h_stamp[idx] == epoch {
            return h_val[idx];
        }
        let dx = u64::from(cell.x.clamp(bx0, bx1).abs_diff(cell.x));
        let dy = u64::from(cell.y.clamp(by0, by1).abs_diff(cell.y));
        let bound = dx + dy;
        let mut min = u64::MAX;
        for &t in targets {
            min = min.min(u64::from(cell.manhattan(t)));
            if min == bound {
                break;
            }
        }
        // Per-cell cost is at least LENGTH_COST (congestion only adds), so
        // the plain Manhattan bound stays admissible.
        let v = min * LENGTH_COST;
        h_stamp[idx] = epoch;
        h_val[idx] = v;
        v
    };
    let mut cell_cost = |cell: CellPos, idx: usize| -> u64 {
        if cost_stamp[idx] == epoch {
            return cost_val[idx];
        }
        let c = LENGTH_COST
            + if grid.is_ring(cell) { RING_TAX } else { 0 }
            + if options.use_weights {
                grid.weight(cell).as_ticks()
            } else {
                0
            }
            + congestion(cell);
        cost_stamp[idx] = epoch;
        cost_val[idx] = c;
        c
    };
    let mut feasible = |cell: CellPos, idx: usize| -> bool {
        if feas_stamp[idx] == epoch {
            return feas_val[idx];
        }
        let f = grid.is_routable(cell) && hard_ok(cell);
        feas_stamp[idx] = epoch;
        feas_val[idx] = f;
        f
    };

    for &s in sources {
        let idx = spec.index(s);
        if !feasible(s, idx) {
            continue;
        }
        let g = cell_cost(s, idx);
        let known = if visit_stamp[idx] == epoch {
            dist[idx]
        } else {
            u64::MAX
        };
        if g < known {
            visit_stamp[idx] = epoch;
            dist[idx] = g;
            prev[idx] = None;
            heap.push(Reverse((g + h(s, idx), pack(g, s))));
            stats.heap_pushes += 1;
        }
    }

    while let Some(Reverse((_, key))) = heap.pop() {
        let (g, cell) = unpack(key);
        let idx = spec.index(cell);
        if g > dist[idx] {
            continue;
        }
        stats.expansions += 1;
        if stats.expansions & BUDGET_CHECK_MASK == 0 {
            if let Some(b) = budget {
                if let Err(why) = b.check() {
                    *interrupted = Some(why);
                    return None;
                }
            }
        }
        if target_stamp[idx] == epoch {
            let mut path = vec![cell];
            let mut cur = cell;
            while let Some(p) = prev[spec.index(cur)] {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for nb in cell.neighbours(spec.width, spec.height) {
            let nidx = spec.index(nb);
            let ng = g + cell_cost(nb, nidx);
            let known = if visit_stamp[nidx] == epoch {
                dist[nidx]
            } else {
                u64::MAX
            };
            if ng >= known || !feasible(nb, nidx) {
                continue;
            }
            visit_stamp[nidx] = epoch;
            dist[nidx] = ng;
            prev[nidx] = Some(cell);
            heap.push(Reverse((ng + h(nb, nidx), pack(ng, nb))));
            stats.heap_pushes += 1;
        }
    }
    None
}

/// Single-source(-set) shortest-path map under a fixed occupancy window:
/// Dijkstra over all cells feasible for `window`, returning per-cell cost
/// (`u64::MAX` where unreachable) and predecessor maps.
///
/// Used by the remote-parking fallback, which needs distances from the
/// source ports *and* from the destination ports to every candidate parking
/// cell.
pub fn dijkstra_map(
    grid: &RoutingGrid,
    sources: &[CellPos],
    window: Interval,
    fluid: OpId,
    wash_of: impl Fn(OpId) -> Duration + Copy,
    options: AstarOptions,
) -> (Vec<u64>, Vec<Option<CellPos>>) {
    let mut scratch = SearchScratch::new();
    dijkstra_map_with(&mut scratch, grid, sources, window, fluid, wash_of, options)
}

/// [`dijkstra_map`] on a caller-owned [`SearchScratch`]: the heap is reused
/// and feasibility is memoized per cell, but the returned maps are freshly
/// allocated (they outlive the query).
pub fn dijkstra_map_with(
    scratch: &mut SearchScratch,
    grid: &RoutingGrid,
    sources: &[CellPos],
    window: Interval,
    fluid: OpId,
    wash_of: impl Fn(OpId) -> Duration + Copy,
    options: AstarOptions,
) -> (Vec<u64>, Vec<Option<CellPos>>) {
    let spec = grid.spec();
    let n = spec.cell_count() as usize;
    scratch.begin(n);
    let SearchScratch {
        epoch,
        feas_stamp,
        feas_val,
        cost_stamp,
        cost_val,
        dheap: heap,
        budget,
        interrupted,
        stats,
        ..
    } = scratch;
    let epoch = *epoch;
    let mut cell_cost = |cell: CellPos, idx: usize| -> u64 {
        if cost_stamp[idx] == epoch {
            return cost_val[idx];
        }
        let c = LENGTH_COST
            + if grid.is_ring(cell) { RING_TAX } else { 0 }
            + if options.use_weights {
                grid.weight(cell).as_ticks()
            } else {
                0
            };
        cost_stamp[idx] = epoch;
        cost_val[idx] = c;
        c
    };
    let mut feasible = |cell: CellPos, idx: usize| -> bool {
        if feas_stamp[idx] == epoch {
            return feas_val[idx];
        }
        let f = grid.feasible(cell, window, fluid, wash_of);
        feas_stamp[idx] = epoch;
        feas_val[idx] = f;
        f
    };
    let mut dist = vec![u64::MAX; n];
    let mut prev: Vec<Option<CellPos>> = vec![None; n];
    for &s in sources {
        let idx = spec.index(s);
        if !feasible(s, idx) {
            continue;
        }
        let g = cell_cost(s, idx);
        if g < dist[idx] {
            dist[idx] = g;
            heap.push(Reverse(pack(g, s)));
            stats.heap_pushes += 1;
        }
    }
    while let Some(Reverse(key)) = heap.pop() {
        let (g, cell) = unpack(key);
        let idx = spec.index(cell);
        if g > dist[idx] {
            continue;
        }
        stats.expansions += 1;
        if stats.expansions & BUDGET_CHECK_MASK == 0 {
            if let Some(b) = budget {
                if let Err(why) = b.check() {
                    *interrupted = Some(why);
                    // Abandon the sweep: callers see the interrupt flag and
                    // discard the (partial) maps.
                    break;
                }
            }
        }
        for nb in cell.neighbours(spec.width, spec.height) {
            let nidx = spec.index(nb);
            let ng = g + cell_cost(nb, nidx);
            if ng >= dist[nidx] || !feasible(nb, nidx) {
                continue;
            }
            dist[nidx] = ng;
            prev[nidx] = Some(cell);
            heap.push(Reverse(pack(ng, nb)));
            stats.heap_pushes += 1;
        }
    }
    (dist, prev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfb_place::prelude::Placement;

    fn wash2(_: OpId) -> Duration {
        Duration::from_secs(2)
    }

    fn iv(a: u64, b: u64) -> Interval {
        Interval::new(Instant::from_secs(a), Instant::from_secs(b))
    }

    fn open_grid() -> RoutingGrid {
        let p = Placement::new(GridSpec::square(10), vec![]);
        RoutingGrid::new(&p, Duration::from_secs(10))
    }

    #[test]
    fn straight_line_on_empty_grid() {
        let g = open_grid();
        let path = find_path(
            &g,
            &[CellPos::new(0, 5)],
            &[CellPos::new(9, 5)],
            |_| iv(0, 10),
            OpId::new(0),
            wash2,
            AstarOptions::default(),
        )
        .unwrap();
        assert_eq!(path.len(), 10);
        assert_eq!(path[0], CellPos::new(0, 5));
        assert_eq!(path[9], CellPos::new(9, 5));
        // Consecutive cells are neighbours.
        for w in path.windows(2) {
            assert_eq!(w[0].manhattan(w[1]), 1);
        }
    }

    #[test]
    fn single_cell_when_source_is_target() {
        let g = open_grid();
        let path = find_path(
            &g,
            &[CellPos::new(3, 3)],
            &[CellPos::new(3, 3)],
            |_| iv(0, 5),
            OpId::new(0),
            wash2,
            AstarOptions::default(),
        )
        .unwrap();
        assert_eq!(path, vec![CellPos::new(3, 3)]);
    }

    #[test]
    fn routes_around_components() {
        // A wall of component cells with one gap.
        let p = Placement::new(
            GridSpec::square(10),
            vec![
                CellRect::new(CellPos::new(4, 0), 2, 4),
                CellRect::new(CellPos::new(4, 5), 2, 5),
            ],
        );
        let g = RoutingGrid::new(&p, Duration::from_secs(10));
        let path = find_path(
            &g,
            &[CellPos::new(0, 0)],
            &[CellPos::new(9, 0)],
            |_| iv(0, 10),
            OpId::new(0),
            wash2,
            AstarOptions::default(),
        )
        .unwrap();
        // Must pass through the gap row y = 4.
        assert!(path.contains(&CellPos::new(4, 4)) && path.contains(&CellPos::new(5, 4)));
    }

    #[test]
    fn avoids_time_conflicts() {
        let mut g = open_grid();
        // Reserve the entire middle column for an overlapping window.
        for y in 0..10 {
            g.reserve(
                CellPos::new(5, y),
                TaskId::new(0),
                OpId::new(7),
                iv(0, 100),
                wash2,
            );
        }
        let path = find_path(
            &g,
            &[CellPos::new(0, 5)],
            &[CellPos::new(9, 5)],
            |_| iv(0, 10),
            OpId::new(1),
            wash2,
            AstarOptions::default(),
        );
        assert!(path.is_none(), "column blocks every crossing");

        // A later window clears the wash gap (100 + 2 s) and is feasible.
        let later = find_path(
            &g,
            &[CellPos::new(0, 5)],
            &[CellPos::new(9, 5)],
            |_| iv(102, 110),
            OpId::new(1),
            wash2,
            AstarOptions::default(),
        );
        assert!(later.is_some());
    }

    #[test]
    fn weights_attract_reuse() {
        let mut g = open_grid();
        // A previously-routed straight channel with cheap residue (2 s wash
        // vs w_e = 10 s): rerouting the same endpoints later should ride it.
        let fluid = OpId::new(0);
        for x in 0..10 {
            g.reserve(CellPos::new(x, 5), TaskId::new(0), fluid, iv(0, 5), wash2);
        }
        let path = find_path(
            &g,
            &[CellPos::new(0, 5)],
            &[CellPos::new(9, 5)],
            |_| iv(10, 20),
            OpId::new(1),
            wash2,
            AstarOptions::default(),
        )
        .unwrap();
        assert!(
            path.iter().all(|c| c.y == 5),
            "expected the washed channel to be reused: {path:?}"
        );
    }

    #[test]
    fn without_weights_any_shortest_path_wins() {
        let g = open_grid();
        let path = find_path(
            &g,
            &[CellPos::new(0, 0)],
            &[CellPos::new(3, 3)],
            |_| iv(0, 5),
            OpId::new(0),
            wash2,
            AstarOptions { use_weights: false },
        )
        .unwrap();
        assert_eq!(path.len(), 7); // manhattan 6 + start cell
    }

    #[test]
    fn multi_target_prefers_nearest() {
        let g = open_grid();
        let path = find_path(
            &g,
            &[CellPos::new(0, 0)],
            &[CellPos::new(9, 9), CellPos::new(2, 0)],
            |_| iv(0, 5),
            OpId::new(0),
            wash2,
            AstarOptions::default(),
        )
        .unwrap();
        assert_eq!(*path.last().unwrap(), CellPos::new(2, 0));
        assert_eq!(path.len(), 3);
    }

    #[test]
    fn empty_sets_yield_none() {
        let g = open_grid();
        assert!(find_path(
            &g,
            &[],
            &[CellPos::new(1, 1)],
            |_| iv(0, 5),
            OpId::new(0),
            wash2,
            AstarOptions::default()
        )
        .is_none());
        assert!(find_path(
            &g,
            &[CellPos::new(1, 1)],
            &[],
            |_| iv(0, 5),
            OpId::new(0),
            wash2,
            AstarOptions::default()
        )
        .is_none());
    }
}
