//! Wash planning: turning wash *requirements* into executable buffer
//! flushes.
//!
//! The schedulers and routers in this workspace (like the paper) account
//! for wash *time* — a contaminated cell is unusable until `wash(residue)`
//! after its last use. This module goes one level deeper, in the spirit of
//! the paper's washing reference (Hu et al., TCAD'16): each wash is
//! physically a **buffer flush** that enters the chip at a boundary inlet,
//! flows through the contaminated cell, and leaves through a boundary
//! outlet to waste. A flush therefore needs a *path*, and that path must be
//! free of fluid traffic for the whole flush window.
//!
//! [`plan_washes`] finds such a flush for every channel wash of a routed
//! solution and reports the ones that cannot be realized in their time
//! gap — a fidelity check on the "wash happens in the gap" assumption.
//! Flushes clean every cell they traverse, so the planner also reports how
//! many washes come for free as side effects of earlier flushes.

use crate::grid::{ChannelWash, RoutingGrid};
use crate::router::RouterConfig;
use mfb_model::prelude::*;
use mfb_place::prelude::Placement;
use mfb_sched::prelude::Schedule;
use std::collections::{BTreeSet, BinaryHeap};

/// One planned buffer flush.
#[derive(Debug, Clone, PartialEq)]
pub struct Flush {
    /// The wash requirement this flush satisfies.
    pub wash: ChannelWash,
    /// Buffer path: boundary inlet → contaminated cell → boundary outlet.
    pub cells: Vec<CellPos>,
    /// When the buffer flows.
    pub window: Interval,
}

/// The result of wash planning.
#[derive(Debug, Clone, PartialEq)]
pub struct WashPlan {
    /// Realizable flushes, in wash order.
    pub flushes: Vec<Flush>,
    /// Washes already satisfied as a side effect of an earlier flush
    /// passing through their cell in time.
    pub incidental: usize,
    /// Washes with no feasible buffer path in their time gap. The
    /// schedule's wash-time accounting is optimistic for these; a
    /// production flow would lengthen the gap or re-place.
    pub unplanned: Vec<ChannelWash>,
}

impl WashPlan {
    /// Fraction of washes that are physically realizable (planned or
    /// incidental); `1.0` when the gap assumption holds everywhere.
    pub fn coverage(&self) -> f64 {
        let total = self.flushes.len() + self.incidental + self.unplanned.len();
        if total == 0 {
            1.0
        } else {
            (self.flushes.len() + self.incidental) as f64 / total as f64
        }
    }
}

/// Plans a buffer flush for every channel wash of `routing` (see module
/// docs). The fluid traffic the flushes must avoid comes from the routed
/// paths themselves; the schedule parameter is reserved for future use
/// (flush pump scheduling) and keeps the signature stage-complete.
pub fn plan_washes(
    routing: &crate::router::Routing,
    _schedule: &Schedule,
    graph: &SequencingGraph,
    placement: &Placement,
    wash: &dyn WashModel,
    config: &RouterConfig,
) -> WashPlan {
    let wash_of = |op: OpId| wash.wash_time(graph.op(op).output_diffusion());
    // Rebuild the traffic picture.
    let mut grid = RoutingGrid::new(placement, config.w_e);
    for p in &routing.paths {
        for (cell, window) in p.occupancies() {
            grid.reserve(cell, p.task, p.fluid, window, wash_of);
        }
    }
    let spec = grid.spec();

    // Boundary inlets/outlets: routable cells on the chip edge.
    let boundary: Vec<CellPos> = (0..spec.width)
        .flat_map(|x| [CellPos::new(x, 0), CellPos::new(x, spec.height - 1)])
        .chain((0..spec.height).flat_map(|y| [CellPos::new(0, y), CellPos::new(spec.width - 1, y)]))
        .filter(|&c| grid.is_routable(c))
        .collect();

    // Washes with their gap (residue departure .. consuming task's entry),
    // in chronological order of the gap start.
    let mut washes: Vec<(Instant, Instant, ChannelWash)> = routing
        .channel_washes
        .iter()
        .filter_map(|w| gap_of(&grid, w).map(|(s, d)| (s, d, *w)))
        .collect();
    washes.sort_by_key(|&(t, _, w)| (t, w.cell, w.task));

    // Cells already cleaned up to some instant by earlier flushes.
    let mut cleaned: BTreeSet<(CellPos, u64)> = BTreeSet::new();

    // BFS state reused across every leg of every flush.
    let mut scratch = FlushScratch::default();

    let mut plan = WashPlan {
        flushes: Vec::new(),
        incidental: 0,
        unplanned: Vec::new(),
    };

    for (start, deadline, w) in washes {
        let window = Interval::new(start, start + w.duration);
        // The flush must complete before the consuming task enters the
        // cell; a gap shorter than the wash time is physically unplannable.
        if window.end > deadline {
            plan.unplanned.push(w);
            continue;
        }
        // Satisfied incidentally by an earlier flush through this cell
        // within the gap?
        if cleaned
            .iter()
            .any(|&(c, t)| c == w.cell && t >= start.as_ticks() && t <= deadline.as_ticks())
        {
            plan.incidental += 1;
            continue;
        }
        match flush_path(&mut scratch, &grid, &boundary, w.cell, window) {
            Some(cells) => {
                for &c in &cells {
                    cleaned.insert((c, window.end.as_ticks()));
                }
                plan.flushes.push(Flush {
                    wash: w,
                    cells,
                    window,
                });
            }
            None => plan.unplanned.push(w),
        }
    }
    plan
}

/// The wash gap of `w` on its cell: from the end of the residue occupancy
/// that precedes the consuming task, to that task's entry. `None` when the
/// reservations no longer carry the pattern (stale wash record).
fn gap_of(grid: &RoutingGrid, w: &ChannelWash) -> Option<(Instant, Instant)> {
    let rs = grid.reservations(w.cell);
    // The consuming task's (earliest) entry into the cell.
    let deadline = rs
        .iter()
        .filter(|r| r.task == w.task)
        .map(|r| r.window.start)
        .min()?;
    // The residue occupancy it must be cleaned after: the latest one of
    // the residue fluid ending at or before that entry.
    let start = rs
        .iter()
        .filter(|r| r.fluid == w.residue && r.window.end <= deadline)
        .map(|r| r.window.end)
        .max()?;
    Some((start, deadline))
}

/// BFS state for [`flush_path`], reused across every leg of every flush:
/// `begin` bumps an epoch stamp instead of refilling `dist`/`prev`, the
/// same trick as [`crate::astar::SearchScratch`], so one wash plan performs
/// no per-leg allocation once the arrays have grown to the grid size.
#[derive(Debug, Default)]
struct FlushScratch {
    epoch: u32,
    stamp: Vec<u32>,
    dist: Vec<u32>,
    prev: Vec<Option<CellPos>>,
    heap: BinaryHeap<std::cmp::Reverse<(u32, u32, u32)>>,
}

impl FlushScratch {
    /// Starts a leg over `n` cells; every stamped entry is invalidated.
    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.dist.resize(n, u32::MAX);
            self.prev.resize(n, None);
        }
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
        self.heap.clear();
    }
}

/// A buffer path boundary → `target` → boundary whose every cell is free
/// of fluid traffic during `window`. Uses two BFS legs; the legs may share
/// cells (a U-shaped flush), which is physically a back-and-forth flush
/// and acceptable for planning purposes.
fn flush_path(
    scratch: &mut FlushScratch,
    grid: &RoutingGrid,
    boundary: &[CellPos],
    target: CellPos,
    window: Interval,
) -> Option<Vec<CellPos>> {
    let free = |cell: CellPos| -> bool {
        grid.is_routable(cell)
            && grid
                .reservations(cell)
                .iter()
                .all(|r| !r.window.overlaps(window))
    };
    if !free(target) {
        return None;
    }
    let mut leg = |from_boundary: bool| -> Option<Vec<CellPos>> {
        // Dijkstra with unit costs (plain BFS) from the boundary set to the
        // target; deterministic tie-breaking through the ordered heap.
        let spec = grid.spec();
        let n = spec.cell_count() as usize;
        scratch.begin(n);
        let FlushScratch {
            epoch,
            stamp,
            dist,
            prev,
            heap,
        } = scratch;
        let epoch = *epoch;
        for &b in boundary {
            if free(b) {
                stamp[spec.index(b)] = epoch;
                dist[spec.index(b)] = 0;
                prev[spec.index(b)] = None;
                heap.push(std::cmp::Reverse((0, b.y, b.x)));
            }
        }
        while let Some(std::cmp::Reverse((d, y, x))) = heap.pop() {
            let cell = CellPos::new(x, y);
            let idx = spec.index(cell);
            if stamp[idx] == epoch && d > dist[idx] {
                continue;
            }
            if cell == target {
                let mut path = vec![cell];
                let mut cur = cell;
                while let Some(p) = prev[spec.index(cur)] {
                    path.push(p);
                    cur = p;
                }
                if from_boundary {
                    path.reverse();
                }
                return Some(path);
            }
            for nb in cell.neighbours(spec.width, spec.height) {
                if !free(nb) {
                    continue;
                }
                let nidx = spec.index(nb);
                let known = if stamp[nidx] == epoch {
                    dist[nidx]
                } else {
                    u32::MAX
                };
                let nd = d + 1;
                if nd < known {
                    stamp[nidx] = epoch;
                    dist[nidx] = nd;
                    prev[nidx] = Some(cell);
                    heap.push(std::cmp::Reverse((nd, nb.y, nb.x)));
                }
            }
        }
        None
    };

    let inflow = leg(true)?;
    let outflow = leg(false)?;
    let mut cells = inflow;
    cells.extend(outflow.into_iter().skip(1));
    Some(cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::route_dcsa;
    use mfb_place::prelude::*;
    use mfb_sched::list::{schedule as run_sched, SchedulerConfig};

    fn solved(
        name: &str,
    ) -> (
        SequencingGraph,
        Schedule,
        Placement,
        crate::router::Routing,
        LogLinearWash,
    ) {
        let wash = LogLinearWash::paper_calibrated();
        let b = mfb_bench_suite::table1_benchmarks()
            .into_iter()
            .find(|b| b.name == name)
            .unwrap();
        let comps = b.components(&ComponentLibrary::default());
        let s = run_sched(&b.graph, &comps, &wash, &SchedulerConfig::paper_dcsa()).unwrap();
        let nets = NetList::build(&s, &b.graph, &wash, 0.6, 0.4);
        let p = place_sa_auto(&comps, &nets, &SaConfig::paper()).unwrap();
        let r = route_dcsa(&s, &b.graph, &p, &wash, &RouterConfig::paper()).unwrap();
        (b.graph, s, p, r, wash)
    }

    #[test]
    fn plans_cover_most_washes_on_real_benchmarks() {
        for name in ["IVD", "CPA"] {
            let (g, s, p, r, wash) = solved(name);
            let plan = plan_washes(&r, &s, &g, &p, &wash, &RouterConfig::paper());
            let total = plan.flushes.len() + plan.incidental + plan.unplanned.len();
            assert_eq!(total, r.channel_washes.len(), "{name}: washes accounted");
            assert!(
                plan.coverage() >= 0.8,
                "{name}: only {:.0}% of washes plannable",
                plan.coverage() * 100.0
            );
        }
    }

    #[test]
    fn flush_paths_touch_their_target_and_boundary() {
        let (g, s, p, r, wash) = solved("CPA");
        let plan = plan_washes(&r, &s, &g, &p, &wash, &RouterConfig::paper());
        let spec = p.grid();
        for f in &plan.flushes {
            assert!(f.cells.contains(&f.wash.cell), "flush misses its target");
            let on_boundary = |c: CellPos| {
                c.x == 0 || c.y == 0 || c.x == spec.width - 1 || c.y == spec.height - 1
            };
            assert!(on_boundary(f.cells[0]), "flush must start at the boundary");
            assert!(
                on_boundary(*f.cells.last().unwrap()),
                "flush must end at the boundary"
            );
            for w in f.cells.windows(2) {
                assert!(w[0].manhattan(w[1]) <= 1, "flush path discontiguous");
            }
        }
    }

    #[test]
    fn flushes_avoid_fluid_traffic() {
        let (g, s, p, r, wash) = solved("CPA");
        let plan = plan_washes(&r, &s, &g, &p, &wash, &RouterConfig::paper());
        for f in &plan.flushes {
            for path in &r.paths {
                for (cell, window) in path.occupancies() {
                    if f.cells.contains(&cell) {
                        assert!(
                            !window.overlaps(f.window),
                            "flush window {} collides with {} on {cell}",
                            f.window,
                            path.task
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn empty_routing_trivially_covered() {
        let (g, s, p, _r, wash) = solved("IVD");
        let empty = crate::router::Routing {
            paths: vec![],
            channel_washes: vec![],
            realized: crate::router::RealizedTimes {
                start: vec![],
                end: vec![],
            },
            grid: p.grid(),
            used_cells: 0,
        };
        let plan = plan_washes(&empty, &s, &g, &p, &wash, &RouterConfig::paper());
        assert!(plan.flushes.is_empty());
        assert_eq!(plan.coverage(), 1.0);
    }
}
