//! PathFinder-style negotiated-congestion router.
//!
//! The conflict-aware router ([`crate::router::route_dcsa`]) treats every
//! time-window conflict as a hard wall: the A* may not enter an occupied
//! `(cell, window)` at all, so tasks must be routed **serially** — each
//! search needs the reservations of every earlier task. This module trades
//! that wall for a *price*. Each negotiation sweep routes every unresolved
//! task with [`find_path_soft`], where sharing a contested cell merely
//! costs extra:
//!
//! ```text
//! cost(cell) = base(cell)                       // length + ring tax + w(i)
//!            + present(cell) · p · (sweep + 1)  // present-sharing penalty
//!            + history(cell)                    // accumulated contention
//! ```
//!
//! `present(cell)` counts foreign-fluid occupancies of the cell (from the
//! *previous* sweep's path set) that clash with the task's own window —
//! overlap or an unwashable residue gap, the same predicate the serial
//! router uses to identify blockers. The multiplier rises every sweep, so
//! early sweeps explore cheap shortcuts and later sweeps force divergence;
//! `history` remembers cells that keep failing commit, pushing *both*
//! parties of a persistent conflict elsewhere — the classic PathFinder
//! negotiation (cf. McMurchie & Ebeling).
//!
//! Congestion on flow-based chips is as much *temporal* as spatial: the
//! worst-contended cells are component access rings, which every consumer
//! of that component must cross no matter how large the grid grows. A
//! purely spatial detour cannot price such a conflict away, so each search
//! also scans a bounded set of **candidate departures** (scheduled first,
//! then earlier in 1-second steps towards the producer's end — the same
//! flexibility the serial router exploits), pricing body cells on the
//! candidate's transport leg so that shifting in time genuinely sheds
//! present-sharing cost. Parked tail cells, which hold the channel-cached
//! plug for the whole dwell, are hard-banned when clashing instead of
//! priced (see [`search_task`]).
//!
//! # Determinism
//!
//! Each sweep is a **Jacobi** iteration: all tasks route against the path
//! set of the previous sweep, never against a path produced in their own
//! sweep. The searches of one sweep are therefore independent and are
//! dispatched through [`par_map_ordered`], which returns results in input
//! order no matter how many worker threads ran them; every mutation
//! (path updates, history bumps, the commit walk) happens serially between
//! sweeps in fixed `TaskId` order. The result is bit-identical for any
//! `MFB_THREADS` — pinned by the golden suite in
//! `tests/negotiate_equiv.rs`.
//!
//! # Convergence and fallback
//!
//! After each sweep the path set is *committed*: tasks are replayed in
//! `TaskId` order onto a fresh [`RoutingGrid`] with the full hard
//! feasibility check of [`RoutingGrid::feasible`]. A clean replay is a
//! certified conflict-free routing and the sweep loop ends. Otherwise the
//! conflicted tasks (both the task that failed to commit and the holders of
//! the reservations it tripped over) re-route in the next sweep against
//! risen prices. If [`NegotiationParams::max_iters`] sweeps do not
//! converge, the router falls back to the serial conflict-aware router —
//! so routability is **never worse** than [`crate::router::route_dcsa`].

use crate::astar::{find_path_soft, AstarOptions, SearchScratch, SearchStats};
use crate::error::RouteError;
use crate::grid::RoutingGrid;
use crate::router::{collect_washes, ports, RealizedTimes, RoutedPath, RouterConfig, Routing};
use mfb_model::par::par_map_ordered;
use mfb_model::prelude::*;
use mfb_place::prelude::Placement;
use mfb_sched::prelude::*;
use std::collections::BTreeSet;

/// Congestion-negotiation schedule (see the [module docs](self)).
///
/// Penalties are expressed in the router's cost ticks (0.1 s of wash
/// weight; one grid cell of path length costs 10 ticks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NegotiationParams {
    /// Maximum negotiation sweeps before falling back to the serial
    /// conflict-aware router.
    pub max_iters: u32,
    /// Present-sharing penalty per clashing foreign occupancy, in ticks;
    /// multiplied by the 1-based sweep number, so contested cells get
    /// progressively more expensive.
    pub present_step_ticks: u64,
    /// History penalty, in ticks, added permanently to a cell each time a
    /// committed conflict is discovered on it.
    pub history_step_ticks: u64,
}

impl NegotiationParams {
    /// Defaults tuned on the Table-1 suite: two path cells of initial
    /// present penalty, one cell of history per failed commit, and enough
    /// sweeps that dense instances converge well before the fallback.
    pub fn paper_tuned() -> Self {
        NegotiationParams {
            max_iters: 24,
            present_step_ticks: 20,
            history_step_ticks: 10,
        }
    }
}

impl Default for NegotiationParams {
    fn default() -> Self {
        NegotiationParams::paper_tuned()
    }
}

/// Routes every transport task of `schedule` by negotiated congestion on a
/// pristine chip. See the [module docs](self).
///
/// # Errors
///
/// Same as [`crate::router::route_dcsa`] — the fallback path surfaces its
/// errors verbatim, so a layout this router cannot converge on still routes
/// whenever the serial router can.
pub fn route_negotiated(
    schedule: &Schedule,
    graph: &SequencingGraph,
    placement: &Placement,
    wash: &dyn WashModel,
    config: &RouterConfig,
) -> Result<Routing, RouteError> {
    let mut scratch = SearchScratch::new();
    route_negotiated_with_scratch(
        schedule,
        graph,
        placement,
        wash,
        config,
        &DefectMap::pristine(),
        &mut scratch,
    )
}

/// [`route_negotiated`] under an execution [`Budget`]: the budget is
/// installed on `scratch`, polled between negotiation sweeps, and handed
/// through to the serial fallback (which also polls per task and every few
/// thousand A* expansions).
///
/// # Errors
///
/// Same as [`route_negotiated`], plus [`RouteError::Interrupted`].
#[allow(clippy::too_many_arguments)]
pub fn route_negotiated_budgeted(
    schedule: &Schedule,
    graph: &SequencingGraph,
    placement: &Placement,
    wash: &dyn WashModel,
    config: &RouterConfig,
    defects: &DefectMap,
    scratch: &mut SearchScratch,
    budget: &Budget,
) -> Result<Routing, RouteError> {
    scratch.set_budget(budget);
    let result =
        route_negotiated_with_scratch(schedule, graph, placement, wash, config, defects, scratch);
    scratch.set_budget(&Budget::unlimited());
    result
}

/// [`route_negotiated`] on a damaged chip and a caller-owned
/// [`SearchScratch`] (stats accumulate across calls; `mfb bench` reads
/// negotiation counters from them).
///
/// # Errors
///
/// Same as [`route_negotiated`].
pub fn route_negotiated_with_scratch(
    schedule: &Schedule,
    graph: &SequencingGraph,
    placement: &Placement,
    wash: &dyn WashModel,
    config: &RouterConfig,
    defects: &DefectMap,
    scratch: &mut SearchScratch,
) -> Result<Routing, RouteError> {
    let _span = mfb_obs::obs_span!(
        "route.negotiate",
        tasks = schedule.transports().len() as u64
    );
    let params = config.negotiation;
    let spec = placement.grid();
    let n_cells = spec.cell_count() as usize;

    // Wash times are pure per fluid; precomputing them keeps the per-sweep
    // worker closures free of the `&dyn WashModel` borrow.
    let wash_times: Vec<Duration> = schedule
        .ops()
        .map(|s| wash.wash_time(graph.op(s.op).output_diffusion()))
        .collect();
    let wash_of = |op: OpId| wash_times[op.index()];
    let options = AstarOptions {
        use_weights: config.wash_aware_weights,
    };

    // The structural grid: component interiors and defect cells, no
    // reservations. Soft searches run here; occupancy lives in the path set.
    let bare = RoutingGrid::new_with_defects(placement, config.w_e, defects);

    let mut tasks: Vec<&TransportTask> = schedule.transports().collect();
    tasks.sort_by_key(|t| t.id);
    let n_tasks = tasks.len();

    let mut task_ports: Vec<(Vec<CellPos>, Vec<CellPos>)> = Vec::with_capacity(n_tasks);
    for t in &tasks {
        let src = ports(placement, &bare, t.src);
        if src.is_empty() {
            return Err(RouteError::NoPorts { component: t.src });
        }
        let dst = ports(placement, &bare, t.dst);
        if dst.is_empty() {
            return Err(RouteError::NoPorts { component: t.dst });
        }
        task_ports.push((src, dst));
    }

    let mut paths: Vec<Option<(Vec<CellPos>, Vec<Interval>)>> = vec![None; n_tasks];
    let mut history: Vec<u64> = vec![0; n_cells];
    let mut reroute: BTreeSet<TaskId> = tasks.iter().map(|t| t.id).collect();
    let mut sweeps = 0u64;
    let mut stuck = false;
    let mut committed: Option<RoutingGrid> = None;

    for sweep in 0..params.max_iters {
        if let Some(why) = scratch.poll_budget() {
            return Err(RouteError::Interrupted(why));
        }
        sweeps += 1;

        // --- Jacobi sweep: re-route the unresolved tasks against the
        // previous sweep's path set, in parallel, results in input order.
        let occupancy = build_occupancy(spec, &tasks, &paths);
        let list: Vec<usize> = reroute.iter().map(|id| id.index()).collect();
        let present_weight = params.present_step_ticks * (u64::from(sweep) + 1);
        let results = par_map_ordered(list.len(), |k| {
            let ti = list[k];
            let t = tasks[ti];
            let (src, dst) = &task_ports[ti];
            let congestion = |c: CellPos, win: Interval| -> u64 {
                let idx = spec.index(c);
                let mut present = 0u64;
                for &(holder, fl, w) in &occupancy[idx] {
                    if holder == t.id || fl == t.fluid {
                        continue;
                    }
                    if clashes(win, t.fluid, w, fl, wash_of) {
                        present += 1;
                    }
                }
                present * present_weight + history[idx]
            };
            with_worker_scratch(|ws| {
                let before = ws.stats;
                let found = search_task(
                    ws,
                    &bare,
                    schedule,
                    t,
                    src,
                    dst,
                    config.plug_cells,
                    congestion,
                    options,
                );
                (found, stats_delta(before, ws.stats))
            })
        });
        for (k, (found, delta)) in results.into_iter().enumerate() {
            add_stats(&mut scratch.stats, delta);
            match found {
                Some(pw) => paths[list[k]] = Some(pw),
                // Structurally disconnected: negotiation cannot help, let
                // the serial router (with its departure scan and remote
                // parking) have the final word.
                None => stuck = true,
            }
        }
        if stuck {
            break;
        }

        // --- Commit: replay the whole path set in TaskId order onto a
        // fresh grid under the full hard feasibility check.
        let mut grid = RoutingGrid::new_with_defects(placement, config.w_e, defects);
        let mut conflicted: BTreeSet<TaskId> = BTreeSet::new();
        for (ti, t) in tasks.iter().enumerate() {
            let Some((cells, windows)) = &paths[ti] else {
                return Err(RouteError::InconsistentSchedule { task: t.id });
            };
            let mut ok = true;
            for (&cell, &window) in cells.iter().zip(windows) {
                if grid.feasible(cell, window, t.fluid, wash_of) {
                    continue;
                }
                ok = false;
                history[spec.index(cell)] += params.history_step_ticks;
                // Blame the holders too: both parties of a persistent
                // conflict must feel the price and consider moving.
                for r in grid.reservations(cell) {
                    if r.fluid != t.fluid && clashes(window, t.fluid, r.window, r.fluid, wash_of) {
                        conflicted.insert(r.task);
                    }
                }
            }
            if ok {
                for (&cell, &window) in cells.iter().zip(windows) {
                    grid.reserve(cell, t.id, t.fluid, window, wash_of);
                }
            } else {
                conflicted.insert(t.id);
            }
        }
        if conflicted.is_empty() {
            committed = Some(grid);
            break;
        }
        reroute = conflicted;
    }

    scratch.stats.negotiation_iters += sweeps;
    if mfb_obs::enabled() {
        mfb_obs::obs_counter!("route.negotiation_iter", sweeps);
    }

    match committed {
        Some(grid) => {
            let washes = collect_washes(&grid, wash_of);
            let mut routed = Vec::with_capacity(n_tasks);
            for (ti, t) in tasks.iter().enumerate() {
                let (cells, windows) = paths[ti]
                    .take()
                    .unwrap_or_else(|| unreachable!("committed grid implies a path per task"));
                routed.push(RoutedPath {
                    task: t.id,
                    fluid: t.fluid,
                    cells,
                    windows,
                });
            }
            Ok(Routing {
                paths: routed,
                channel_washes: washes,
                realized: RealizedTimes::from_schedule(schedule),
                grid: spec,
                used_cells: grid.used_cell_count(),
            })
        }
        None => {
            // Negotiation did not converge (or hit a structural dead end):
            // the serial conflict-aware router guarantees strictly-no-worse
            // routability.
            mfb_obs::obs_counter!("route.negotiation_fallback", 1);
            crate::router::route_dcsa_with_scratch(
                schedule, graph, placement, wash, config, defects, scratch,
            )
        }
    }
}

/// Candidate departures scanned per task per sweep. The serial router's
/// scan runs 1-second steps all the way back to the producer's end; a
/// negotiation sweep bounds the same scan so one sweep's cost stays
/// proportional to the task count (a conflict surviving all candidates
/// re-scans next sweep against higher prices, and the serial fallback
/// retains the unbounded scan).
const MAX_DEPARTS: u32 = 16;

/// One task's soft search with the serial router's departure flexibility:
/// the scheduler's departure is as late as possible, and departing earlier
/// only lengthens the channel-cache dwell, so candidate departures scan
/// from the scheduled one backwards towards the producer's end. The first
/// candidate whose path prices to zero congestion wins; otherwise the
/// cheapest candidate carries into commit.
///
/// Body cells are priced on their transport leg `[depart, depart + t_c)`
/// — that is what makes an earlier departure actually shed congestion —
/// while the last `plug_cells` tail cells hold the plug for the whole
/// `[depart, consumed_at)` dwell and are therefore *hard-banned* when
/// their dwell clashes with the previous sweep's occupancy (like
/// foreign-ring cells, mirroring [`crate::router::find_parked_path`]'s
/// parking rule): a parked conflict cannot be priced away by a cell the
/// A* only values during transport.
#[allow(clippy::too_many_arguments)]
fn search_task(
    scratch: &mut SearchScratch,
    bare: &RoutingGrid,
    schedule: &Schedule,
    t: &TransportTask,
    src: &[CellPos],
    dst: &[CellPos],
    plug_cells: u32,
    congestion: impl Fn(CellPos, Interval) -> u64 + Copy,
    options: AstarOptions,
) -> Option<(Vec<CellPos>, Vec<Interval>)> {
    let producer_end = schedule.op(t.fluid).end;
    let step = Duration::from_secs(1);
    let mut depart = t.depart;
    let mut best: Option<(u64, Vec<CellPos>, Vec<Interval>)> = None;
    for _candidate in 0..MAX_DEPARTS {
        let transport = Interval::new(depart, depart + schedule.t_c);
        let full = Interval::new(depart, t.consumed_at);
        if let Some((cost, path, windows)) = search_at(
            scratch, bare, src, dst, plug_cells, transport, full, congestion, options,
        ) {
            if cost == 0 {
                return Some((path, windows));
            }
            if best.as_ref().map_or(true, |(b, _, _)| cost < *b) {
                best = Some((cost, path, windows));
            }
        }
        if depart <= producer_end {
            break;
        }
        depart = if depart.saturating_duration_since(producer_end) <= step {
            producer_end
        } else {
            depart - step
        };
    }
    best.map(|(_, path, windows)| (path, windows))
}

/// The banned-retry search for one candidate departure. Returns the path,
/// its per-cell windows, and its total congestion price (body cells on the
/// transport leg; tail cells are clash-free by construction).
#[allow(clippy::too_many_arguments)]
fn search_at(
    scratch: &mut SearchScratch,
    bare: &RoutingGrid,
    src: &[CellPos],
    dst: &[CellPos],
    plug_cells: u32,
    transport: Interval,
    full: Interval,
    congestion: impl Fn(CellPos, Interval) -> u64 + Copy,
    options: AstarOptions,
) -> Option<(u64, Vec<CellPos>, Vec<Interval>)> {
    let mut banned: BTreeSet<CellPos> = BTreeSet::new();
    let mut previous: Option<Vec<CellPos>> = None;
    for _attempt in 0..64 {
        let hard_ok = |c: CellPos| !banned.contains(&c);
        let priced = |c: CellPos| congestion(c, transport);
        let path = find_path_soft(scratch, bare, src, dst, hard_ok, priced, options)?;
        if previous.as_deref() == Some(path.as_slice()) {
            return None; // banning made no progress
        }
        let k = (plug_cells.max(1) as usize).min(path.len());
        let tail_start = path.len() - k;
        let mut ok = true;
        for &c in &path[tail_start..] {
            // Cached plugs may not park on a foreign component's access
            // ring — a long-lived plug there would wall the component in —
            // nor on a cell whose full-dwell window clashes with the
            // previous sweep's occupancy (see [`search_task`]).
            let foreign_ring = bare.is_ring(c) && !dst.contains(&c) && !src.contains(&c);
            if foreign_ring || congestion(c, full) > 0 {
                banned.insert(c);
                ok = false;
            }
        }
        if ok {
            let cost = path[..tail_start].iter().map(|&c| priced(c)).sum();
            let windows = (0..path.len())
                .map(|i| if i >= tail_start { full } else { transport })
                .collect();
            return Some((cost, path, windows));
        }
        previous = Some(path);
    }
    None
}

/// The clash predicate shared with the serial router's blocker detection:
/// two occupancies of one cell conflict when their windows overlap, or when
/// the earlier residue cannot be washed before the later use begins.
fn clashes(
    ours: Interval,
    our_fluid: OpId,
    theirs: Interval,
    their_fluid: OpId,
    wash_of: impl Fn(OpId) -> Duration,
) -> bool {
    theirs.overlaps(ours)
        || (theirs.end <= ours.start && theirs.end + wash_of(their_fluid) > ours.start)
        || (ours.end <= theirs.start && ours.end + wash_of(our_fluid) > theirs.start)
}

/// Per-cell occupancy snapshot of the previous sweep's path set:
/// `(holder, fluid, window)` triples, in `TaskId` order per cell.
fn build_occupancy(
    spec: GridSpec,
    tasks: &[&TransportTask],
    paths: &[Option<(Vec<CellPos>, Vec<Interval>)>],
) -> Vec<Vec<(TaskId, OpId, Interval)>> {
    let mut occ: Vec<Vec<(TaskId, OpId, Interval)>> = vec![Vec::new(); spec.cell_count() as usize];
    for (ti, t) in tasks.iter().enumerate() {
        if let Some((cells, windows)) = &paths[ti] {
            for (&cell, &window) in cells.iter().zip(windows) {
                occ[spec.index(cell)].push((t.id, t.fluid, window));
            }
        }
    }
    occ
}

/// Runs `f` on this worker thread's reusable [`SearchScratch`]. Workers are
/// scoped per sweep, so the arena amortizes across the tasks one worker
/// picks up within a sweep (and across sweeps in the serial case); the
/// memoization is per-query, so reuse never changes results.
fn with_worker_scratch<R>(f: impl FnOnce(&mut SearchScratch) -> R) -> R {
    use std::cell::RefCell;
    thread_local! {
        static SCRATCH: RefCell<SearchScratch> = RefCell::new(SearchScratch::new());
    }
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// Field-wise `after - before` of two cumulative counter snapshots.
fn stats_delta(before: SearchStats, after: SearchStats) -> SearchStats {
    SearchStats {
        queries: after.queries - before.queries,
        expansions: after.expansions - before.expansions,
        heap_pushes: after.heap_pushes - before.heap_pushes,
        window_retries: after.window_retries - before.window_retries,
        rips: after.rips - before.rips,
        negotiation_iters: after.negotiation_iters - before.negotiation_iters,
    }
}

/// Accumulates a worker's counter delta into the caller's stats. Deltas are
/// summed in input order, so the totals are identical for any thread count.
fn add_stats(into: &mut SearchStats, d: SearchStats) {
    into.queries += d.queries;
    into.expansions += d.expansions;
    into.heap_pushes += d.heap_pushes;
    into.window_retries += d.window_retries;
    into.rips += d.rips;
    into.negotiation_iters += d.negotiation_iters;
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfb_sched::list::{schedule as run_sched, SchedulerConfig};

    fn d_wash(secs: f64) -> DiffusionCoefficient {
        LogLinearWash::paper_calibrated().coefficient_for(Duration::from_secs_f64(secs))
    }

    fn wash() -> LogLinearWash {
        LogLinearWash::paper_calibrated()
    }

    fn chain_setup() -> (SequencingGraph, Schedule, Placement) {
        let mut b = SequencingGraph::builder();
        let m = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(4.0));
        let h = b.operation(OperationKind::Heat, Duration::from_secs(3), d_wash(2.0));
        let dt = b.operation(OperationKind::Detect, Duration::from_secs(4), d_wash(0.2));
        b.chain(&[m, h, dt]).unwrap();
        let g = b.build().unwrap();
        let comps = Allocation::new(1, 1, 0, 1).instantiate(&ComponentLibrary::default());
        let s = run_sched(&g, &comps, &wash(), &SchedulerConfig::paper_dcsa()).unwrap();
        let placement = Placement::new(
            GridSpec::square(16),
            vec![
                CellRect::new(CellPos::new(1, 1), 4, 3),
                CellRect::new(CellPos::new(8, 1), 3, 2),
                CellRect::new(CellPos::new(8, 8), 2, 2),
            ],
        );
        assert!(placement.is_legal());
        (g, s, placement)
    }

    #[test]
    fn negotiated_routes_conflict_free_and_on_time() {
        let (g, s, placement) = chain_setup();
        let r = route_negotiated(&s, &g, &placement, &wash(), &RouterConfig::paper()).unwrap();
        assert_eq!(r.completion(), s.completion_time());
        assert_eq!(r.paths.len(), s.transports().count());
        for i in 0..r.paths.len() {
            for j in (i + 1)..r.paths.len() {
                assert!(
                    !r.paths[i].conflicts_with(&r.paths[j]),
                    "tasks {i} and {j} conflict"
                );
            }
        }
    }

    #[test]
    fn negotiated_is_deterministic_under_rerun() {
        let (g, s, placement) = chain_setup();
        let cfg = RouterConfig::paper();
        let a = route_negotiated(&s, &g, &placement, &wash(), &cfg).unwrap();
        let b = route_negotiated(&s, &g, &placement, &wash(), &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_sweep_budget_falls_back_to_serial_router() {
        let (g, s, placement) = chain_setup();
        let cfg = RouterConfig {
            negotiation: NegotiationParams {
                max_iters: 0,
                ..NegotiationParams::paper_tuned()
            },
            ..RouterConfig::paper()
        };
        let negotiated = route_negotiated(&s, &g, &placement, &wash(), &cfg).unwrap();
        let serial =
            crate::router::route_dcsa(&s, &g, &placement, &wash(), &RouterConfig::paper()).unwrap();
        assert_eq!(negotiated, serial);
    }

    #[test]
    fn cancelled_budget_interrupts() {
        let (g, s, placement) = chain_setup();
        let token = CancelToken::new();
        token.cancel();
        let budget = Budget::unlimited().with_cancel(token);
        let mut scratch = SearchScratch::new();
        let err = route_negotiated_budgeted(
            &s,
            &g,
            &placement,
            &wash(),
            &RouterConfig::paper(),
            &DefectMap::pristine(),
            &mut scratch,
            &budget,
        )
        .unwrap_err();
        assert!(matches!(err, RouteError::Interrupted(_)));
    }

    #[test]
    fn respects_defect_mask() {
        let (g, s, placement) = chain_setup();
        let mut defects = DefectMap::pristine();
        let dead = CellPos::new(6, 5);
        defects.block_cell(dead);
        let mut scratch = SearchScratch::new();
        let r = route_negotiated_with_scratch(
            &s,
            &g,
            &placement,
            &wash(),
            &RouterConfig::paper(),
            &defects,
            &mut scratch,
        )
        .unwrap();
        for p in &r.paths {
            assert!(!p.cells.contains(&dead), "path crosses a blocked cell");
        }
    }
}
