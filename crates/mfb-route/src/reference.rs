//! Pre-optimization reference router, kept verbatim for golden-equivalence
//! tests and live speedup measurement.
//!
//! [`find_path_reference`] and [`dijkstra_map_reference`] are the
//! allocate-per-query searches this crate shipped before the reusable
//! [`crate::astar::SearchScratch`] arena landed: fresh dist/prev/heap
//! vectors per call, the heuristic re-scanning every target per expansion,
//! and feasibility probed before the cost test in the neighbour loop.
//! [`route_dcsa_reference`] is the conflict-aware router driven by those
//! searches. The optimized [`crate::router::route_dcsa`] must produce a
//! bitwise identical [`Routing`] for every input — `tests/perf_equiv.rs`
//! asserts exactly that across the Table-I benchmarks, and `mfb bench
//! --json` times the two side by side to record the routing speedup in
//! `BENCH_synthesis.json`. Do not "improve" this module: its value is being
//! the frozen baseline.

use crate::astar::AstarOptions;
use crate::error::RouteError;
use crate::grid::{ChannelWash, RoutingGrid};
use crate::router::{ports, RealizedTimes, RoutedPath, RouterConfig, Routing};
use mfb_model::prelude::*;
use mfb_place::prelude::Placement;
use mfb_sched::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Cost units per cell of path length (mirror of `astar::LENGTH_COST`).
const LENGTH_COST: u64 = 10;

/// Access-ring traversal tax (mirror of `astar::RING_TAX`).
const RING_TAX: u64 = 3 * LENGTH_COST;

/// The historical `find_path`: allocates full-grid dist/prev/visited
/// vectors and a fresh heap on every call, and its heuristic scans the
/// whole target list at every expansion.
#[allow(clippy::too_many_arguments)]
pub fn find_path_reference(
    grid: &RoutingGrid,
    sources: &[CellPos],
    targets: &[CellPos],
    window_of: impl Fn(CellPos) -> Interval + Copy,
    fluid: OpId,
    wash_of: impl Fn(OpId) -> Duration + Copy,
    options: AstarOptions,
) -> Option<Vec<CellPos>> {
    if sources.is_empty() || targets.is_empty() {
        return None;
    }
    let spec = grid.spec();
    let n = spec.cell_count() as usize;
    let mut is_target = vec![false; n];
    for &t in targets {
        if spec.contains(t) {
            is_target[spec.index(t)] = true;
        }
    }

    let h = |cell: CellPos| -> u64 {
        targets
            .iter()
            .map(|&t| u64::from(cell.manhattan(t)))
            .min()
            .unwrap_or(0)
            * LENGTH_COST
    };
    let cell_cost = |cell: CellPos| -> u64 {
        LENGTH_COST
            + if grid.is_ring(cell) { RING_TAX } else { 0 }
            + if options.use_weights {
                grid.weight(cell).as_ticks()
            } else {
                0
            }
    };

    let mut dist = vec![u64::MAX; n];
    let mut prev: Vec<Option<CellPos>> = vec![None; n];
    // Heap entries: Reverse((f, g, y, x)) — deterministic tie-breaking.
    let mut heap: BinaryHeap<Reverse<(u64, u64, u32, u32)>> = BinaryHeap::new();

    for &s in sources {
        if !grid.feasible(s, window_of(s), fluid, wash_of) {
            continue;
        }
        let g = cell_cost(s);
        let idx = spec.index(s);
        if g < dist[idx] {
            dist[idx] = g;
            heap.push(Reverse((g + h(s), g, s.y, s.x)));
        }
    }

    while let Some(Reverse((_, g, y, x))) = heap.pop() {
        let cell = CellPos::new(x, y);
        let idx = spec.index(cell);
        if g > dist[idx] {
            continue; // stale entry
        }
        if is_target[idx] {
            // Reconstruct.
            let mut path = vec![cell];
            let mut cur = cell;
            while let Some(p) = prev[spec.index(cur)] {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for nb in cell.neighbours(spec.width, spec.height) {
            if !grid.feasible(nb, window_of(nb), fluid, wash_of) {
                continue;
            }
            let ng = g + cell_cost(nb);
            let nidx = spec.index(nb);
            if ng < dist[nidx] {
                dist[nidx] = ng;
                prev[nidx] = Some(cell);
                heap.push(Reverse((ng + h(nb), ng, nb.y, nb.x)));
            }
        }
    }
    None
}

/// The historical `dijkstra_map`: fresh allocations per call, feasibility
/// probed before the cost test.
pub fn dijkstra_map_reference(
    grid: &RoutingGrid,
    sources: &[CellPos],
    window: Interval,
    fluid: OpId,
    wash_of: impl Fn(OpId) -> Duration + Copy,
    options: AstarOptions,
) -> (Vec<u64>, Vec<Option<CellPos>>) {
    let spec = grid.spec();
    let n = spec.cell_count() as usize;
    let cell_cost = |cell: CellPos| -> u64 {
        LENGTH_COST
            + if grid.is_ring(cell) { RING_TAX } else { 0 }
            + if options.use_weights {
                grid.weight(cell).as_ticks()
            } else {
                0
            }
    };
    let mut dist = vec![u64::MAX; n];
    let mut prev: Vec<Option<CellPos>> = vec![None; n];
    let mut heap: BinaryHeap<Reverse<(u64, u32, u32)>> = BinaryHeap::new();
    for &s in sources {
        if !grid.feasible(s, window, fluid, wash_of) {
            continue;
        }
        let g = cell_cost(s);
        let idx = spec.index(s);
        if g < dist[idx] {
            dist[idx] = g;
            heap.push(Reverse((g, s.y, s.x)));
        }
    }
    while let Some(Reverse((g, y, x))) = heap.pop() {
        let cell = CellPos::new(x, y);
        let idx = spec.index(cell);
        if g > dist[idx] {
            continue;
        }
        for nb in cell.neighbours(spec.width, spec.height) {
            if !grid.feasible(nb, window, fluid, wash_of) {
                continue;
            }
            let ng = g + cell_cost(nb);
            let nidx = spec.index(nb);
            if ng < dist[nidx] {
                dist[nidx] = ng;
                prev[nidx] = Some(cell);
                heap.push(Reverse((ng, nb.y, nb.x)));
            }
        }
    }
    (dist, prev)
}

/// The historical parked-path search driven by [`find_path_reference`].
#[allow(clippy::too_many_arguments)]
fn find_parked_path(
    grid: &RoutingGrid,
    sources: &[CellPos],
    targets: &[CellPos],
    transport: Interval,
    full: Interval,
    plug_cells: u32,
    fluid: OpId,
    wash_of: impl Fn(OpId) -> Duration + Copy,
    options: AstarOptions,
) -> Option<(Vec<CellPos>, Vec<Interval>)> {
    let mut banned: std::collections::BTreeSet<CellPos> = std::collections::BTreeSet::new();
    let mut previous: Option<Vec<CellPos>> = None;
    for _ in 0..256 {
        let window_of = |c: CellPos| {
            if banned.contains(&c) {
                full
            } else {
                transport
            }
        };
        let path = find_path_reference(grid, sources, targets, window_of, fluid, wash_of, options)?;
        if previous.as_deref() == Some(path.as_slice()) {
            return None; // banning made no progress
        }
        let k = (plug_cells.max(1) as usize).min(path.len());
        let tail_start = path.len() - k;
        let mut ok = true;
        for &c in &path[tail_start..] {
            let foreign_ring = grid.is_ring(c) && !targets.contains(&c) && !sources.contains(&c);
            if foreign_ring || !grid.feasible(c, full, fluid, wash_of) {
                banned.insert(c);
                ok = false;
            }
        }
        if ok {
            let windows = (0..path.len())
                .map(|i| if i >= tail_start { full } else { transport })
                .collect();
            return Some((path, windows));
        }
        previous = Some(path);
    }
    None
}

/// The historical remote-parking fallback driven by
/// [`dijkstra_map_reference`].
#[allow(clippy::too_many_arguments)]
fn find_remote_parking(
    grid: &RoutingGrid,
    sources: &[CellPos],
    targets: &[CellPos],
    transport: Interval,
    full: Interval,
    fluid: OpId,
    wash_of: impl Fn(OpId) -> Duration + Copy,
    options: AstarOptions,
) -> Option<(Vec<CellPos>, Vec<Interval>)> {
    let spec = grid.spec();
    let t_c = transport.length();
    let leg2 = Interval::new(full.end.max(Instant::ZERO + t_c) - t_c, full.end);

    let (d1, p1) = dijkstra_map_reference(grid, sources, transport, fluid, wash_of, options);
    let (d2, p2) = dijkstra_map_reference(grid, targets, leg2, fluid, wash_of, options);

    let mut best: Option<(u64, CellPos)> = None;
    for y in 0..spec.height {
        for x in 0..spec.width {
            let cell = CellPos::new(x, y);
            let i = spec.index(cell);
            if d1[i] == u64::MAX || d2[i] == u64::MAX {
                continue;
            }
            if grid.is_ring(cell) && !targets.contains(&cell) && !sources.contains(&cell) {
                continue;
            }
            if !grid.feasible(cell, full, fluid, wash_of) {
                continue;
            }
            let cost = d1[i].saturating_add(d2[i]);
            if best.map_or(true, |(b, _)| cost < b) {
                best = Some((cost, cell));
            }
        }
    }
    let (_, park) = best?;

    let mut leg1_cells = vec![park];
    let mut cur = park;
    while let Some(p) = p1[spec.index(cur)] {
        leg1_cells.push(p);
        cur = p;
    }
    leg1_cells.reverse();

    let mut leg2_cells = Vec::new();
    let mut cur = park;
    while let Some(p) = p2[spec.index(cur)] {
        leg2_cells.push(p);
        cur = p;
    }

    let mut cells = Vec::with_capacity(leg1_cells.len() + leg2_cells.len());
    let mut windows = Vec::with_capacity(leg1_cells.len() + leg2_cells.len());
    for &c in &leg1_cells {
        cells.push(c);
        windows.push(if c == park { full } else { transport });
    }
    for &c in &leg2_cells {
        cells.push(c);
        windows.push(leg2);
    }
    Some((cells, windows))
}

/// The historical single-task realization scan.
#[allow(clippy::too_many_arguments)]
fn route_one(
    grid: &RoutingGrid,
    schedule: &Schedule,
    t: &TransportTask,
    src_ports: &[CellPos],
    dst_ports: &[CellPos],
    config: &RouterConfig,
    wash_of: impl Fn(OpId) -> Duration + Copy,
    options: AstarOptions,
) -> Option<(Vec<CellPos>, Vec<Interval>)> {
    let producer_end = schedule.op(t.fluid).end;
    let step = Duration::from_secs(1);
    let mut depart = t.depart;
    loop {
        let transport = Interval::new(depart, depart + schedule.t_c);
        let full = Interval::new(depart, t.consumed_at);
        let tail = find_parked_path(
            grid,
            src_ports,
            dst_ports,
            transport,
            full,
            config.plug_cells,
            t.fluid,
            wash_of,
            options,
        );
        let remote = if full.length() >= schedule.t_c * 2 {
            find_remote_parking(
                grid, src_ports, dst_ports, transport, full, t.fluid, wash_of, options,
            )
        } else {
            None
        };
        let attempt = match (tail, remote) {
            (Some(a), Some(b)) => Some(if b.0.len() < a.0.len() { b } else { a }),
            (a, b) => a.or(b),
        };
        if attempt.is_some() || depart <= producer_end {
            return attempt;
        }
        depart = if depart.saturating_duration_since(producer_end) <= step {
            producer_end
        } else {
            depart - step
        };
    }
}

/// The historical wash reconstruction: per cell, clone the reservations and
/// sort them before pairing.
fn collect_washes(
    grid: &RoutingGrid,
    wash_of: impl Fn(OpId) -> Duration + Copy,
) -> Vec<ChannelWash> {
    let mut washes = Vec::new();
    for cell in grid.used_cells() {
        let mut rs: Vec<_> = grid.reservations(cell).to_vec();
        rs.sort_by_key(|r| (r.window.start, r.window.end, r.task));
        for pair in rs.windows(2) {
            if pair[0].fluid != pair[1].fluid {
                washes.push(ChannelWash {
                    cell,
                    residue: pair[0].fluid,
                    task: pair[1].task,
                    duration: wash_of(pair[0].fluid),
                });
            }
        }
    }
    washes
}

/// The historical [`crate::router::route_dcsa`]: identical task ordering,
/// rip-up bookkeeping and reservation updates, but every search allocates
/// its working state per query.
///
/// # Errors
///
/// Same as [`crate::router::route_dcsa`].
pub fn route_dcsa_reference(
    schedule: &Schedule,
    graph: &SequencingGraph,
    placement: &Placement,
    wash: &dyn WashModel,
    config: &RouterConfig,
) -> Result<Routing, RouteError> {
    route_dcsa_reference_with_defects(
        schedule,
        graph,
        placement,
        wash,
        config,
        &DefectMap::pristine(),
    )
}

/// Defect-aware variant of [`route_dcsa_reference`].
///
/// # Errors
///
/// Same as [`crate::router::route_dcsa_with_defects`].
pub fn route_dcsa_reference_with_defects(
    schedule: &Schedule,
    graph: &SequencingGraph,
    placement: &Placement,
    wash: &dyn WashModel,
    config: &RouterConfig,
    defects: &DefectMap,
) -> Result<Routing, RouteError> {
    let mut by_start: Vec<&TransportTask> = schedule.transports().collect();
    by_start.sort_by_key(|t| (t.depart, t.id));
    let first = route_ordered(schedule, graph, placement, wash, config, &by_start, defects);
    if first.is_ok() {
        return first;
    }
    let mut by_occupancy: Vec<&TransportTask> = schedule.transports().collect();
    by_occupancy.sort_by_key(|t| (std::cmp::Reverse(t.occupancy().length()), t.depart, t.id));
    route_ordered(
        schedule,
        graph,
        placement,
        wash,
        config,
        &by_occupancy,
        defects,
    )
    .or(first)
}

#[allow(clippy::too_many_arguments)]
fn route_ordered(
    schedule: &Schedule,
    graph: &SequencingGraph,
    placement: &Placement,
    wash: &dyn WashModel,
    config: &RouterConfig,
    order: &[&TransportTask],
    defects: &DefectMap,
) -> Result<Routing, RouteError> {
    let mut grid = RoutingGrid::new_with_defects(placement, config.w_e, defects);
    let wash_of = |op: OpId| wash.wash_time(graph.op(op).output_diffusion());
    let options = AstarOptions {
        use_weights: config.wash_aware_weights,
    };

    const MAX_RIPS_PER_TASK: u32 = 3;
    let mut rip_count = vec![0u32; schedule.transports().len()];
    let mut queue: std::collections::VecDeque<&TransportTask> = order.iter().copied().collect();

    let mut paths: Vec<Option<RoutedPath>> = vec![None; schedule.transports().len()];
    while let Some(t) = queue.pop_front() {
        let src_ports = ports(placement, &grid, t.src);
        if src_ports.is_empty() {
            return Err(RouteError::NoPorts { component: t.src });
        }
        let dst_ports = ports(placement, &grid, t.dst);
        if dst_ports.is_empty() {
            return Err(RouteError::NoPorts { component: t.dst });
        }
        match route_one(
            &grid, schedule, t, &src_ports, &dst_ports, config, wash_of, options,
        ) {
            Some((cells, windows)) => {
                for (&cell, &window) in cells.iter().zip(&windows) {
                    grid.reserve(cell, t.id, t.fluid, window, wash_of);
                }
                paths[t.id.index()] = Some(RoutedPath {
                    task: t.id,
                    fluid: t.fluid,
                    cells,
                    windows,
                });
            }
            None => {
                let pristine = RoutingGrid::new_with_defects(placement, config.w_e, defects);
                let window = t.occupancy();
                let reference = find_path_reference(
                    &pristine,
                    &src_ports,
                    &dst_ports,
                    |_| window,
                    t.fluid,
                    wash_of,
                    AstarOptions { use_weights: false },
                )
                .ok_or(RouteError::Unroutable { task: t.id })?;
                let mut blockers: Vec<TaskId> = Vec::new();
                for &cell in &reference {
                    for r in grid.reservations(cell) {
                        if r.task == t.id || r.fluid == t.fluid {
                            continue;
                        }
                        let clash = r.window.overlaps(window)
                            || (r.window.end <= window.start
                                && r.window.end + wash_of(r.fluid) > window.start)
                            || (window.end <= r.window.start
                                && window.end + wash_of(t.fluid) > r.window.start);
                        if clash && !blockers.contains(&r.task) {
                            blockers.push(r.task);
                        }
                    }
                }
                blockers.retain(|b| paths[b.index()].is_some());
                if blockers.is_empty()
                    || blockers
                        .iter()
                        .any(|b| rip_count[b.index()] >= MAX_RIPS_PER_TASK)
                {
                    return Err(RouteError::Unroutable { task: t.id });
                }
                for &b in &blockers {
                    grid.unreserve(b, wash_of);
                    paths[b.index()] = None;
                    rip_count[b.index()] += 1;
                }
                let mut ripped: Vec<&TransportTask> =
                    blockers.iter().map(|&b| schedule.transport(b)).collect();
                ripped.sort_by_key(|t| (t.depart, t.id));
                for r in ripped.into_iter().rev() {
                    queue.push_front(r);
                }
                queue.push_front(t);
            }
        }
    }

    let washes = collect_washes(&grid, wash_of);

    let mut routed = Vec::with_capacity(paths.len());
    for (i, p) in paths.into_iter().enumerate() {
        routed.push(p.ok_or(RouteError::InconsistentSchedule {
            task: TaskId::new(i as u32),
        })?);
    }

    Ok(Routing {
        paths: routed,
        channel_washes: washes,
        realized: RealizedTimes::from_schedule(schedule),
        grid: grid.spec(),
        used_cells: grid.used_cell_count(),
    })
}
