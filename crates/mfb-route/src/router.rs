//! The paper's transportation-conflict-aware router (Algorithm 2, lines
//! 9–18) and the routing result type shared with the baseline.
//!
//! Transport tasks are routed one by one in non-decreasing start-time order.
//! Each task reserves its whole occupancy window — transport **plus channel
//! cache dwell** — on every cell of its path, so later searches simply
//! cannot produce any of the three conflict classes of §II-C.2. After each
//! task, cell weights become the wash time of the residue just deposited
//! (Fig. 7), steering subsequent tasks onto cheap-to-wash shared channels.

use crate::astar::{find_path_with, AstarOptions, SearchScratch};
use crate::error::RouteError;
use crate::grid::{ChannelWash, RoutingGrid};
use mfb_model::prelude::*;
use mfb_place::prelude::Placement;
use mfb_sched::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Router configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterConfig {
    /// Initial cell weight `w_e` (paper default 10 s).
    pub w_e: Duration,
    /// Update cell weights to residue wash times after each task (Fig. 7).
    /// Disable for the weight ablation: cells keep the constant `w_e` and
    /// the router loses its channel-sharing bias.
    pub wash_aware_weights: bool,
    /// Length of a cached fluid plug, in cells. The **last `plug_cells`
    /// cells of each path** — the segment where the fluid physically parks
    /// while cached — stay occupied for the whole transport-plus-cache
    /// window; cells merely passed through are occupied for the transport
    /// leg only. Values below 1 are treated as 1.
    pub plug_cells: u32,
    /// Congestion-negotiation schedule, used only by the PathFinder-style
    /// [`crate::negotiate::route_negotiated`] family; the conflict-aware
    /// and baseline routers ignore it.
    pub negotiation: crate::negotiate::NegotiationParams,
}

impl RouterConfig {
    /// The paper's configuration: `w_e = 10 s`, wash-aware weights on,
    /// plug length 1 cell (a 10 mm grid cell comfortably holds a sample plug).
    pub fn paper() -> Self {
        RouterConfig {
            w_e: Duration::from_secs(10),
            wash_aware_weights: true,
            plug_cells: 1,
            negotiation: crate::negotiate::NegotiationParams::paper_tuned(),
        }
    }
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig::paper()
    }
}

/// One routed transport task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutedPath {
    /// The task.
    pub task: TaskId,
    /// The fluid it carries.
    pub fluid: OpId,
    /// Path cells, source port first. A single cell for transports that
    /// start and end at the same component (fluid parked in the adjacent
    /// channel).
    pub cells: Vec<CellPos>,
    /// The *realized* occupancy window reserved on each path cell (parallel
    /// to [`cells`](Self::cells)): the full transport-plus-cache window on
    /// the parking segment near the destination, the transport leg
    /// elsewhere, shifted by any correction delay.
    pub windows: Vec<Interval>,
}

impl RoutedPath {
    /// Path length in cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` for an empty path (never produced by the routers).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates over `(cell, occupancy window)` pairs.
    pub fn occupancies(&self) -> impl Iterator<Item = (CellPos, Interval)> + '_ {
        self.cells.iter().copied().zip(self.windows.iter().copied())
    }

    /// The hull of all per-cell windows (the task's total on-chip lifetime).
    pub fn window_hull(&self) -> Interval {
        self.windows
            .iter()
            .copied()
            .reduce(|a, b| a.hull(b))
            .unwrap_or(Interval::empty_at(Instant::ZERO))
    }

    /// `true` when `self` and `other` occupy some shared cell at
    /// overlapping times — a transportation conflict. Aliquots of the same
    /// fluid never conflict (one plug splitting at a junction).
    pub fn conflicts_with(&self, other: &RoutedPath) -> bool {
        self.fluid != other.fluid
            && self.occupancies().any(|(c1, w1)| {
                other
                    .occupancies()
                    .any(|(c2, w2)| c1 == c2 && w1.overlaps(w2))
            })
    }
}

/// Realized operation times after routing: the scheduled times shifted by
/// whatever postponements the router had to introduce. The paper's router
/// introduces none; the baseline's construction-by-correction may.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RealizedTimes {
    /// Realized start per operation (indexed by `OpId`).
    pub start: Vec<Instant>,
    /// Realized end per operation (indexed by `OpId`).
    pub end: Vec<Instant>,
}

impl RealizedTimes {
    /// Times exactly as scheduled (zero delay).
    pub fn from_schedule(schedule: &Schedule) -> Self {
        RealizedTimes {
            start: schedule.ops().map(|s| s.start).collect(),
            end: schedule.ops().map(|s| s.end).collect(),
        }
    }

    /// Realized assay completion time.
    pub fn completion(&self) -> Instant {
        self.end.iter().copied().max().unwrap_or(Instant::ZERO)
    }

    /// Delay of operation `op` versus `schedule`.
    pub fn delay_of(&self, schedule: &Schedule, op: OpId) -> Duration {
        self.end[op.index()].saturating_duration_since(schedule.op(op).end)
    }
}

/// A complete routing solution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Routing {
    /// Routed paths, indexed by `TaskId`.
    pub paths: Vec<RoutedPath>,
    /// Channel washes incurred (Fig. 9's metric is their summed duration).
    pub channel_washes: Vec<ChannelWash>,
    /// Realized operation times (identical to the schedule for the paper's
    /// router; possibly delayed for the baseline).
    pub realized: RealizedTimes,
    /// The grid geometry routed on.
    pub grid: GridSpec,
    /// Number of distinct cells used by any path.
    pub used_cells: usize,
}

impl Routing {
    /// Table I's *total channel length*: distinct channel cells times the
    /// physical cell pitch, in millimetres.
    pub fn total_channel_length_mm(&self) -> f64 {
        self.grid.cells_to_mm(self.used_cells as u64)
    }

    /// Fig. 9's *total wash time of flow channels*.
    pub fn total_channel_wash_time(&self) -> Duration {
        self.channel_washes.iter().map(|w| w.duration).sum()
    }

    /// Total *realized* channel-cache time: per task, its on-chip lifetime
    /// (window hull) minus one transport leg — the Fig. 8 quantity under
    /// the realized windows.
    pub fn total_realized_cache_time(&self, t_c: Duration) -> Duration {
        self.paths
            .iter()
            .filter(|p| !p.is_empty())
            .map(|p| p.window_hull().length().saturating_sub(t_c))
            .sum()
    }

    /// Summed path length over all tasks, in cells (counts shared cells once
    /// per use; compare with [`Routing::used_cells`] for sharing).
    pub fn total_path_cells(&self) -> usize {
        self.paths.iter().map(RoutedPath::len).sum()
    }

    /// The realized assay completion time.
    pub fn completion(&self) -> Instant {
        self.realized.completion()
    }

    /// Total routing-induced delay across operations versus `schedule`.
    pub fn total_delay(&self, schedule: &Schedule) -> Duration {
        schedule
            .ops()
            .map(|s| self.realized.delay_of(schedule, s.op))
            .sum()
    }
}

impl fmt::Display for Routing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "routing({} paths, {} cells, {:.0} mm, wash {})",
            self.paths.len(),
            self.used_cells,
            self.total_channel_length_mm(),
            self.total_channel_wash_time()
        )
    }
}

/// Finds a path whose **tail** (the last `plug_cells` cells, where the
/// cached fluid parks) is feasible for the full transport-plus-cache window
/// `full`, while the rest of the path only needs the transport leg
/// `transport`.
///
/// Strategy: search with transport windows, then verify the tail under the
/// full window; any tail cell that cannot host the parked plug is *banned*
/// (it must satisfy the full window in subsequent searches), and the search
/// repeats. Returns the path and its per-cell windows.
#[allow(clippy::too_many_arguments)]
pub(crate) fn find_parked_path(
    scratch: &mut SearchScratch,
    grid: &RoutingGrid,
    sources: &[CellPos],
    targets: &[CellPos],
    transport: Interval,
    full: Interval,
    plug_cells: u32,
    fluid: OpId,
    wash_of: impl Fn(OpId) -> Duration + Copy,
    options: AstarOptions,
) -> Option<(Vec<CellPos>, Vec<Interval>)> {
    let mut banned: std::collections::BTreeSet<CellPos> = std::collections::BTreeSet::new();
    let mut previous: Option<Vec<CellPos>> = None;
    // Each failed attempt normally bans a new cell; when banning cannot
    // change the search (a foreign-ring cell that is full-window feasible),
    // the repeated path is detected and the search gives up. 256 bounds
    // the loop on practical grids either way.
    for attempt in 0..256 {
        if attempt > 0 {
            scratch.stats.window_retries += 1;
        }
        let window_of = |c: CellPos| {
            if banned.contains(&c) {
                full
            } else {
                transport
            }
        };
        let path = find_path_with(
            scratch, grid, sources, targets, window_of, fluid, wash_of, options,
        )?;
        if previous.as_deref() == Some(path.as_slice()) {
            return None; // banning made no progress
        }
        let k = (plug_cells.max(1) as usize).min(path.len());
        let tail_start = path.len() - k;
        let mut ok = true;
        for &c in &path[tail_start..] {
            // Plugs may not park on a foreign component's access ring —
            // a long-cached plug there would wall that component in.
            let foreign_ring = grid.is_ring(c) && !targets.contains(&c) && !sources.contains(&c);
            if foreign_ring || !grid.feasible(c, full, fluid, wash_of) {
                banned.insert(c);
                ok = false;
            }
        }
        if ok {
            let windows = (0..path.len())
                .map(|i| if i >= tail_start { full } else { transport })
                .collect();
            return Some((path, windows));
        }
        previous = Some(path);
    }
    None
}

/// Remote-parking fallback: when no path can host the cached plug on its
/// tail next to the destination, the fluid instead transits to a **free
/// parking cell anywhere on the chip** (this is the "distributed channel
/// storage" the architecture is named for), dwells there for the cache
/// period, and makes a final approach to the destination just before
/// consumption.
///
/// Reservations: the outbound leg holds its cells for the transport window,
/// the parking cell holds `[depart, consumed)`, and the return leg holds
/// `[consumed - t_c, consumed)`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn find_remote_parking(
    scratch: &mut SearchScratch,
    grid: &RoutingGrid,
    sources: &[CellPos],
    targets: &[CellPos],
    transport: Interval,
    full: Interval,
    fluid: OpId,
    wash_of: impl Fn(OpId) -> Duration + Copy,
    options: AstarOptions,
) -> Option<(Vec<CellPos>, Vec<Interval>)> {
    use crate::astar::dijkstra_map_with;
    let spec = grid.spec();
    let t_c = transport.length();
    let leg2 = Interval::new(full.end.max(Instant::ZERO + t_c) - t_c, full.end);

    let (d1, p1) = dijkstra_map_with(scratch, grid, sources, transport, fluid, wash_of, options);
    let (d2, p2) = dijkstra_map_with(scratch, grid, targets, leg2, fluid, wash_of, options);

    // Best parking cell: reachable on both legs and free for the full stay.
    let mut best: Option<(u64, CellPos)> = None;
    for y in 0..spec.height {
        for x in 0..spec.width {
            let cell = CellPos::new(x, y);
            let i = spec.index(cell);
            if d1[i] == u64::MAX || d2[i] == u64::MAX {
                continue;
            }
            // No parking on a foreign component's access ring.
            if grid.is_ring(cell) && !targets.contains(&cell) && !sources.contains(&cell) {
                continue;
            }
            if !grid.feasible(cell, full, fluid, wash_of) {
                continue;
            }
            let cost = d1[i].saturating_add(d2[i]);
            if best.map_or(true, |(b, _)| cost < b) {
                best = Some((cost, cell));
            }
        }
    }
    let (_, park) = best?;

    // Reconstruct: src -> park (leg 1), park -> dst (leg 2, walked
    // backwards along the reverse search's predecessors).
    let mut leg1_cells = vec![park];
    let mut cur = park;
    while let Some(p) = p1[spec.index(cur)] {
        leg1_cells.push(p);
        cur = p;
    }
    leg1_cells.reverse();

    let mut leg2_cells = Vec::new();
    let mut cur = park;
    while let Some(p) = p2[spec.index(cur)] {
        leg2_cells.push(p);
        cur = p;
    }

    let mut cells = Vec::with_capacity(leg1_cells.len() + leg2_cells.len());
    let mut windows = Vec::with_capacity(leg1_cells.len() + leg2_cells.len());
    for &c in &leg1_cells {
        cells.push(c);
        windows.push(if c == park { full } else { transport });
    }
    for &c in &leg2_cells {
        cells.push(c);
        windows.push(leg2);
    }
    Some((cells, windows))
}

/// All routable port cells of component `c`: cells orthogonally adjacent to
/// its rectangle that are on the grid and not inside another component.
pub fn ports(placement: &Placement, grid: &RoutingGrid, c: ComponentId) -> Vec<CellPos> {
    let rect = placement.rect(c);
    let spec = placement.grid();
    let (x2, y2) = rect.upper_right();
    let mut cells = Vec::new();
    for x in rect.origin.x..x2 {
        if rect.origin.y > 0 {
            cells.push(CellPos::new(x, rect.origin.y - 1));
        }
        if y2 < spec.height {
            cells.push(CellPos::new(x, y2));
        }
    }
    for y in rect.origin.y..y2 {
        if rect.origin.x > 0 {
            cells.push(CellPos::new(rect.origin.x - 1, y));
        }
        if x2 < spec.width {
            cells.push(CellPos::new(x2, y));
        }
    }
    cells.retain(|&p| grid.is_routable(p));
    cells
}

/// Routes every transport task of `schedule` with the paper's
/// conflict-aware weighted A*, in non-decreasing start-time order.
///
/// The returned routing has **zero** realized delay: all reservations use
/// the scheduled windows, and feasibility is guaranteed cell-by-cell, so
/// the scheduled times are achievable on the physical layout.
///
/// # Errors
///
/// [`RouteError::Unroutable`] when some task admits no conflict-free path
/// (the grid is too congested — retry on a larger grid);
/// [`RouteError::NoPorts`] when a component is walled in.
pub fn route_dcsa(
    schedule: &Schedule,
    graph: &SequencingGraph,
    placement: &Placement,
    wash: &dyn WashModel,
    config: &RouterConfig,
) -> Result<Routing, RouteError> {
    route_dcsa_with_defects(
        schedule,
        graph,
        placement,
        wash,
        config,
        &DefectMap::pristine(),
    )
}

/// [`route_dcsa`] on a damaged chip: blocked cells of `defects` are
/// permanently occupied (∞ cost) for the time-windowed A*, so no path —
/// transport, parking or rip-up reference — ever crosses one, and degraded
/// cells pay their extra weight in Eq. (5).
///
/// # Errors
///
/// Same as [`route_dcsa`]; a chip whose defects sever every corridor
/// surfaces as [`RouteError::Unroutable`] or [`RouteError::NoPorts`].
pub fn route_dcsa_with_defects(
    schedule: &Schedule,
    graph: &SequencingGraph,
    placement: &Placement,
    wash: &dyn WashModel,
    config: &RouterConfig,
    defects: &DefectMap,
) -> Result<Routing, RouteError> {
    let mut scratch = SearchScratch::new();
    route_dcsa_with_scratch(
        schedule,
        graph,
        placement,
        wash,
        config,
        defects,
        &mut scratch,
    )
}

/// [`route_dcsa_with_defects`] under an execution [`Budget`]: the budget is
/// installed on `scratch` and polled per routed task plus every few
/// thousand A* expansions, so a tripped deadline or cancellation surfaces
/// as [`RouteError::Interrupted`] within milliseconds instead of after the
/// full pass. An unlimited budget leaves the search bit-identical to
/// [`route_dcsa_with_scratch`].
///
/// # Errors
///
/// Same as [`route_dcsa`], plus [`RouteError::Interrupted`].
#[allow(clippy::too_many_arguments)]
pub fn route_dcsa_budgeted(
    schedule: &Schedule,
    graph: &SequencingGraph,
    placement: &Placement,
    wash: &dyn WashModel,
    config: &RouterConfig,
    defects: &DefectMap,
    scratch: &mut SearchScratch,
    budget: &Budget,
) -> Result<Routing, RouteError> {
    scratch.set_budget(budget);
    let result =
        route_dcsa_with_scratch(schedule, graph, placement, wash, config, defects, scratch);
    scratch.set_budget(&Budget::unlimited());
    result
}

/// [`route_dcsa_with_defects`] on a caller-owned [`SearchScratch`]: the
/// arena (and its accumulated [`crate::astar::SearchStats`]) survives the
/// call, so batch drivers reuse one arena across placements and `mfb
/// bench` reads expansion counts from it.
///
/// # Errors
///
/// Same as [`route_dcsa`].
pub fn route_dcsa_with_scratch(
    schedule: &Schedule,
    graph: &SequencingGraph,
    placement: &Placement,
    wash: &dyn WashModel,
    config: &RouterConfig,
    defects: &DefectMap,
    scratch: &mut SearchScratch,
) -> Result<Routing, RouteError> {
    let _span = mfb_obs::obs_span!("route.dcsa", tasks = schedule.transports().len() as u64);
    let stats_before = scratch.stats;
    let result = route_dcsa_orderings(schedule, graph, placement, wash, config, defects, scratch);
    if mfb_obs::enabled() {
        let d = scratch.stats;
        mfb_obs::obs_counter!("astar.queries", d.queries - stats_before.queries);
        mfb_obs::obs_counter!("astar.expansions", d.expansions - stats_before.expansions);
        mfb_obs::obs_counter!(
            "astar.heap_pushes",
            d.heap_pushes - stats_before.heap_pushes
        );
        mfb_obs::obs_counter!(
            "route.window_retries",
            d.window_retries - stats_before.window_retries
        );
    }
    result
}

/// The two-ordering routing strategy behind [`route_dcsa_with_scratch`].
#[allow(clippy::too_many_arguments)]
fn route_dcsa_orderings(
    schedule: &Schedule,
    graph: &SequencingGraph,
    placement: &Placement,
    wash: &dyn WashModel,
    config: &RouterConfig,
    defects: &DefectMap,
    scratch: &mut SearchScratch,
) -> Result<Routing, RouteError> {
    // Routing order matters: the paper's start-time order is tried first;
    // if some task cannot be realized, a second pass routes the
    // longest-occupancy tasks first — hard-to-place cached plugs claim
    // parking early, and short flexible transports thread around them.
    let mut by_start: Vec<&TransportTask> = schedule.transports().collect();
    by_start.sort_by_key(|t| (t.depart, t.id));
    let first = route_dcsa_ordered(
        schedule, graph, placement, wash, config, &by_start, defects, scratch,
    );
    // Success — or a budget interrupt, which a different ordering cannot
    // outrun — ends the pass immediately.
    if matches!(first, Ok(_) | Err(RouteError::Interrupted(_))) {
        return first;
    }
    let mut by_occupancy: Vec<&TransportTask> = schedule.transports().collect();
    by_occupancy.sort_by_key(|t| (std::cmp::Reverse(t.occupancy().length()), t.depart, t.id));
    route_dcsa_ordered(
        schedule,
        graph,
        placement,
        wash,
        config,
        &by_occupancy,
        defects,
        scratch,
    )
    .or(first)
}

#[allow(clippy::too_many_arguments)]
fn route_dcsa_ordered(
    schedule: &Schedule,
    graph: &SequencingGraph,
    placement: &Placement,
    wash: &dyn WashModel,
    config: &RouterConfig,
    order: &[&TransportTask],
    defects: &DefectMap,
    scratch: &mut SearchScratch,
) -> Result<Routing, RouteError> {
    let mut grid = RoutingGrid::new_with_defects(placement, config.w_e, defects);
    let wash_of = |op: OpId| wash.wash_time(graph.op(op).output_diffusion());
    let options = AstarOptions {
        use_weights: config.wash_aware_weights,
    };

    // Rip-up-and-reroute bookkeeping: when a task cannot be realized, the
    // tasks whose reservations block its corridor are torn out and re-routed
    // after it. Each task may be ripped a bounded number of times, so the
    // loop terminates.
    const MAX_RIPS_PER_TASK: u32 = 3;
    let mut rip_count = vec![0u32; schedule.transports().len()];
    let mut queue: std::collections::VecDeque<&TransportTask> = order.iter().copied().collect();

    let mut paths: Vec<Option<RoutedPath>> = vec![None; schedule.transports().len()];
    while let Some(t) = queue.pop_front() {
        if let Some(why) = scratch.poll_budget() {
            return Err(RouteError::Interrupted(why));
        }
        let src_ports = ports(placement, &grid, t.src);
        if src_ports.is_empty() {
            return Err(RouteError::NoPorts { component: t.src });
        }
        let dst_ports = ports(placement, &grid, t.dst);
        if dst_ports.is_empty() {
            return Err(RouteError::NoPorts { component: t.dst });
        }
        match route_one(
            scratch, &grid, schedule, t, &src_ports, &dst_ports, config, wash_of, options,
        ) {
            Some((cells, windows)) => {
                for (&cell, &window) in cells.iter().zip(&windows) {
                    grid.reserve(cell, t.id, t.fluid, window, wash_of);
                }
                paths[t.id.index()] = Some(RoutedPath {
                    task: t.id,
                    fluid: t.fluid,
                    cells,
                    windows,
                });
            }
            None => {
                // A search that stopped at a budget checkpoint returns the
                // same `None` as a genuinely blocked task; the interrupt
                // flag disambiguates.
                if let Some(why) = scratch.interrupted() {
                    return Err(RouteError::Interrupted(why));
                }
                // Identify blockers along an unconstrained reference path
                // and rip them out. The reference grid carries no
                // reservations but must still honor the defect mask.
                let pristine = RoutingGrid::new_with_defects(placement, config.w_e, defects);
                let window = t.occupancy();
                let reference = match find_path_with(
                    scratch,
                    &pristine,
                    &src_ports,
                    &dst_ports,
                    |_| window,
                    t.fluid,
                    wash_of,
                    AstarOptions { use_weights: false },
                ) {
                    Some(p) => p,
                    None => {
                        return Err(match scratch.interrupted() {
                            Some(why) => RouteError::Interrupted(why),
                            None => RouteError::Unroutable { task: t.id },
                        })
                    }
                };
                let mut blockers: Vec<TaskId> = Vec::new();
                for &cell in &reference {
                    for r in grid.reservations(cell) {
                        if r.task == t.id || r.fluid == t.fluid {
                            continue;
                        }
                        let clash = r.window.overlaps(window)
                            || (r.window.end <= window.start
                                && r.window.end + wash_of(r.fluid) > window.start)
                            || (window.end <= r.window.start
                                && window.end + wash_of(t.fluid) > r.window.start);
                        if clash && !blockers.contains(&r.task) {
                            blockers.push(r.task);
                        }
                    }
                }
                blockers.retain(|b| paths[b.index()].is_some());
                if blockers.is_empty()
                    || blockers
                        .iter()
                        .any(|b| rip_count[b.index()] >= MAX_RIPS_PER_TASK)
                {
                    return Err(RouteError::Unroutable { task: t.id });
                }
                for &b in &blockers {
                    grid.unreserve(b, wash_of);
                    paths[b.index()] = None;
                    rip_count[b.index()] += 1;
                    scratch.stats.rips += 1;
                }
                // Retry this task first, then the ripped ones in id order.
                let mut ripped: Vec<&TransportTask> =
                    blockers.iter().map(|&b| schedule.transport(b)).collect();
                ripped.sort_by_key(|t| (t.depart, t.id));
                for r in ripped.into_iter().rev() {
                    queue.push_front(r);
                }
                queue.push_front(t);
            }
        }
    }

    mfb_obs::obs_counter!(
        "route.rips",
        rip_count.iter().map(|&c| u64::from(c)).sum::<u64>()
    );

    // Channel-wash accounting from the final reservations: per cell, each
    // residue left by one fluid and flushed before a different fluid's
    // later use contributes its wash time (Fig. 9).
    let washes = collect_washes(&grid, wash_of);

    let mut routed = Vec::with_capacity(paths.len());
    for (i, p) in paths.into_iter().enumerate() {
        // Every queued task either routes or rips blockers and requeues
        // itself, so a drained queue means all paths are present — unless
        // the schedule itself was inconsistent (e.g. hand-built).
        routed.push(p.ok_or(RouteError::InconsistentSchedule {
            task: TaskId::new(i as u32),
        })?);
    }

    Ok(Routing {
        paths: routed,
        channel_washes: washes,
        realized: RealizedTimes::from_schedule(schedule),
        grid: grid.spec(),
        used_cells: grid.used_cell_count(),
    })
}

/// Attempts to realize one transport task on the current grid, using the
/// departure-flexibility scan plus tail/remote parking (see module docs).
#[allow(clippy::too_many_arguments)]
pub(crate) fn route_one(
    scratch: &mut SearchScratch,
    grid: &RoutingGrid,
    schedule: &Schedule,
    t: &TransportTask,
    src_ports: &[CellPos],
    dst_ports: &[CellPos],
    config: &RouterConfig,
    wash_of: impl Fn(OpId) -> Duration + Copy,
    options: AstarOptions,
) -> Option<(Vec<CellPos>, Vec<Interval>)> {
    // Departure flexibility: the scheduler's departure is as late as
    // possible, but the fluid has existed since its producer finished —
    // departing earlier only lengthens its channel-cache dwell and never
    // delays the consumer. Scan departures from the scheduled one backwards
    // to the producer's end until a conflict-free path appears.
    let producer_end = schedule.op(t.fluid).end;
    let step = Duration::from_secs(1);
    let mut depart = t.depart;
    loop {
        let transport = Interval::new(depart, depart + schedule.t_c);
        let full = Interval::new(depart, t.consumed_at);
        // Two ways to realize the task: carry the plug straight to the
        // destination and park on the path tail, or park it in a free
        // channel segment elsewhere (distributed channel storage proper)
        // and finish the trip just before consumption. Both are sound;
        // take whichever uses fewer channel cells.
        let tail = find_parked_path(
            scratch,
            grid,
            src_ports,
            dst_ports,
            transport,
            full,
            config.plug_cells,
            t.fluid,
            wash_of,
            options,
        );
        // Remote parking books an outbound leg [depart, depart+t_c) and a
        // return leg [consumed-t_c, consumed); those must not overlap, so
        // the stay must cover two full transport legs.
        let remote = if full.length() >= schedule.t_c * 2 {
            find_remote_parking(
                scratch, grid, src_ports, dst_ports, transport, full, t.fluid, wash_of, options,
            )
        } else {
            None
        };
        let attempt = match (tail, remote) {
            (Some(a), Some(b)) => Some(if b.0.len() < a.0.len() { b } else { a }),
            (a, b) => a.or(b),
        };
        if attempt.is_some() || depart <= producer_end {
            return attempt;
        }
        // Step back towards the producer's end without underflowing the
        // assay origin (departures can be sub-second).
        depart = if depart.saturating_duration_since(producer_end) <= step {
            producer_end
        } else {
            depart - step
        };
    }
}

/// Reconstructs Fig. 9's channel washes from the final per-cell
/// reservations: consecutive uses of a cell by different fluids imply a
/// wash of the earlier residue.
pub(crate) fn collect_washes(
    grid: &RoutingGrid,
    wash_of: impl Fn(OpId) -> Duration + Copy,
) -> Vec<ChannelWash> {
    let mut washes = Vec::new();
    let spec = grid.spec();
    for cell in grid.used_cells() {
        // Reservations are stored sorted by (window.start, window.end,
        // task) — exactly the order the accounting needs, so no per-cell
        // clone-and-sort.
        let rs = grid.reservations(cell);
        debug_assert!(rs
            .windows(2)
            .all(|p| (p[0].window.start, p[0].window.end, p[0].task)
                <= (p[1].window.start, p[1].window.end, p[1].task)));
        for pair in rs.windows(2) {
            if pair[0].fluid != pair[1].fluid {
                washes.push(ChannelWash {
                    cell,
                    residue: pair[0].fluid,
                    task: pair[1].task,
                    duration: wash_of(pair[0].fluid),
                });
            }
        }
    }
    let _ = spec;
    washes
}

#[cfg(test)]
mod tests {
    use super::*;

    use mfb_sched::list::{schedule as run_sched, SchedulerConfig};

    fn d_wash(secs: f64) -> DiffusionCoefficient {
        LogLinearWash::paper_calibrated().coefficient_for(Duration::from_secs_f64(secs))
    }

    fn wash() -> LogLinearWash {
        LogLinearWash::paper_calibrated()
    }

    /// Mix -> heat -> detect chain on a hand-made placement.
    fn chain_setup() -> (SequencingGraph, ComponentSet, Schedule, Placement) {
        let mut b = SequencingGraph::builder();
        let m = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(4.0));
        let h = b.operation(OperationKind::Heat, Duration::from_secs(3), d_wash(2.0));
        let dt = b.operation(OperationKind::Detect, Duration::from_secs(4), d_wash(0.2));
        b.chain(&[m, h, dt]).unwrap();
        let g = b.build().unwrap();
        let comps = Allocation::new(1, 1, 0, 1).instantiate(&ComponentLibrary::default());
        let s = run_sched(&g, &comps, &wash(), &SchedulerConfig::paper_dcsa()).unwrap();
        let placement = Placement::new(
            GridSpec::square(16),
            vec![
                CellRect::new(CellPos::new(1, 1), 4, 3), // mixer
                CellRect::new(CellPos::new(8, 1), 3, 2), // heater
                CellRect::new(CellPos::new(8, 8), 2, 2), // detector
            ],
        );
        assert!(placement.is_legal());
        (g, comps, s, placement)
    }

    #[test]
    fn ports_surround_component() {
        let (_, _, _, placement) = chain_setup();
        let grid = RoutingGrid::new(&placement, Duration::from_secs(10));
        let p = ports(&placement, &grid, ComponentId::new(0));
        // Mixer 4x3 at (1,1): ring of 2*(4+3) = 14 cells, all routable here.
        assert_eq!(p.len(), 14);
        for cell in &p {
            assert!(grid.is_routable(*cell));
            let r = placement.rect(ComponentId::new(0));
            assert!(!r.contains(*cell));
        }
    }

    #[test]
    fn routes_chain_without_delay() {
        let (g, _comps, s, placement) = chain_setup();
        let r = route_dcsa(&s, &g, &placement, &wash(), &RouterConfig::paper()).unwrap();
        assert_eq!(r.paths.len(), 2);
        assert_eq!(r.completion(), s.completion_time());
        assert_eq!(r.total_delay(&s), Duration::ZERO);
        for p in &r.paths {
            assert!(!p.is_empty());
            for w in p.cells.windows(2) {
                assert_eq!(w[0].manhattan(w[1]), 1, "path not contiguous");
            }
        }
        assert!(r.used_cells > 0);
        assert!(r.total_channel_length_mm() > 0.0);
    }

    #[test]
    fn paths_start_and_end_at_ports() {
        let (g, _comps, s, placement) = chain_setup();
        let r = route_dcsa(&s, &g, &placement, &wash(), &RouterConfig::paper()).unwrap();
        let grid = RoutingGrid::new(&placement, Duration::from_secs(10));
        for t in s.transports() {
            let p = &r.paths[t.id.index()];
            let src_ports = ports(&placement, &grid, t.src);
            let dst_ports = ports(&placement, &grid, t.dst);
            assert!(src_ports.contains(&p.cells[0]));
            assert!(dst_ports.contains(p.cells.last().unwrap()));
        }
    }

    #[test]
    fn routing_is_deterministic() {
        let (g, _comps, s, placement) = chain_setup();
        let a = route_dcsa(&s, &g, &placement, &wash(), &RouterConfig::paper()).unwrap();
        let b = route_dcsa(&s, &g, &placement, &wash(), &RouterConfig::paper()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pristine_defects_match_plain_routing() {
        let (g, _comps, s, placement) = chain_setup();
        let plain = route_dcsa(&s, &g, &placement, &wash(), &RouterConfig::paper()).unwrap();
        let with = route_dcsa_with_defects(
            &s,
            &g,
            &placement,
            &wash(),
            &RouterConfig::paper(),
            &DefectMap::pristine(),
        )
        .unwrap();
        assert_eq!(plain, with);
    }

    #[test]
    fn blocked_cells_force_detours_and_are_never_crossed() {
        let (g, _comps, s, placement) = chain_setup();
        // Wall off column x = 6 except one gap at y = 14, so every
        // mixer -> heater transport must detour through the gap.
        let mut defects = DefectMap::pristine();
        for y in 0..14 {
            defects.block_cell(CellPos::new(6, y));
        }
        let r = route_dcsa_with_defects(
            &s,
            &g,
            &placement,
            &wash(),
            &RouterConfig::paper(),
            &defects,
        )
        .unwrap();
        for p in &r.paths {
            for &c in &p.cells {
                assert!(!defects.is_blocked(c), "path crosses blocked cell {c}");
            }
        }
        let plain = route_dcsa(&s, &g, &placement, &wash(), &RouterConfig::paper()).unwrap();
        let len = |r: &Routing| r.paths.iter().map(|p| p.cells.len()).sum::<usize>();
        assert!(
            len(&r) > len(&plain),
            "the wall must lengthen at least one path"
        );
    }

    #[test]
    fn baseline_honors_defects_too() {
        let (g, _comps, s, placement) = chain_setup();
        let mut defects = DefectMap::pristine();
        for y in 0..14 {
            defects.block_cell(CellPos::new(6, y));
        }
        let r = crate::baseline::route_corrected_with_defects(
            &s,
            &g,
            &placement,
            &wash(),
            &RouterConfig::paper(),
            &defects,
        )
        .unwrap();
        for p in &r.paths {
            for &c in &p.cells {
                assert!(!defects.is_blocked(c), "baseline path crosses blocked cell");
            }
        }
    }

    #[test]
    fn parallel_tasks_never_share_cells() {
        // Two independent mix->heat chains; their transports overlap in
        // time and must use disjoint cells.
        let mut b = SequencingGraph::builder();
        let m0 = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(4.0));
        let h0 = b.operation(OperationKind::Heat, Duration::from_secs(3), d_wash(1.0));
        let m1 = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(6.0));
        let h1 = b.operation(OperationKind::Heat, Duration::from_secs(3), d_wash(1.0));
        b.edge(m0, h0).unwrap();
        b.edge(m1, h1).unwrap();
        let g = b.build().unwrap();
        let comps = Allocation::new(2, 2, 0, 0).instantiate(&ComponentLibrary::default());
        let s = run_sched(&g, &comps, &wash(), &SchedulerConfig::paper_dcsa()).unwrap();
        let placement = Placement::new(
            GridSpec::square(18),
            vec![
                CellRect::new(CellPos::new(1, 1), 4, 3),
                CellRect::new(CellPos::new(1, 8), 4, 3),
                CellRect::new(CellPos::new(10, 1), 3, 2),
                CellRect::new(CellPos::new(10, 8), 3, 2),
            ],
        );
        assert!(placement.is_legal());
        let r = route_dcsa(&s, &g, &placement, &wash(), &RouterConfig::paper()).unwrap();

        for i in 0..r.paths.len() {
            for j in (i + 1)..r.paths.len() {
                assert!(
                    !r.paths[i].conflicts_with(&r.paths[j]),
                    "tasks {i} and {j} conflict"
                );
            }
        }
    }

    #[test]
    fn ablation_without_weights_still_routes_conflict_free() {
        let (g, _comps, s, placement) = chain_setup();
        let cfg = RouterConfig {
            wash_aware_weights: false,
            ..RouterConfig::paper()
        };
        let r = route_dcsa(&s, &g, &placement, &wash(), &cfg).unwrap();
        assert_eq!(r.completion(), s.completion_time());
        for i in 0..r.paths.len() {
            for j in (i + 1)..r.paths.len() {
                assert!(!r.paths[i].conflicts_with(&r.paths[j]));
            }
        }
    }

    #[test]
    fn longer_plugs_reserve_longer_tails() {
        let (g, _comps, s, placement) = chain_setup();
        let cfg = RouterConfig {
            plug_cells: 3,
            ..RouterConfig::paper()
        };
        let r = route_dcsa(&s, &g, &placement, &wash(), &cfg).unwrap();
        // Every multi-cell path must end with plug_cells full-window cells.
        for p in &r.paths {
            if p.len() < 4 {
                continue;
            }
            let tail_full = p
                .windows
                .iter()
                .rev()
                .take(3)
                .all(|w| w.length() >= Duration::from_secs(2));
            assert!(tail_full, "tail windows too short: {:?}", p.windows);
        }
    }

    #[test]
    fn walled_in_component_reports_no_ports() {
        // One mixer filling the entire grid: a self-transport (fluid evicted
        // into channel storage and returned) has nowhere to park.
        let mut b = SequencingGraph::builder();
        let o0 = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(2.0));
        let _o1 = b.operation(OperationKind::Mix, Duration::from_secs(4), d_wash(2.0));
        let o2 = b.operation(OperationKind::Mix, Duration::from_secs(3), d_wash(2.0));
        b.edge(o0, o2).unwrap();
        let g = b.build().unwrap();
        let comps = Allocation::new(1, 0, 0, 0).instantiate(&ComponentLibrary::default());
        let s = run_sched(&g, &comps, &wash(), &SchedulerConfig::paper_dcsa()).unwrap();
        assert!(s.transports().len() > 0, "expected a self-transport");
        let placement = Placement::new(
            GridSpec::new(4, 3, 10.0),
            vec![CellRect::new(CellPos::new(0, 0), 4, 3)],
        );
        let r = route_dcsa(&s, &g, &placement, &wash(), &RouterConfig::paper());
        assert!(matches!(r, Err(RouteError::NoPorts { .. })), "{r:?}");
    }

    #[test]
    fn self_transport_parks_at_a_port() {
        let mut b = SequencingGraph::builder();
        let o0 = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(2.0));
        let _o1 = b.operation(OperationKind::Mix, Duration::from_secs(4), d_wash(2.0));
        let o2 = b.operation(OperationKind::Mix, Duration::from_secs(3), d_wash(2.0));
        b.edge(o0, o2).unwrap();
        let g = b.build().unwrap();
        let comps = Allocation::new(1, 0, 0, 0).instantiate(&ComponentLibrary::default());
        let s = run_sched(&g, &comps, &wash(), &SchedulerConfig::paper_dcsa()).unwrap();
        let placement = Placement::new(
            GridSpec::square(10),
            vec![CellRect::new(CellPos::new(3, 3), 4, 3)],
        );
        let r = route_dcsa(&s, &g, &placement, &wash(), &RouterConfig::paper()).unwrap();
        // The evicted fluid parks in a single channel cell next to the mixer.
        let self_task = s.transports().find(|t| t.src == t.dst).unwrap();
        assert_eq!(r.paths[self_task.id.index()].len(), 1);
    }
}
