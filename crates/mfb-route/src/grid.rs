//! The routing grid: per-cell weights, residues and occupancy time slots
//! (the paper's Fig. 7 bookkeeping).
//!
//! Every routable cell carries
//!
//! * a **weight** `w(i)` — initially the constant `w_e`, and after a task
//!   passes, the wash time of that task's residue. Cheap-to-wash cells cost
//!   less in the A* of Eq. (5), so later tasks gravitate towards them,
//!   lengthening shared channel segments and shrinking the chip's total
//!   channel length;
//! * the identity of the **residue** currently contaminating the cell;
//! * a set of **occupancy time slots** `T_i = {(st, et)}` — one interval per
//!   task that transported *or cached* fluid through the cell. Slots are
//!   what make the three conflict classes of §II-C.2 checkable.

use mfb_model::prelude::*;
use mfb_place::prelude::Placement;
use serde::{Deserialize, Serialize};

/// One occupancy slot on a cell: `task` held the cell for `window`
/// (transport plus any channel-cache dwell), leaving the residue of `fluid`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reservation {
    /// The occupying transport task.
    pub task: TaskId,
    /// The fluid moved (identified by its producing operation).
    pub fluid: OpId,
    /// Occupancy window `[st, et)`.
    pub window: Interval,
}

/// One channel wash: before `task` could reuse `cell`, the residue of
/// `residue` had to be flushed for `duration`. The sum of these durations is
/// the paper's Fig. 9 metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelWash {
    /// The cell being washed.
    pub cell: CellPos,
    /// The fluid whose residue is removed.
    pub residue: OpId,
    /// The task that needed the clean cell.
    pub task: TaskId,
    /// Wash duration.
    pub duration: Duration,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CellState {
    /// `w(i)`: wash-time-derived routing weight.
    weight: Duration,
    /// The last fluid that touched the cell, if any.
    residue: Option<OpId>,
    /// When the residue's occupancy ended.
    residue_since: Instant,
    /// Occupancy slots, sorted by `(window.start, window.end, task)` so
    /// [`RoutingGrid::feasible`] can split them around a query window with
    /// one binary search instead of a full scan.
    reservations: Vec<Reservation>,
}

/// The routing grid for one placement: blocked component interiors plus the
/// per-cell state of Fig. 7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingGrid {
    spec: GridSpec,
    /// Component occupying each cell, if any (component interiors are not
    /// routable).
    blocked: Vec<Option<ComponentId>>,
    /// Cells orthogonally adjacent to some component rectangle — the access
    /// rings through which every port connection must pass. Through-traffic
    /// is taxed on these cells and cached plugs may not park on a foreign
    /// component's ring, keeping component access unobstructed.
    ring: Vec<bool>,
    /// Cells permanently unusable per the chip's defect map — treated as
    /// infinite-cost (never routable), independent of component occupancy.
    defect: Vec<bool>,
    /// Extra per-cell routing weight for degraded-but-usable cells.
    penalty: Vec<Duration>,
    cells: Vec<CellState>,
    /// Initial cell weight `w_e`.
    w_e: Duration,
}

impl RoutingGrid {
    /// Builds the grid for `placement`, blocking every component interior.
    /// `w_e` is the initial weight of every cell (paper default 10 s).
    pub fn new(placement: &Placement, w_e: Duration) -> Self {
        RoutingGrid::new_with_defects(placement, w_e, &DefectMap::pristine())
    }

    /// [`RoutingGrid::new`] on a damaged chip: blocked cells of `defects`
    /// are permanently unroutable (∞ cost — [`is_routable`] is `false`, so
    /// neither the A* nor the baseline router will ever enter them) and
    /// degraded cells carry their extra weight on top of `w(i)`.
    ///
    /// [`is_routable`]: Self::is_routable
    pub fn new_with_defects(placement: &Placement, w_e: Duration, defects: &DefectMap) -> Self {
        let spec = placement.grid();
        let n = spec.cell_count() as usize;
        let mut blocked = vec![None; n];
        for (i, &rect) in placement.rects().iter().enumerate() {
            for cell in rect.cells() {
                blocked[spec.index(cell)] = Some(ComponentId::new(i as u32));
            }
        }
        let mut ring = vec![false; n];
        for y in 0..spec.height {
            for x in 0..spec.width {
                let cell = CellPos::new(x, y);
                if blocked[spec.index(cell)].is_some() {
                    continue;
                }
                if cell
                    .neighbours(spec.width, spec.height)
                    .any(|nb| blocked[spec.index(nb)].is_some())
                {
                    ring[spec.index(cell)] = true;
                }
            }
        }
        let mut defect = vec![false; n];
        for &cell in defects.blocked_cells() {
            if spec.contains(cell) {
                defect[spec.index(cell)] = true;
            }
        }
        let mut penalty = vec![Duration::ZERO; n];
        for p in defects.penalties() {
            if spec.contains(p.cell) {
                penalty[spec.index(p.cell)] = Duration::from_secs(u64::from(p.extra_weight));
            }
        }
        RoutingGrid {
            spec,
            blocked,
            ring,
            defect,
            penalty,
            cells: vec![
                CellState {
                    weight: w_e,
                    residue: None,
                    residue_since: Instant::ZERO,
                    reservations: Vec::new(),
                };
                n
            ],
            w_e,
        }
    }

    /// The grid geometry.
    #[inline]
    pub fn spec(&self) -> GridSpec {
        self.spec
    }

    /// The configured initial weight `w_e`.
    #[inline]
    pub fn w_e(&self) -> Duration {
        self.w_e
    }

    /// `true` when `cell` is routable (inside the grid, not a component
    /// interior, and not a blocked defect cell).
    #[inline]
    pub fn is_routable(&self, cell: CellPos) -> bool {
        self.spec.contains(cell)
            && self.blocked[self.spec.index(cell)].is_none()
            && !self.defect[self.spec.index(cell)]
    }

    /// `true` when `cell` is marked permanently unusable by the defect map.
    #[inline]
    pub fn is_defect(&self, cell: CellPos) -> bool {
        self.defect[self.spec.index(cell)]
    }

    /// The component occupying `cell`, if any.
    #[inline]
    pub fn component_at(&self, cell: CellPos) -> Option<ComponentId> {
        self.blocked[self.spec.index(cell)]
    }

    /// `true` when `cell` belongs to some component's access ring (it is
    /// routable and orthogonally adjacent to a component rectangle).
    #[inline]
    pub fn is_ring(&self, cell: CellPos) -> bool {
        self.ring[self.spec.index(cell)]
    }

    /// The current routing weight `w(i)` of `cell`, including any
    /// degraded-cell penalty from the defect map.
    #[inline]
    pub fn weight(&self, cell: CellPos) -> Duration {
        let i = self.spec.index(cell);
        self.cells[i].weight + self.penalty[i]
    }

    /// The residue currently contaminating `cell`.
    #[inline]
    pub fn residue(&self, cell: CellPos) -> Option<OpId> {
        self.cells[self.spec.index(cell)].residue
    }

    /// The occupancy slots of `cell`, sorted by window start (then end,
    /// then task).
    pub fn reservations(&self, cell: CellPos) -> &[Reservation] {
        &self.cells[self.spec.index(cell)].reservations
    }

    /// Checks whether fluid `fluid` may occupy `cell` during `window`,
    /// given wash times from `wash` (Eq. (5)'s feasibility conditions plus
    /// the wash-before-use rule):
    ///
    /// 1. no existing slot of a **different** fluid overlaps `window`
    ///    (conflict classes 1 and 2). Aliquots of the *same* fluid may
    ///    share a cell simultaneously — physically one plug splitting at a
    ///    junction, with identical composition throughout;
    /// 2. the most recent residue before `window` can be washed away in the
    ///    gap — unless it is the *same* fluid, which needs no wash
    ///    (conflict class 3);
    /// 3. symmetric: our own residue can be washed before the next
    ///    already-booked slot after `window` begins.
    pub fn feasible(
        &self,
        cell: CellPos,
        window: Interval,
        fluid: OpId,
        wash_of: impl Fn(OpId) -> Duration,
    ) -> bool {
        if !self.is_routable(cell) {
            return false;
        }
        let state = &self.cells[self.spec.index(cell)];
        // Reservations are sorted by window start, so one binary search
        // splits them around the query: everything at or past `split`
        // starts at/after `window.end` — never overlapping, and exactly the
        // `earliest_after` candidates, of which the first (minimal start)
        // wins. The prefix holds every possible overlap and, among its
        // non-overlapping slots (`end <= window.start`), the
        // `latest_before` candidates. Ties on start/end imply mutually
        // overlapping slots, which the overlap rule forces to carry the
        // same fluid, so tie-breaking cannot change the decision — this
        // split is decision-identical to the historical full scan.
        let rs = &state.reservations;
        let split = rs.partition_point(|r| r.window.start < window.end);
        let mut latest_before: Option<&Reservation> = None;
        for r in &rs[..split] {
            if r.window.overlaps(window) {
                if r.fluid == fluid {
                    continue;
                }
                return false;
            }
            if latest_before.map_or(true, |b| r.window.end > b.window.end) {
                latest_before = Some(r);
            }
        }
        let earliest_after = rs[split..].first();
        if let Some(prev) = latest_before {
            if prev.fluid != fluid && prev.window.end + wash_of(prev.fluid) > window.start {
                return false;
            }
        }
        if let Some(next) = earliest_after {
            if next.fluid != fluid && window.end + wash_of(fluid) > next.window.start {
                return false;
            }
        }
        true
    }

    /// Books `window` on `cell` for `task` carrying `fluid`, updating the
    /// cell weight to the residue's wash time (Fig. 7) and returning the
    /// [`ChannelWash`] incurred by flushing the previous residue, if any.
    ///
    /// Call only after [`feasible`](Self::feasible); this method does not
    /// re-check.
    pub fn reserve(
        &mut self,
        cell: CellPos,
        task: TaskId,
        fluid: OpId,
        window: Interval,
        wash_of: impl Fn(OpId) -> Duration,
    ) -> Option<ChannelWash> {
        let idx = self.spec.index(cell);
        let state = &mut self.cells[idx];
        let wash = match state.residue {
            Some(prev) if prev != fluid && state.residue_since <= window.start => {
                Some(ChannelWash {
                    cell,
                    residue: prev,
                    task,
                    duration: wash_of(prev),
                })
            }
            _ => None,
        };
        let slot = Reservation {
            task,
            fluid,
            window,
        };
        // Keep the slots sorted by (start, end, task); see `CellState`.
        let key = (window.start, window.end, task);
        let at = state
            .reservations
            .partition_point(|r| (r.window.start, r.window.end, r.task) <= key);
        state.reservations.insert(at, slot);
        // Track the latest residue on the cell.
        if window.end >= state.residue_since {
            state.residue = Some(fluid);
            state.residue_since = window.end;
            state.weight = wash_of(fluid);
        }
        wash
    }

    /// Removes every reservation held by `task`, restoring each affected
    /// cell's residue and weight from the reservations that remain. Used by
    /// the rip-up-and-reroute fallback.
    pub fn unreserve(&mut self, task: TaskId, wash_of: impl Fn(OpId) -> Duration) {
        for state in &mut self.cells {
            let before = state.reservations.len();
            state.reservations.retain(|r| r.task != task);
            if state.reservations.len() == before {
                continue;
            }
            match state.reservations.iter().max_by_key(|r| r.window.end) {
                Some(last) => {
                    state.residue = Some(last.fluid);
                    state.residue_since = last.window.end;
                    state.weight = wash_of(last.fluid);
                }
                None => {
                    state.residue = None;
                    state.residue_since = Instant::ZERO;
                    state.weight = self.w_e;
                }
            }
        }
    }

    /// All cells ever reserved by any task — the physical flow channels.
    /// Their count times the grid pitch is Table I's *total channel length*.
    pub fn used_cells(&self) -> impl Iterator<Item = CellPos> + '_ {
        let w = self.spec.width;
        self.cells.iter().enumerate().filter_map(move |(i, c)| {
            if c.reservations.is_empty() {
                None
            } else {
                Some(CellPos::new(i as u32 % w, i as u32 / w))
            }
        })
    }

    /// Number of distinct cells used by any routed task.
    pub fn used_cell_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| !c.reservations.is_empty())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfb_place::prelude::Placement;

    fn placement() -> Placement {
        Placement::new(
            GridSpec::square(12),
            vec![
                CellRect::new(CellPos::new(1, 1), 3, 2),
                CellRect::new(CellPos::new(8, 8), 2, 2),
            ],
        )
    }

    fn wash2(_: OpId) -> Duration {
        Duration::from_secs(2)
    }

    fn iv(a: u64, b: u64) -> Interval {
        Interval::new(Instant::from_secs(a), Instant::from_secs(b))
    }

    #[test]
    fn component_interiors_are_blocked() {
        let g = RoutingGrid::new(&placement(), Duration::from_secs(10));
        assert!(!g.is_routable(CellPos::new(1, 1)));
        assert!(!g.is_routable(CellPos::new(3, 2)));
        assert_eq!(
            g.component_at(CellPos::new(2, 1)),
            Some(ComponentId::new(0))
        );
        assert!(g.is_routable(CellPos::new(0, 0)));
        assert!(g.is_routable(CellPos::new(4, 1)));
        assert!(
            !g.is_routable(CellPos::new(12, 0)),
            "off-grid is unroutable"
        );
    }

    #[test]
    fn defect_cells_are_unroutable_and_penalties_add_weight() {
        let mut defects = DefectMap::pristine();
        defects.block_cell(CellPos::new(5, 5));
        defects.penalize_cell(CellPos::new(6, 6), 4);
        let g = RoutingGrid::new_with_defects(&placement(), Duration::from_secs(10), &defects);
        assert!(!g.is_routable(CellPos::new(5, 5)));
        assert!(g.is_defect(CellPos::new(5, 5)));
        assert!(g.is_routable(CellPos::new(6, 6)));
        assert_eq!(g.weight(CellPos::new(6, 6)), Duration::from_secs(14));
        assert_eq!(g.weight(CellPos::new(7, 7)), Duration::from_secs(10));
        // Feasibility honors the defect mask too.
        assert!(!g.feasible(CellPos::new(5, 5), iv(0, 10), OpId::new(0), wash2));
    }

    #[test]
    fn initial_weight_is_w_e() {
        let g = RoutingGrid::new(&placement(), Duration::from_secs(10));
        assert_eq!(g.weight(CellPos::new(0, 0)), Duration::from_secs(10));
        assert_eq!(g.w_e(), Duration::from_secs(10));
    }

    #[test]
    fn overlapping_windows_are_infeasible() {
        let mut g = RoutingGrid::new(&placement(), Duration::from_secs(10));
        let cell = CellPos::new(5, 5);
        let f0 = OpId::new(0);
        let f1 = OpId::new(1);
        assert!(g.feasible(cell, iv(0, 10), f0, wash2));
        g.reserve(cell, TaskId::new(0), f0, iv(0, 10), wash2);
        assert!(!g.feasible(cell, iv(5, 12), f1, wash2));
        assert!(!g.feasible(cell, iv(0, 10), f1, wash2));
    }

    #[test]
    fn wash_gap_is_enforced_after_previous_use() {
        let mut g = RoutingGrid::new(&placement(), Duration::from_secs(10));
        let cell = CellPos::new(5, 5);
        let f0 = OpId::new(0);
        let f1 = OpId::new(1);
        g.reserve(cell, TaskId::new(0), f0, iv(0, 10), wash2);
        // Needs 2 s of wash after t=10: t=11 start is too early, t=12 fine.
        assert!(!g.feasible(cell, iv(11, 14), f1, wash2));
        assert!(g.feasible(cell, iv(12, 14), f1, wash2));
        // Same fluid needs no wash.
        assert!(g.feasible(cell, iv(10, 14), f0, wash2));
    }

    #[test]
    fn wash_gap_is_enforced_before_future_use() {
        let mut g = RoutingGrid::new(&placement(), Duration::from_secs(10));
        let cell = CellPos::new(5, 5);
        let f0 = OpId::new(0);
        let f1 = OpId::new(1);
        g.reserve(cell, TaskId::new(0), f0, iv(20, 30), wash2);
        // Our residue must wash before t=20: end by 18.
        assert!(g.feasible(cell, iv(10, 18), f1, wash2));
        assert!(!g.feasible(cell, iv(10, 19), f1, wash2));
    }

    #[test]
    fn reserve_updates_weight_and_reports_wash() {
        let mut g = RoutingGrid::new(&placement(), Duration::from_secs(10));
        let cell = CellPos::new(5, 5);
        let f0 = OpId::new(0);
        let f1 = OpId::new(1);
        let none = g.reserve(cell, TaskId::new(0), f0, iv(0, 10), wash2);
        assert!(none.is_none(), "fresh cell needs no wash");
        assert_eq!(g.weight(cell), Duration::from_secs(2));
        assert_eq!(g.residue(cell), Some(f0));

        let w = g
            .reserve(cell, TaskId::new(1), f1, iv(12, 15), wash2)
            .expect("dirty cell must be washed");
        assert_eq!(w.residue, f0);
        assert_eq!(w.duration, Duration::from_secs(2));
        assert_eq!(g.residue(cell), Some(f1));
    }

    #[test]
    fn same_fluid_reuse_needs_no_wash() {
        let mut g = RoutingGrid::new(&placement(), Duration::from_secs(10));
        let cell = CellPos::new(5, 5);
        let f0 = OpId::new(0);
        g.reserve(cell, TaskId::new(0), f0, iv(0, 10), wash2);
        let w = g.reserve(cell, TaskId::new(1), f0, iv(10, 12), wash2);
        assert!(w.is_none());
    }

    #[test]
    fn used_cells_counts_distinct() {
        let mut g = RoutingGrid::new(&placement(), Duration::from_secs(10));
        let f0 = OpId::new(0);
        g.reserve(CellPos::new(5, 5), TaskId::new(0), f0, iv(0, 5), wash2);
        g.reserve(CellPos::new(5, 6), TaskId::new(0), f0, iv(0, 5), wash2);
        g.reserve(CellPos::new(5, 5), TaskId::new(1), f0, iv(7, 9), wash2);
        assert_eq!(g.used_cell_count(), 2);
        let used: Vec<_> = g.used_cells().collect();
        assert!(used.contains(&CellPos::new(5, 5)));
        assert!(used.contains(&CellPos::new(5, 6)));
    }
}
