//! The baseline's *construction-by-correction* routing.
//!
//! The paper compares against a direct way of dropping DCSA into existing
//! physical-design frameworks: construct an initial solution with no regard
//! for transportation conflicts, then fix what breaks, task by task. This
//! module implements that: every task first gets a plain shortest path
//! (phase 1); a correction pass (phase 2) then walks the operations in
//! scheduled order and, wherever a task's path collides with an existing
//! reservation or an unwashed residue, either re-routes it around the
//! conflict or **postpones** it until the offending channel is free and
//! clean — the paper's "the latter has to be postponed since it takes 10 s
//! to wash the residue left by the first task".
//!
//! Postponements cascade: a delayed transport delays its consuming
//! operation, every later operation on the same components, and ultimately
//! the assay. The returned [`Routing::realized`] times carry those delays,
//! which is where the baseline loses Table I's execution-time comparison.

use crate::astar::{find_path_with, AstarOptions, SearchScratch};
use crate::error::RouteError;
use crate::grid::RoutingGrid;
use crate::router::{ports, RealizedTimes, RoutedPath, RouterConfig, Routing};
use mfb_model::prelude::*;
use mfb_place::prelude::Placement;
use mfb_sched::prelude::*;

/// Postponement probing step: the correction scans forward in whole
/// seconds.
const STEP: Duration = Duration::from_secs(1);

/// Maximum postponement per task before the correction gives up.
const MAX_POSTPONE: Duration = Duration::from_secs(3600);

/// Routes `schedule` with the baseline's construction-by-correction
/// strategy (see module docs). Uses **unweighted** shortest paths — the
/// baseline has no wash-aware channel-sharing bias.
///
/// # Errors
///
/// [`RouteError::NoPorts`] for walled-in components and
/// [`RouteError::CorrectionDiverged`] when a task cannot be placed within
/// the postponement budget.
pub fn route_corrected(
    schedule: &Schedule,
    graph: &SequencingGraph,
    placement: &Placement,
    wash: &dyn WashModel,
    config: &RouterConfig,
) -> Result<Routing, RouteError> {
    route_corrected_with_defects(
        schedule,
        graph,
        placement,
        wash,
        config,
        &DefectMap::pristine(),
    )
}

/// [`route_corrected`] on a damaged chip: both the conflict-blind phase-1
/// paths and every phase-2 correction avoid the defect map's blocked cells.
/// With a pristine map this is exactly the plain baseline.
///
/// # Errors
///
/// Same as [`route_corrected`].
pub fn route_corrected_with_defects(
    schedule: &Schedule,
    graph: &SequencingGraph,
    placement: &Placement,
    wash: &dyn WashModel,
    config: &RouterConfig,
    defects: &DefectMap,
) -> Result<Routing, RouteError> {
    let wash_of = |op: OpId| wash.wash_time(graph.op(op).output_diffusion());
    let options = AstarOptions { use_weights: false };
    let mut grid = RoutingGrid::new_with_defects(placement, config.w_e, defects);
    // One search arena for every A* query this routing makes.
    let mut scratch = SearchScratch::new();

    // ---- Phase 1: construct initial shortest paths, conflict-blind. ----
    let task_count = schedule.transports().len();
    let mut initial: Vec<Vec<CellPos>> = vec![Vec::new(); task_count];
    {
        let pristine = RoutingGrid::new_with_defects(placement, config.w_e, defects);
        for t in schedule.transports() {
            let src = ports(placement, &pristine, t.src);
            if src.is_empty() {
                return Err(RouteError::NoPorts { component: t.src });
            }
            let dst = ports(placement, &pristine, t.dst);
            if dst.is_empty() {
                return Err(RouteError::NoPorts { component: t.dst });
            }
            // An un-reserved grid accepts any window: this is a pure
            // shortest-path query.
            let window = t.occupancy();
            initial[t.id.index()] = find_path_with(
                &mut scratch,
                &pristine,
                &src,
                &dst,
                |_| window,
                t.fluid,
                wash_of,
                options,
            )
            .ok_or(RouteError::Unroutable { task: t.id })?;
        }
    }

    // ---- Phase 2: correction, operation by operation. ----
    let mut op_delay = vec![Duration::ZERO; graph.len()];
    let mut comp_extra = vec![Duration::ZERO; placement.len()];
    let mut final_paths: Vec<Option<RoutedPath>> = vec![None; task_count];

    let mut op_order: Vec<OpId> = graph.op_ids().collect();
    op_order.sort_by_key(|&o| (schedule.op(o).start, o));

    for &op in &op_order {
        let sch = *schedule.op(op);
        let tasks: Vec<&TransportTask> = {
            let mut ts: Vec<_> = schedule.transports().filter(|t| t.consumer == op).collect();
            ts.sort_by_key(|t| (t.depart, t.id));
            ts
        };

        // Lower bound on this operation's delay: its component's inherited
        // shift and every parent's delay (covers in-place deliveries).
        let mut delay = comp_extra[sch.component.index()];
        for &p in graph.parents(op) {
            delay = delay.max(op_delay[p.index()]);
        }

        let mut postpone = vec![Duration::ZERO; tasks.len()];
        let mut committed: Option<(RoutingGrid, Vec<RoutedPath>)> = None;
        'fixed_point: for _pass in 0..1000 {
            let mut trial = grid.clone();
            let mut trial_paths = Vec::new();
            let consumed = sch.start + delay;
            let mut grew = false;

            for (k, t) in tasks.iter().enumerate() {
                let shift_parent = op_delay[t.fluid.index()];
                let depart0 = t.depart + shift_parent;
                let src = ports(placement, &trial, t.src);
                let dst = ports(placement, &trial, t.dst);
                if src.is_empty() {
                    return Err(RouteError::NoPorts { component: t.src });
                }
                if dst.is_empty() {
                    return Err(RouteError::NoPorts { component: t.dst });
                }

                let mut chosen: Option<(Vec<CellPos>, Vec<Interval>)> = None;
                while chosen.is_none() {
                    if postpone[k] > MAX_POSTPONE {
                        return Err(RouteError::CorrectionDiverged { task: t.id });
                    }
                    let depart = depart0 + postpone[k];
                    let end = consumed.max(depart + schedule.t_c);
                    let transport = Interval::new(depart, depart + schedule.t_c);
                    let full = Interval::new(depart, end);
                    // Keep the constructed path if it still works: its tail
                    // hosts the parked plug, the rest only transits.
                    let init = &initial[t.id.index()];
                    let plug = (config.plug_cells.max(1) as usize).min(init.len());
                    let tail_start = init.len() - plug;
                    let init_ok = init.iter().enumerate().all(|(i, &c)| {
                        let w = if i >= tail_start { full } else { transport };
                        trial.feasible(c, w, t.fluid, wash_of)
                    });
                    if init_ok {
                        let windows = (0..init.len())
                            .map(|i| if i >= tail_start { full } else { transport })
                            .collect();
                        chosen = Some((init.clone(), windows));
                        break;
                    }
                    // ...otherwise correct it by re-routing around the
                    // conflict...
                    if let Some(found) = crate::router::find_parked_path(
                        &mut scratch,
                        &trial,
                        &src,
                        &dst,
                        transport,
                        full,
                        config.plug_cells,
                        t.fluid,
                        wash_of,
                        options,
                    )
                    .or_else(|| {
                        // Same two-leg constraint as the main router: the
                        // stay must cover both transport legs.
                        if full.length() >= schedule.t_c * 2 {
                            crate::router::find_remote_parking(
                                &mut scratch,
                                &trial,
                                &src,
                                &dst,
                                transport,
                                full,
                                t.fluid,
                                wash_of,
                                options,
                            )
                        } else {
                            None
                        }
                    }) {
                        chosen = Some(found);
                        break;
                    }
                    // ...and as a last resort postpone the transport.
                    postpone[k] += STEP;
                }

                // The while loop above only exits with `chosen` set or by
                // returning an error; keep a typed escape hatch anyway.
                let Some((path, windows)) = chosen else {
                    return Err(RouteError::CorrectionDiverged { task: t.id });
                };
                for (&cell, &window) in path.iter().zip(&windows) {
                    trial.reserve(cell, t.id, t.fluid, window, wash_of);
                }
                trial_paths.push(RoutedPath {
                    task: t.id,
                    fluid: t.fluid,
                    cells: path,
                    windows,
                });

                let needed = shift_parent + postpone[k];
                if needed > delay {
                    delay = needed;
                    grew = true;
                }
            }

            if !grew {
                committed = Some((trial, trial_paths));
                break 'fixed_point;
            }
        }
        let (trial, trial_paths) = committed.ok_or_else(|| RouteError::CorrectionDiverged {
            task: tasks.first().map_or(TaskId::new(0), |t| t.id),
        })?;
        grid = trial;
        for p in trial_paths {
            let id = p.task;
            final_paths[id.index()] = Some(p);
        }

        op_delay[op.index()] = delay;
        let c = sch.component.index();
        comp_extra[c] = comp_extra[c].max(delay);
        for (k, t) in tasks.iter().enumerate() {
            let src = t.src.index();
            let shift = op_delay[t.fluid.index()] + postpone[k];
            comp_extra[src] = comp_extra[src].max(shift);
        }
    }

    let realized = RealizedTimes {
        start: schedule
            .ops()
            .map(|s| s.start + op_delay[s.op.index()])
            .collect(),
        end: schedule
            .ops()
            .map(|s| s.end + op_delay[s.op.index()])
            .collect(),
    };

    // Fig. 9 accounting: reconstruct washes from the final reservations,
    // exactly as the conflict-aware router does, so the two flows' wash
    // totals are directly comparable.
    let washes = crate::router::collect_washes(&grid, wash_of);

    // A transport whose consumer matches no scheduled operation is never
    // visited by the correction walk; that is a malformed schedule, not a
    // routing failure — surface it as a typed error instead of panicking.
    let mut paths = Vec::with_capacity(final_paths.len());
    for (i, p) in final_paths.into_iter().enumerate() {
        paths.push(p.ok_or(RouteError::InconsistentSchedule {
            task: TaskId::new(i as u32),
        })?);
    }

    Ok(Routing {
        paths,
        channel_washes: washes,
        realized,
        grid: grid.spec(),
        used_cells: grid.used_cell_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::route_dcsa;

    use mfb_sched::list::{schedule as run_sched, SchedulerConfig};

    fn d_wash(secs: f64) -> DiffusionCoefficient {
        LogLinearWash::paper_calibrated().coefficient_for(Duration::from_secs_f64(secs))
    }

    fn wash() -> LogLinearWash {
        LogLinearWash::paper_calibrated()
    }

    fn two_chain_setup() -> (SequencingGraph, ComponentSet, Schedule, Placement) {
        let mut b = SequencingGraph::builder();
        let m0 = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(8.0));
        let h0 = b.operation(OperationKind::Heat, Duration::from_secs(3), d_wash(1.0));
        let m1 = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(6.0));
        let h1 = b.operation(OperationKind::Heat, Duration::from_secs(3), d_wash(1.0));
        b.edge(m0, h0).unwrap();
        b.edge(m1, h1).unwrap();
        let g = b.build().unwrap();
        let comps = Allocation::new(2, 2, 0, 0).instantiate(&ComponentLibrary::default());
        let s = run_sched(&g, &comps, &wash(), &SchedulerConfig::paper_baseline()).unwrap();
        let placement = Placement::new(
            GridSpec::square(18),
            vec![
                CellRect::new(CellPos::new(1, 1), 4, 3),
                CellRect::new(CellPos::new(1, 8), 4, 3),
                CellRect::new(CellPos::new(10, 1), 3, 2),
                CellRect::new(CellPos::new(10, 8), 3, 2),
            ],
        );
        (g, comps, s, placement)
    }

    #[test]
    fn corrected_routing_covers_all_tasks() {
        let (g, _c, s, p) = two_chain_setup();
        let r = route_corrected(&s, &g, &p, &wash(), &RouterConfig::paper()).unwrap();
        assert_eq!(r.paths.len(), s.transports().len());
        for path in &r.paths {
            assert!(!path.is_empty());
            for w in path.cells.windows(2) {
                assert_eq!(w[0].manhattan(w[1]), 1);
            }
        }
    }

    #[test]
    fn uncongested_layout_needs_no_delay() {
        let (g, _c, s, p) = two_chain_setup();
        let r = route_corrected(&s, &g, &p, &wash(), &RouterConfig::paper()).unwrap();
        assert_eq!(r.completion(), s.completion_time());
        assert_eq!(r.total_delay(&s), Duration::ZERO);
    }

    #[test]
    fn realized_windows_never_conflict() {
        let (g, _c, s, p) = two_chain_setup();
        let r = route_corrected(&s, &g, &p, &wash(), &RouterConfig::paper()).unwrap();
        // Re-check pairwise: tasks with overlapping realized windows share
        // no cell.
        for i in 0..r.paths.len() {
            for j in (i + 1)..r.paths.len() {
                assert!(
                    !r.paths[i].conflicts_with(&r.paths[j]),
                    "tasks {i} and {j} conflict"
                );
            }
        }
    }

    #[test]
    fn congestion_forces_postponement_or_detour() {
        // Funnel layout: a 1-cell-wide corridor between two halves of the
        // chip forces the two concurrent transports through the same cells.
        let mut b = SequencingGraph::builder();
        let m0 = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(8.0));
        let h0 = b.operation(OperationKind::Heat, Duration::from_secs(3), d_wash(1.0));
        let m1 = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(6.0));
        let h1 = b.operation(OperationKind::Heat, Duration::from_secs(3), d_wash(1.0));
        b.edge(m0, h0).unwrap();
        b.edge(m1, h1).unwrap();
        let g = b.build().unwrap();
        let comps = Allocation::new(2, 2, 0, 0).instantiate(&ComponentLibrary::default());
        let s = run_sched(&g, &comps, &wash(), &SchedulerConfig::paper_baseline()).unwrap();
        // Mixers on the left, heaters on the right, with walls leaving a
        // single corridor row at y = 6.
        let placement = Placement::new(
            GridSpec::new(20, 13, 10.0),
            vec![
                CellRect::new(CellPos::new(0, 0), 4, 3),
                CellRect::new(CellPos::new(0, 9), 4, 3),
                CellRect::new(CellPos::new(16, 0), 3, 2),
                CellRect::new(CellPos::new(16, 10), 3, 2),
                // Walls: abuse two extra "components" as blockages.
            ],
        );
        // Block the middle with a fake wall by reserving through a grid is
        // not exposed; instead narrow the grid so both transports overlap
        // heavily on the only short corridor — with a 20x13 grid and both
        // windows identical, disjoint detours exist, so just assert the
        // corrected routing stays conflict-free and completes.
        let r = route_corrected(&s, &g, &placement, &wash(), &RouterConfig::paper()).unwrap();
        for i in 0..r.paths.len() {
            for j in (i + 1)..r.paths.len() {
                assert!(!r.paths[i].conflicts_with(&r.paths[j]));
            }
        }
        assert!(r.completion() >= s.completion_time());
    }

    #[test]
    fn baseline_uses_at_least_as_much_channel_as_dcsa_router() {
        // The wash-aware weights make the DCSA router share channels; the
        // unweighted baseline tends to spread. Compare distinct cells used
        // on the same schedule and placement.
        let (g, _c, s, p) = two_chain_setup();
        let ours = route_dcsa(&s, &g, &p, &wash(), &RouterConfig::paper()).unwrap();
        let ba = route_corrected(&s, &g, &p, &wash(), &RouterConfig::paper()).unwrap();
        // Not a theorem on one tiny instance, but sharing can only help:
        // allow equality and a small slack.
        assert!(
            ours.used_cells <= ba.used_cells + 4,
            "ours {} vs ba {}",
            ours.used_cells,
            ba.used_cells
        );
    }

    #[test]
    fn corrected_routing_is_deterministic() {
        let (g, _c, s, p) = two_chain_setup();
        let a = route_corrected(&s, &g, &p, &wash(), &RouterConfig::paper()).unwrap();
        let b = route_corrected(&s, &g, &p, &wash(), &RouterConfig::paper()).unwrap();
        assert_eq!(a, b);
    }
}
