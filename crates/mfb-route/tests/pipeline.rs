//! End-to-end schedule → place → route on the Table-I benchmarks.
//!
//! Routing feasibility depends on the placement: a layout can box a
//! destination in with wash shadows exactly when a transport needs through.
//! The full flow in `mfb-core` retries placement seeds with routing
//! feedback; these tests mirror that loop in miniature.

use mfb_bench_suite::table1_benchmarks;
use mfb_model::prelude::*;
use mfb_place::prelude::*;
use mfb_route::prelude::*;
use mfb_sched::prelude::*;

fn wash() -> LogLinearWash {
    LogLinearWash::paper_calibrated()
}

/// Places with successive seeds until the DCSA router succeeds.
fn place_and_route(
    graph: &SequencingGraph,
    comps: &ComponentSet,
    s: &Schedule,
) -> Option<(Placement, Routing)> {
    let nets = NetList::build(s, graph, &wash(), 0.6, 0.4);
    for seed in 0..24u64 {
        let cfg = SaConfig::paper().with_seed(0xD1CE + seed);
        let placement = place_sa_auto(comps, &nets, &cfg).ok()?;
        if let Ok(routing) = route_dcsa(s, graph, &placement, &wash(), &RouterConfig::paper()) {
            return Some((placement, routing));
        }
    }
    None
}

#[test]
fn dcsa_pipeline_routes_every_benchmark_without_delay() {
    let lib = ComponentLibrary::default();
    for b in table1_benchmarks() {
        let comps = b.components(&lib);
        let s = schedule(&b.graph, &comps, &wash(), &SchedulerConfig::paper_dcsa()).unwrap();
        let (_placement, routing) = place_and_route(&b.graph, &comps, &s)
            .unwrap_or_else(|| panic!("{}: no routable placement in 24 seeds", b.name));
        assert_eq!(
            routing.completion(),
            s.completion_time(),
            "{}: DCSA routing must not delay",
            b.name
        );
        assert_eq!(routing.paths.len(), s.transports().len());
    }
}

#[test]
fn baseline_pipeline_routes_every_benchmark() {
    let lib = ComponentLibrary::default();
    for b in table1_benchmarks() {
        let comps = b.components(&lib);
        let s = schedule(
            &b.graph,
            &comps,
            &wash(),
            &SchedulerConfig::paper_baseline(),
        )
        .unwrap();
        let nets = NetList::build(&s, &b.graph, &wash(), 0.6, 0.4);
        let grid = auto_grid(&comps);
        let placement = place_constructive(&comps, &nets, grid).unwrap();
        let routing = route_corrected(&s, &b.graph, &placement, &wash(), &RouterConfig::paper())
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert!(routing.completion() >= s.completion_time());
        assert_eq!(routing.paths.len(), s.transports().len());
    }
}

#[test]
fn routed_benchmarks_are_conflict_free() {
    let lib = ComponentLibrary::default();
    for b in table1_benchmarks() {
        let comps = b.components(&lib);
        let s = schedule(&b.graph, &comps, &wash(), &SchedulerConfig::paper_dcsa()).unwrap();
        let Some((_p, r)) = place_and_route(&b.graph, &comps, &s) else {
            panic!("{}: unroutable", b.name);
        };
        for i in 0..r.paths.len() {
            for j in (i + 1)..r.paths.len() {
                assert!(
                    !r.paths[i].conflicts_with(&r.paths[j]),
                    "{}: tasks {i} and {j} conflict",
                    b.name
                );
            }
        }
    }
}
