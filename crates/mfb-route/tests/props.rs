//! Property-based tests for the routing grid and path search.

use mfb_model::prelude::*;
use mfb_place::prelude::Placement;
use mfb_route::prelude::*;
use proptest::prelude::*;

fn wash_secs(secs: u64) -> impl Fn(OpId) -> Duration + Copy {
    move |_| Duration::from_secs(secs)
}

fn arb_interval() -> impl Strategy<Value = Interval> {
    (0u64..500, 1u64..60)
        .prop_map(|(s, l)| Interval::new(Instant::from_secs(s), Instant::from_secs(s + l)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Whatever sequence of reservations is accepted cell-by-cell, no two
    /// different fluids may end up with overlapping windows.
    #[test]
    fn accepted_reservations_never_overlap(
        reservations in proptest::collection::vec(
            (arb_interval(), 0u32..6), 0..40
        )
    ) {
        let placement = Placement::new(GridSpec::square(4), vec![]);
        let mut grid = RoutingGrid::new(&placement, Duration::from_secs(10));
        let cell = CellPos::new(1, 1);
        let wash = wash_secs(2);
        for (i, (window, fluid_idx)) in reservations.into_iter().enumerate() {
            let fluid = OpId::new(fluid_idx);
            if grid.feasible(cell, window, fluid, wash) {
                grid.reserve(cell, TaskId::new(i as u32), fluid, window, wash);
            }
        }
        let booked = grid.reservations(cell);
        for i in 0..booked.len() {
            for j in (i + 1)..booked.len() {
                let (a, b) = (&booked[i], &booked[j]);
                if a.fluid != b.fluid {
                    prop_assert!(
                        !a.window.overlaps(b.window),
                        "{:?} vs {:?}", a, b
                    );
                }
            }
        }
    }

    /// Wash gaps hold between consecutive different-fluid uses of a cell.
    #[test]
    fn accepted_reservations_respect_wash_gaps(
        reservations in proptest::collection::vec(
            (arb_interval(), 0u32..6), 0..40
        ),
        wash_time in 1u64..8,
    ) {
        let placement = Placement::new(GridSpec::square(4), vec![]);
        let mut grid = RoutingGrid::new(&placement, Duration::from_secs(10));
        let cell = CellPos::new(2, 2);
        let wash = wash_secs(wash_time);
        for (i, (window, fluid_idx)) in reservations.into_iter().enumerate() {
            let fluid = OpId::new(fluid_idx);
            if grid.feasible(cell, window, fluid, wash) {
                grid.reserve(cell, TaskId::new(i as u32), fluid, window, wash);
            }
        }
        let mut booked: Vec<_> = grid.reservations(cell).to_vec();
        booked.sort_by_key(|r| r.window.start);
        for pair in booked.windows(2) {
            if pair[0].fluid != pair[1].fluid {
                prop_assert!(
                    pair[0].window.end + Duration::from_secs(wash_time)
                        <= pair[1].window.start,
                    "wash gap violated: {:?} then {:?}", pair[0], pair[1]
                );
            }
        }
    }

    /// Paths returned by the search are contiguous, routable, within the
    /// grid, and feasible on every cell.
    #[test]
    fn found_paths_are_well_formed(
        sx in 0u32..12, sy in 0u32..12,
        tx in 0u32..12, ty in 0u32..12,
        obstacle_x in 0u32..9, obstacle_y in 0u32..9,
        start in 0u64..100, len in 1u64..40,
    ) {
        let rect = CellRect::new(CellPos::new(obstacle_x, obstacle_y), 3, 3);
        let placement = Placement::new(GridSpec::square(12), vec![rect]);
        let grid = RoutingGrid::new(&placement, Duration::from_secs(10));
        let src = CellPos::new(sx, sy);
        let dst = CellPos::new(tx, ty);
        prop_assume!(grid.is_routable(src) && grid.is_routable(dst));
        let window = Interval::new(
            Instant::from_secs(start),
            Instant::from_secs(start + len),
        );
        let wash = wash_secs(2);
        if let Some(path) = find_path(
            &grid, &[src], &[dst], |_| window, OpId::new(0), wash,
            AstarOptions::default(),
        ) {
            prop_assert_eq!(path[0], src);
            prop_assert_eq!(*path.last().unwrap(), dst);
            for w in path.windows(2) {
                prop_assert_eq!(w[0].manhattan(w[1]), 1);
            }
            for &c in &path {
                prop_assert!(grid.is_routable(c));
                prop_assert!(grid.feasible(c, window, OpId::new(0), wash));
            }
            // No repeated cells on a single-window search.
            let mut seen = std::collections::BTreeSet::new();
            for &c in &path {
                prop_assert!(seen.insert(c), "cell {} repeated", c);
            }
        } else {
            // With a single 3x3 obstacle on a 12x12 grid, src and dst are
            // always connected: failure would be a search bug.
            prop_assert!(false, "disconnected despite open grid");
        }
    }

    /// The negotiated-congestion router, whenever it routes a random
    /// synthetic assay at all, produces a pairwise conflict-free path set
    /// and is deterministic under re-run.
    #[test]
    fn negotiated_routing_is_conflict_free_and_deterministic(
        ops in 5usize..16,
        seed in 0u64..1_000,
    ) {
        use mfb_bench_suite::synth::SyntheticSpec;
        use mfb_sched::list::{schedule, SchedulerConfig};

        let g = SyntheticSpec::new(ops, seed).generate();
        let lib = ComponentLibrary::default();
        let comps = Allocation::new(2, 1, 1, 1).instantiate(&lib);
        let wash = LogLinearWash::paper_calibrated();
        let s = schedule(&g, &comps, &wash, &SchedulerConfig::paper_dcsa())
            .expect("synthetic assays schedule");
        let nets = mfb_place::prelude::NetList::build(&s, &g, &wash, 0.6, 0.4);
        let grid = mfb_place::prelude::auto_grid(&comps);
        let Ok(p) = mfb_place::prelude::place_sa(&comps, &nets, grid, &mfb_place::prelude::SaConfig::paper()) else {
            return Ok(()); // unplaceable on the base grid: nothing to check
        };
        let cfg = RouterConfig::paper();
        // An Err outcome is fine: congestion beyond this grid is the
        // flow's (grid-growing) concern, not this property's.
        if let Ok(r) = route_negotiated(&s, &g, &p, &wash, &cfg) {
            for i in 0..r.paths.len() {
                for j in (i + 1)..r.paths.len() {
                    prop_assert!(
                        !r.paths[i].conflicts_with(&r.paths[j]),
                        "paths {} and {} conflict", i, j
                    );
                }
            }
            let again = route_negotiated(&s, &g, &p, &wash, &cfg)
                .expect("second run must also route");
            prop_assert_eq!(r, again, "negotiated routing not deterministic");
        }
    }

    /// Unreserving a task restores exactly the pre-reservation feasibility.
    #[test]
    fn unreserve_restores_feasibility(
        windows in proptest::collection::vec(arb_interval(), 1..12),
    ) {
        let placement = Placement::new(GridSpec::square(4), vec![]);
        let mut grid = RoutingGrid::new(&placement, Duration::from_secs(10));
        let cell = CellPos::new(0, 0);
        let wash = wash_secs(3);
        let probe = Interval::new(Instant::from_secs(1000), Instant::from_secs(1010));

        // Reserve a batch under one task id, then remove it.
        for (i, w) in windows.iter().enumerate() {
            if grid.feasible(cell, *w, OpId::new(0), wash) {
                grid.reserve(cell, TaskId::new(7), OpId::new(0), *w, wash);
            }
            let _ = i;
        }
        grid.unreserve(TaskId::new(7), wash);
        prop_assert!(grid.reservations(cell).is_empty());
        prop_assert!(grid.feasible(cell, probe, OpId::new(1), wash));
        prop_assert_eq!(grid.weight(cell), Duration::from_secs(10), "weight reset to w_e");
        prop_assert_eq!(grid.residue(cell), None);
    }
}
