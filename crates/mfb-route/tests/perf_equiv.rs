//! Golden-equivalence suite: the arena-backed A* searches and the router
//! built on them must be bitwise identical to the frozen pre-optimization
//! reference (`mfb_route::reference`).
//!
//! `Routing` equality (`PartialEq` over every path cell, window, wash and
//! realized time) is exactly "byte-identical routing": a single diverging
//! heap pop anywhere in the thousands of A* queries a full routing makes
//! would change some path and fail the comparison.

use mfb_bench_suite::table1_benchmarks;
use mfb_model::prelude::*;
use mfb_place::prelude::*;
use mfb_route::prelude::*;
use mfb_route::reference::{
    dijkstra_map_reference, find_path_reference, route_dcsa_reference,
    route_dcsa_reference_with_defects,
};
use mfb_sched::list::{schedule, SchedulerConfig};
use mfb_sched::prelude::Schedule;

fn iv(a: u64, b: u64) -> Interval {
    Interval::new(Instant::from_secs(a), Instant::from_secs(b))
}

fn wash2(_: OpId) -> Duration {
    Duration::from_secs(2)
}

/// A 12×12 grid with two components, a handful of reservations and one
/// degraded-weight cell — enough structure that a heuristic or tie-break
/// divergence would pick a different path.
fn busy_grid() -> RoutingGrid {
    let p = Placement::new(
        GridSpec::square(12),
        vec![
            CellRect::new(CellPos::new(3, 2), 3, 3),
            CellRect::new(CellPos::new(7, 7), 2, 4),
        ],
    );
    let mut g = RoutingGrid::new(&p, Duration::from_secs(10));
    for x in 0..12 {
        g.reserve(
            CellPos::new(x, 6),
            TaskId::new(0),
            OpId::new(5),
            iv(0, 8),
            wash2,
        );
    }
    for y in 2..9 {
        g.reserve(
            CellPos::new(1, y),
            TaskId::new(1),
            OpId::new(6),
            iv(4, 30),
            wash2,
        );
    }
    g
}

#[test]
fn arena_find_path_matches_reference_on_busy_grid() {
    let g = busy_grid();
    let mut scratch = SearchScratch::new();
    let queries: &[(&[CellPos], &[CellPos], Interval)] = &[
        (&[CellPos::new(0, 0)], &[CellPos::new(11, 11)], iv(0, 5)),
        (&[CellPos::new(0, 0)], &[CellPos::new(11, 11)], iv(10, 20)),
        (
            &[CellPos::new(0, 11), CellPos::new(11, 0)],
            &[CellPos::new(6, 1), CellPos::new(2, 10)],
            iv(12, 40),
        ),
        (&[CellPos::new(5, 5)], &[CellPos::new(5, 5)], iv(0, 3)),
    ];
    for opts in [AstarOptions::default(), AstarOptions { use_weights: false }] {
        for &(src, dst, w) in queries {
            for fluid in [OpId::new(0), OpId::new(5)] {
                let fast = find_path_with(&mut scratch, &g, src, dst, |_| w, fluid, wash2, opts);
                let slow = find_path_reference(&g, src, dst, |_| w, fluid, wash2, opts);
                assert_eq!(fast, slow, "query {src:?}->{dst:?} {w:?} diverged");
            }
        }
    }
}

#[test]
fn arena_dijkstra_matches_reference() {
    let g = busy_grid();
    let mut scratch = SearchScratch::new();
    for opts in [AstarOptions::default(), AstarOptions { use_weights: false }] {
        for w in [iv(0, 5), iv(9, 25)] {
            let fast = dijkstra_map_with(
                &mut scratch,
                &g,
                &[CellPos::new(0, 0), CellPos::new(11, 11)],
                w,
                OpId::new(1),
                wash2,
                opts,
            );
            let slow = dijkstra_map_reference(
                &g,
                &[CellPos::new(0, 0), CellPos::new(11, 11)],
                w,
                OpId::new(1),
                wash2,
                opts,
            );
            assert_eq!(fast, slow, "dijkstra map diverged for {w:?}");
        }
    }
}

#[test]
fn off_grid_targets_return_none_like_reference() {
    let g = busy_grid();
    let mut scratch = SearchScratch::new();
    // All targets outside the grid: both must give up (the arena path
    // early-returns without touching the scratch at all).
    let off = [CellPos::new(99, 99), CellPos::new(50, 0)];
    let src = [CellPos::new(0, 0)];
    let fast = find_path_with(
        &mut scratch,
        &g,
        &src,
        &off,
        |_| iv(0, 5),
        OpId::new(0),
        wash2,
        AstarOptions::default(),
    );
    let slow = find_path_reference(
        &g,
        &src,
        &off,
        |_| iv(0, 5),
        OpId::new(0),
        wash2,
        AstarOptions::default(),
    );
    assert_eq!(fast, slow);
    assert!(fast.is_none());
    assert_eq!(
        scratch.stats.queries, 0,
        "early return must not count a query"
    );
    // Mixed on/off-grid targets still route (and count). Target (11, 0)
    // stays above the reserved y = 6 wall, so it is reachable in (0, 5).
    let mixed = [CellPos::new(99, 99), CellPos::new(11, 0)];
    let fast = find_path_with(
        &mut scratch,
        &g,
        &src,
        &mixed,
        |_| iv(0, 5),
        OpId::new(0),
        wash2,
        AstarOptions::default(),
    );
    let slow = find_path_reference(
        &g,
        &src,
        &mixed,
        |_| iv(0, 5),
        OpId::new(0),
        wash2,
        AstarOptions::default(),
    );
    assert_eq!(fast, slow);
    assert!(fast.is_some());
    assert_eq!(scratch.stats.queries, 1);
}

fn synthesized(b: &mfb_bench_suite::Benchmark) -> (SequencingGraph, Schedule, Placement) {
    let wash = LogLinearWash::paper_calibrated();
    let comps = b.components(&ComponentLibrary::default());
    let s = schedule(&b.graph, &comps, &wash, &SchedulerConfig::paper_dcsa()).unwrap();
    let nets = NetList::build(&s, &b.graph, &wash, 0.6, 0.4);
    let p = place_sa_auto(&comps, &nets, &SaConfig::paper()).unwrap();
    (b.graph.clone(), s, p)
}

#[test]
fn optimized_router_matches_reference_on_all_table1_benchmarks() {
    let wash = LogLinearWash::paper_calibrated();
    let config = RouterConfig::paper();
    for b in table1_benchmarks() {
        let (graph, s, p) = synthesized(&b);
        // Routings must match, and so must failures (e.g. Synthetic4 is
        // unroutable on a bare SA placement until the recovery ladder grows
        // the grid — both sides must agree on the exact error).
        let fast = route_dcsa(&s, &graph, &p, &wash, &config);
        let slow = route_dcsa_reference(&s, &graph, &p, &wash, &config);
        assert_eq!(fast, slow, "{} routing diverged", b.name);
    }
}

#[test]
fn optimized_router_matches_reference_under_defects() {
    let wash = LogLinearWash::paper_calibrated();
    let config = RouterConfig::paper();
    let b = table1_benchmarks().swap_remove(2); // CPA
    let (graph, s, p) = synthesized(&b);
    let mut defects = DefectMap::pristine();
    let spec = p.grid();
    for i in 0..spec.width.min(spec.height) / 3 {
        defects.block_cell(CellPos::new(3 * i, 3 * i));
    }
    let fast = route_dcsa_with_defects(&s, &graph, &p, &wash, &config, &defects);
    let slow = route_dcsa_reference_with_defects(&s, &graph, &p, &wash, &config, &defects);
    assert_eq!(fast, slow, "defect routing diverged");
}

#[test]
fn scratch_stats_expose_search_effort() {
    let wash = LogLinearWash::paper_calibrated();
    let config = RouterConfig::paper();
    let b = table1_benchmarks().swap_remove(2); // CPA: routes on a bare SA placement
    let (graph, s, p) = synthesized(&b);
    let mut scratch = SearchScratch::new();
    let r = route_dcsa_with_scratch(
        &s,
        &graph,
        &p,
        &wash,
        &config,
        &DefectMap::pristine(),
        &mut scratch,
    )
    .unwrap();
    assert!(!r.paths.is_empty());
    assert!(scratch.stats.queries > 0);
    assert!(scratch.stats.expansions >= scratch.stats.queries);
    assert!(scratch.stats.heap_pushes >= scratch.stats.expansions);
}
