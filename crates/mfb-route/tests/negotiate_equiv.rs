//! Golden suite for the negotiated-congestion router.
//!
//! Pins the three properties the second perf wave promises:
//!
//! 1. the negotiated router's output is certified conflict-free (pairwise
//!    [`RoutedPath::conflicts_with`]) and never delays the schedule;
//! 2. it routes the dense 100-op Synthetic5 rung — congestion that the
//!    soft-cost negotiation must actually resolve — without `Unroutable`;
//! 3. the routing is byte-identical across `MFB_THREADS` values (the
//!    Jacobi-sweep + ordered-collection design), checked in a single
//!    `#[test]` because `MFB_THREADS` is process-global.

use mfb_bench_suite::{benchmark_by_name, dense_benchmark, Benchmark};
use mfb_model::prelude::*;
use mfb_place::prelude::*;
use mfb_route::prelude::*;
use mfb_sched::list::{schedule, SchedulerConfig};
use mfb_sched::prelude::Schedule;

/// Schedule and place `b` the way the synthesis flow would: `auto_grid`
/// grown by the recovery ladder's 4/3-linear steps until the serial DCSA
/// router succeeds, so the negotiated router is tested on a fair grid.
fn prepared(b: &Benchmark) -> (Schedule, Placement) {
    let lib = ComponentLibrary::default();
    let comps = b.components(&lib);
    let wash = LogLinearWash::paper_calibrated();
    let s = schedule(&b.graph, &comps, &wash, &SchedulerConfig::paper_dcsa()).unwrap();
    let nets = NetList::build(&s, &b.graph, &wash, 0.6, 0.4);
    let sa_cfg = SaConfig::paper();
    let base = auto_grid(&comps);
    for step in 0..=3u32 {
        let f = 4u64.pow(step);
        let d = 3u64.pow(step);
        let side = |v: u32| ((u64::from(v) * f / d) as u32).max(v);
        let grid = GridSpec::new(side(base.width), side(base.height), base.pitch_mm);
        let Ok(p) = place_sa(&comps, &nets, grid, &sa_cfg) else {
            continue;
        };
        let mut scratch = SearchScratch::new();
        if route_dcsa_with_scratch(
            &s,
            &b.graph,
            &p,
            &wash,
            &RouterConfig::paper(),
            &DefectMap::pristine(),
            &mut scratch,
        )
        .is_ok()
        {
            return (s, p);
        }
    }
    panic!("no routable grid for {}", b.name);
}

fn assert_conflict_free(r: &Routing) {
    for i in 0..r.paths.len() {
        for j in (i + 1)..r.paths.len() {
            assert!(
                !r.paths[i].conflicts_with(&r.paths[j]),
                "paths {i} and {j} conflict"
            );
        }
    }
}

#[test]
fn negotiated_is_conflict_free_on_benchmarks() {
    let wash = LogLinearWash::paper_calibrated();
    for name in ["CPA", "Synthetic4"] {
        let b = benchmark_by_name(name).unwrap();
        let (s, p) = prepared(&b);
        let r = route_negotiated(&s, &b.graph, &p, &wash, &RouterConfig::paper()).unwrap();
        assert_eq!(r.completion(), s.completion_time(), "{name} delayed");
        assert_eq!(r.paths.len(), s.transports().count(), "{name} lost tasks");
        assert_conflict_free(&r);
    }
}

#[test]
fn negotiated_routes_dense_synthetic5() {
    let wash = LogLinearWash::paper_calibrated();
    let b = dense_benchmark();
    let (s, p) = prepared(&b);
    let r = route_negotiated(&s, &b.graph, &p, &wash, &RouterConfig::paper())
        .expect("Synthetic5 must route without Unroutable");
    assert_eq!(r.completion(), s.completion_time());
    assert_eq!(r.paths.len(), s.transports().count());
    assert_conflict_free(&r);
}

/// One test, not several: `MFB_THREADS` is process-global, so the
/// comparisons must run on one harness thread.
#[test]
fn negotiated_is_byte_identical_across_thread_counts() {
    let b = benchmark_by_name("Synthetic4").unwrap();
    let (s, p) = prepared(&b);
    let wash = LogLinearWash::paper_calibrated();
    let run = |threads: &str| {
        std::env::set_var("MFB_THREADS", threads);
        route_negotiated(&s, &b.graph, &p, &wash, &RouterConfig::paper()).unwrap()
    };
    let serial = run("1");
    let two = run("2");
    let eight = run("8");
    std::env::remove_var("MFB_THREADS");
    assert_eq!(serial, two, "MFB_THREADS=2 changed the negotiated routing");
    assert_eq!(
        serial, eight,
        "MFB_THREADS=8 changed the negotiated routing"
    );
}
