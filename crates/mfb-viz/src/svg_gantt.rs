//! SVG Gantt charts of schedules — the publication-quality sibling of the
//! ASCII renderer in [`crate::gantt`].

use mfb_model::prelude::*;
use mfb_sched::prelude::Schedule;
use std::fmt::Write as _;

/// Pixels per second on the time axis.
const PX_PER_SEC: f64 = 14.0;
/// Row height in pixels.
const ROW_H: u32 = 26;
/// Left margin for row labels.
const MARGIN_L: u32 = 90;
/// Top margin for the time axis.
const MARGIN_T: u32 = 24;

/// Fill colours per component kind (mixer, heater, filter, detector).
const KIND_FILL: [&str; 4] = ["#7eb0d5", "#fd7f6f", "#b2e061", "#ffee65"];

/// Renders `schedule` as a standalone SVG Gantt chart: one row per
/// component, operations as labelled blocks coloured by component kind,
/// washes as grey hatched blocks, and a seconds axis on top.
pub fn render_svg_gantt(schedule: &Schedule, components: &ComponentSet) -> String {
    let total_secs = schedule.completion_time().as_secs_f64().max(1.0);
    let w = MARGIN_L + (total_secs * PX_PER_SEC).ceil() as u32 + 10;
    let h = MARGIN_T + ROW_H * components.len() as u32 + 10;
    let x_of = |t: Instant| MARGIN_L as f64 + t.as_secs_f64() * PX_PER_SEC;

    let mut s = String::new();
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="monospace" font-size="11">"#
    );
    let _ = writeln!(s, r##"<rect width="{w}" height="{h}" fill="#ffffff"/>"##);

    // Time axis: a tick every 5 seconds.
    let mut t = 0.0;
    while t <= total_secs {
        let x = MARGIN_L as f64 + t * PX_PER_SEC;
        let _ = writeln!(
            s,
            r##"<line x1="{x:.1}" y1="{MARGIN_T}" x2="{x:.1}" y2="{h}" stroke="#eee"/>"##
        );
        let _ = writeln!(
            s,
            r##"<text x="{x:.1}" y="14" text-anchor="middle" fill="#666">{t:.0}s</text>"##
        );
        t += 5.0;
    }

    for (row, comp) in components.iter().enumerate() {
        let y = MARGIN_T + ROW_H * row as u32;
        let _ = writeln!(
            s,
            r##"<text x="4" y="{}" fill="#333">{} {}</text>"##,
            y + ROW_H / 2 + 4,
            comp.id(),
            comp.kind()
        );
        // Washes first (under the ops).
        for wsh in schedule.washes().filter(|w| w.component == comp.id()) {
            let x = x_of(wsh.start);
            let wdt = (wsh.wash_time().as_secs_f64() * PX_PER_SEC).max(1.0);
            let _ = writeln!(
                s,
                r##"<rect x="{x:.1}" y="{}" width="{wdt:.1}" height="{}" fill="#bbb" opacity="0.7"/>"##,
                y + 4,
                ROW_H - 8
            );
        }
        for op in schedule.ops().filter(|o| o.component == comp.id()) {
            let x = x_of(op.start);
            let wdt = ((op.end - op.start).as_secs_f64() * PX_PER_SEC).max(2.0);
            let fill = KIND_FILL[comp.kind() as usize];
            let _ = writeln!(
                s,
                r##"<rect x="{x:.1}" y="{}" width="{wdt:.1}" height="{}" fill="{fill}" stroke="#333"/>"##,
                y + 2,
                ROW_H - 4
            );
            let _ = writeln!(
                s,
                r##"<text x="{:.1}" y="{}" text-anchor="middle">o{}</text>"##,
                x + wdt / 2.0,
                y + ROW_H / 2 + 4,
                op.op.index()
            );
        }
    }
    let _ = writeln!(s, "</svg>");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfb_sched::list::{schedule, SchedulerConfig};

    #[test]
    fn renders_rows_blocks_and_axis() {
        let wash = LogLinearWash::paper_calibrated();
        let d = |secs: f64| wash.coefficient_for(Duration::from_secs_f64(secs));
        let mut b = SequencingGraph::builder();
        let o0 = b.operation(OperationKind::Mix, Duration::from_secs(5), d(6.0));
        let o1 = b.operation(OperationKind::Mix, Duration::from_secs(4), d(2.0));
        let _ = (o0, o1);
        let g = b.build().unwrap();
        let comps = Allocation::new(1, 0, 0, 0).instantiate(&ComponentLibrary::default());
        let s = schedule(&g, &comps, &wash, &SchedulerConfig::paper_dcsa()).unwrap();
        let svg = render_svg_gantt(&s, &comps);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // Two op blocks, at least one wash rect, axis labels.
        assert!(svg.matches(">o0<").count() == 1);
        assert!(svg.matches(">o1<").count() == 1);
        assert!(svg.contains("#bbb"), "wash block missing");
        assert!(svg.contains("0s"));
    }
}
