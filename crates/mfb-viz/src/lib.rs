//! Visualization for DCSA physical synthesis solutions.
//!
//! Three renderers:
//!
//! * [`svg::render_svg`] — a standalone SVG of the chip: component
//!   rectangles coloured by kind, the union of channel cells, and each
//!   routed path as a polyline (the workspace's answer to the paper's
//!   Fig. 4 layouts);
//! * [`ascii::render_ascii`] — the same layout as a terminal character
//!   grid;
//! * [`gantt::render_gantt`] — the schedule as an ASCII Gantt chart with
//!   operations, washes and channel-cache dwells (the paper's Fig. 3).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod ascii;
pub mod gantt;
pub mod heatmap;
pub mod svg;
pub mod svg_gantt;

/// One-stop import of the rendering API.
pub mod prelude {
    pub use crate::ascii::render_ascii;
    pub use crate::gantt::render_gantt;
    pub use crate::heatmap::render_heatmap;
    pub use crate::svg::render_svg;
    pub use crate::svg_gantt::render_svg_gantt;
}
