//! Channel-occupancy heatmaps: where the chip's traffic concentrates.

use mfb_model::prelude::*;
use mfb_place::prelude::Placement;
use mfb_route::prelude::Routing;
use std::fmt::Write as _;

/// Renders a text heatmap of per-cell channel occupancy: components as
/// `#`, unused cells as `.`, used cells as `1`–`9` scaled to the busiest
/// cell's total occupancy time (`*` for the maximum). Row 0 prints last
/// (chip south at the bottom), matching the other renderers.
pub fn render_heatmap(placement: &Placement, routing: &Routing) -> String {
    let grid = placement.grid();
    let mut occupancy = vec![Duration::ZERO; grid.cell_count() as usize];
    for p in &routing.paths {
        for (cell, window) in p.occupancies() {
            occupancy[grid.index(cell)] += window.length();
        }
    }
    let max = occupancy.iter().copied().max().unwrap_or(Duration::ZERO);

    let mut s = String::new();
    let _ = writeln!(
        s,
        "channel occupancy (max {:.1}s per cell):",
        max.as_secs_f64()
    );
    for y in (0..grid.height).rev() {
        for x in 0..grid.width {
            let cell = CellPos::new(x, y);
            let ch = if placement.rects().iter().any(|r| r.contains(cell)) {
                '#'
            } else {
                let t = occupancy[grid.index(cell)];
                if t.is_zero() {
                    '.'
                } else if t == max {
                    '*'
                } else {
                    let bucket = (t.as_ticks() * 9) / max.as_ticks().max(1);
                    char::from_digit(bucket.clamp(1, 9) as u32, 10).expect("1..=9")
                }
            };
            s.push(ch);
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfb_route::prelude::{RealizedTimes, RoutedPath};

    #[test]
    fn heatmap_scales_and_marks() {
        let placement = Placement::new(
            GridSpec::square(6),
            vec![CellRect::new(CellPos::new(0, 0), 2, 2)],
        );
        let iv = |a: u64, b: u64| Interval::new(Instant::from_secs(a), Instant::from_secs(b));
        let routing = Routing {
            paths: vec![RoutedPath {
                task: TaskId::new(0),
                fluid: OpId::new(0),
                cells: vec![CellPos::new(3, 3), CellPos::new(4, 3)],
                windows: vec![iv(0, 10), iv(0, 2)],
            }],
            channel_washes: vec![],
            realized: RealizedTimes {
                start: vec![],
                end: vec![],
            },
            grid: GridSpec::square(6),
            used_cells: 2,
        };
        let map = render_heatmap(&placement, &routing);
        assert!(map.contains('#'), "component visible");
        assert!(map.contains('*'), "hottest cell marked");
        assert!(map.contains('1'), "cool cell bucketed low: \n{map}");
        assert!(map.lines().count() == 7); // header + 6 rows
    }
}
