//! ASCII layout maps: a quick terminal view of a placed-and-routed chip.

use mfb_model::prelude::*;
use mfb_place::prelude::Placement;
use mfb_route::prelude::Routing;
use std::fmt::Write as _;

/// Renders the chip as a character grid: component interiors as the first
/// letter of their kind (uppercase), channel cells as `*`, free cells as
/// `.`. Row 0 (chip south) is printed last, matching the SVG orientation.
pub fn render_ascii(
    placement: &Placement,
    components: &ComponentSet,
    routing: Option<&Routing>,
) -> String {
    let grid = placement.grid();
    let mut map = vec![b'.'; grid.cell_count() as usize];

    if let Some(r) = routing {
        for p in &r.paths {
            for &cell in &p.cells {
                map[grid.index(cell)] = b'*';
            }
        }
    }
    for comp in components.iter() {
        let letter = comp.kind().name().as_bytes()[0].to_ascii_uppercase();
        for cell in placement.rect(comp.id()).cells() {
            map[grid.index(cell)] = letter;
        }
    }

    let mut s = String::new();
    for y in (0..grid.height).rev() {
        for x in 0..grid.width {
            let _ = write!(s, "{}", map[grid.index(CellPos::new(x, y))] as char);
        }
        let _ = writeln!(s);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_shows_components_and_free_space() {
        let comps = Allocation::new(1, 0, 0, 1).instantiate(&ComponentLibrary::default());
        let placement = Placement::new(
            GridSpec::square(10),
            vec![
                CellRect::new(CellPos::new(0, 0), 4, 3),
                CellRect::new(CellPos::new(7, 7), 2, 2),
            ],
        );
        let map = render_ascii(&placement, &comps, None);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 10);
        assert!(lines.iter().all(|l| l.len() == 10));
        // Mixer occupies the bottom-left corner: last line starts with MMMM.
        assert!(lines[9].starts_with("MMMM"));
        // Detector near the top right.
        assert!(lines[1].contains("DD"));
        assert!(map.contains('.'));
    }
}
