//! SVG rendering of chip layouts: component rectangles, routed channels and
//! per-task paths.

use mfb_model::prelude::*;
use mfb_place::prelude::Placement;
use mfb_route::prelude::Routing;
use std::fmt::Write as _;

/// Pixels per grid cell in the produced SVG.
const CELL_PX: u32 = 14;

/// Fill colours per component kind (mixer, heater, filter, detector).
const KIND_FILL: [&str; 4] = ["#7eb0d5", "#fd7f6f", "#b2e061", "#ffee65"];

/// Path stroke palette, cycled per task.
const PATH_STROKE: [&str; 6] = [
    "#115f9a", "#bc5090", "#2e7d32", "#ef5350", "#6a3d9a", "#00695c",
];

/// Renders a placement (and optionally its routing) as a standalone SVG
/// document.
///
/// Components are filled by kind and labelled with their id; routed paths
/// are drawn as polylines through cell centres, with the union of used
/// channel cells shaded underneath.
pub fn render_svg(
    placement: &Placement,
    components: &ComponentSet,
    routing: Option<&Routing>,
) -> String {
    let grid = placement.grid();
    let w = grid.width * CELL_PX;
    let h = grid.height * CELL_PX;
    // SVG y grows downward; chip y grows upward. Flip rows.
    let px = |c: CellPos| -> (u32, u32) { (c.x * CELL_PX, (grid.height - 1 - c.y) * CELL_PX) };

    let mut s = String::new();
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#
    );
    let _ = writeln!(
        s,
        r##"<rect width="{w}" height="{h}" fill="#fafafa" stroke="#999"/>"##
    );

    // Faint grid lines.
    for x in 1..grid.width {
        let _ = writeln!(
            s,
            r##"<line x1="{0}" y1="0" x2="{0}" y2="{h}" stroke="#eee" stroke-width="1"/>"##,
            x * CELL_PX
        );
    }
    for y in 1..grid.height {
        let _ = writeln!(
            s,
            r##"<line x1="0" y1="{0}" x2="{w}" y2="{0}" stroke="#eee" stroke-width="1"/>"##,
            y * CELL_PX
        );
    }

    // Channel cells under everything else.
    if let Some(r) = routing {
        let mut used = std::collections::BTreeSet::new();
        for p in &r.paths {
            used.extend(p.cells.iter().copied());
        }
        for cell in used {
            let (x, y) = px(cell);
            let _ = writeln!(
                s,
                r##"<rect x="{x}" y="{y}" width="{CELL_PX}" height="{CELL_PX}" fill="#d9d9d9"/>"##
            );
        }
    }

    // Components.
    for comp in components.iter() {
        let rect = placement.rect(comp.id());
        let (x, _) = px(rect.origin);
        let top = grid.height - rect.origin.y - rect.height;
        let y = top * CELL_PX;
        let rw = rect.width * CELL_PX;
        let rh = rect.height * CELL_PX;
        let fill = KIND_FILL[comp.kind() as usize];
        let _ = writeln!(
            s,
            r##"<rect x="{x}" y="{y}" width="{rw}" height="{rh}" fill="{fill}" stroke="#333" stroke-width="1.5"/>"##
        );
        let _ = writeln!(
            s,
            r##"<text x="{}" y="{}" font-family="monospace" font-size="11" text-anchor="middle">{}</text>"##,
            x + rw / 2,
            y + rh / 2 + 4,
            comp.id()
        );
    }

    // Routed paths as polylines through cell centres.
    if let Some(r) = routing {
        for (i, p) in r.paths.iter().enumerate() {
            if p.cells.len() < 2 {
                continue;
            }
            let pts: Vec<String> = p
                .cells
                .iter()
                .map(|&c| {
                    let (x, y) = px(c);
                    format!("{},{}", x + CELL_PX / 2, y + CELL_PX / 2)
                })
                .collect();
            let stroke = PATH_STROKE[i % PATH_STROKE.len()];
            let _ = writeln!(
                s,
                r#"<polyline points="{}" fill="none" stroke="{stroke}" stroke-width="2" stroke-opacity="0.75"/>"#,
                pts.join(" ")
            );
        }
    }

    let _ = writeln!(s, "</svg>");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Placement, ComponentSet) {
        let comps = Allocation::new(1, 1, 0, 0).instantiate(&ComponentLibrary::default());
        let placement = Placement::new(
            GridSpec::square(14),
            vec![
                CellRect::new(CellPos::new(1, 1), 4, 3),
                CellRect::new(CellPos::new(8, 8), 3, 2),
            ],
        );
        (placement, comps)
    }

    #[test]
    fn renders_valid_svg_skeleton() {
        let (p, c) = sample();
        let svg = render_svg(&p, &c, None);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One rect per component plus the background.
        assert_eq!(svg.matches("<rect").count(), 3);
        assert!(svg.contains("c0"));
        assert!(svg.contains("c1"));
    }

    #[test]
    fn component_colors_differ_by_kind() {
        let (p, c) = sample();
        let svg = render_svg(&p, &c, None);
        assert!(svg.contains(KIND_FILL[0])); // mixer
        assert!(svg.contains(KIND_FILL[1])); // heater
    }
}
