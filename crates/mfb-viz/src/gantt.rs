//! ASCII Gantt charts of schedules: one row per component, operations as
//! labelled blocks, washes as `~`, idle time as spaces.

use mfb_model::prelude::*;
use mfb_sched::prelude::Schedule;
use std::fmt::Write as _;

/// Maximum rendered width in characters before the time axis is compressed.
const MAX_COLS: usize = 110;

/// Renders `schedule` as an ASCII Gantt chart.
///
/// Each component gets a row; an operation `o7` running on it paints
/// `[7777]` over its time span, washes paint `~`, and the header carries
/// the time axis in seconds. The chart compresses the tick-per-column scale
/// to fit roughly 110 columns.
pub fn render_gantt(schedule: &Schedule, components: &ComponentSet) -> String {
    let end = schedule.completion_time().as_ticks().max(1);
    // Ticks per column, rounded up so the chart fits.
    let scale = end.div_ceil(MAX_COLS as u64).max(1);
    let cols = (end / scale + 1) as usize;

    let col_of = |t: Instant| (t.as_ticks() / scale) as usize;

    let mut s = String::new();
    let _ = writeln!(
        s,
        "time: one column = {:.1}s, total {:.1}s",
        scale as f64 / 10.0,
        end as f64 / 10.0
    );

    for comp in components.iter() {
        let mut row = vec![' '; cols];
        for w in schedule.washes().filter(|w| w.component == comp.id()) {
            let (a, b) = (col_of(w.start), col_of(w.end).max(col_of(w.start) + 1));
            for c in row.iter_mut().take(b.min(cols)).skip(a) {
                *c = '~';
            }
        }
        for op in schedule.ops().filter(|o| o.component == comp.id()) {
            let (a, b) = (col_of(op.start), col_of(op.end).max(col_of(op.start) + 1));
            let label: Vec<char> = op.op.index().to_string().chars().collect();
            for (k, slot) in (a..b.min(cols)).enumerate() {
                row[slot] = if k == 0 {
                    '['
                } else if slot + 1 == b.min(cols) {
                    ']'
                } else {
                    label[(k - 1) % label.len()]
                };
            }
        }
        let _ = writeln!(
            s,
            "{:>3} {:<8} |{}|",
            comp.id().to_string(),
            components.component(comp.id()).kind().to_string(),
            row.into_iter().collect::<String>()
        );
    }

    // Channel-cache summary row.
    let mut cache = vec![' '; cols];
    for t in schedule.transports() {
        if t.cache_time().is_zero() {
            continue;
        }
        let (a, b) = (col_of(t.arrive), col_of(t.consumed_at));
        for c in cache.iter_mut().take(b.min(cols)).skip(a) {
            *c = '=';
        }
    }
    let _ = writeln!(
        s,
        "    {:<8} |{}|",
        "cache",
        cache.into_iter().collect::<String>()
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfb_sched::list::{schedule, SchedulerConfig};

    #[test]
    fn gantt_shows_ops_and_washes() {
        let wash = LogLinearWash::paper_calibrated();
        let d = |secs: f64| wash.coefficient_for(Duration::from_secs_f64(secs));
        let mut b = SequencingGraph::builder();
        // Two independent mixes on one mixer: eviction wash in between.
        let o0 = b.operation(OperationKind::Mix, Duration::from_secs(5), d(6.0));
        let o1 = b.operation(OperationKind::Mix, Duration::from_secs(4), d(2.0));
        let _ = (o0, o1);
        let g = b.build().unwrap();
        let comps = Allocation::new(1, 0, 0, 0).instantiate(&ComponentLibrary::default());
        let s = schedule(&g, &comps, &wash, &SchedulerConfig::paper_dcsa()).unwrap();
        let chart = render_gantt(&s, &comps);
        assert!(chart.contains("mixer"));
        assert!(chart.contains('['), "operation blocks missing:\n{chart}");
        assert!(chart.contains('~'), "wash missing:\n{chart}");
    }

    #[test]
    fn gantt_marks_channel_cache() {
        let wash = LogLinearWash::paper_calibrated();
        let d = |secs: f64| wash.coefficient_for(Duration::from_secs_f64(secs));
        let mut b = SequencingGraph::builder();
        // One mixer: o0's fluid is evicted by o1 and cached until o2.
        let o0 = b.operation(OperationKind::Mix, Duration::from_secs(5), d(2.0));
        let _o1 = b.operation(OperationKind::Mix, Duration::from_secs(4), d(2.0));
        let o2 = b.operation(OperationKind::Mix, Duration::from_secs(3), d(2.0));
        b.edge(o0, o2).unwrap();
        let g = b.build().unwrap();
        let comps = Allocation::new(1, 0, 0, 0).instantiate(&ComponentLibrary::default());
        let s = schedule(&g, &comps, &wash, &SchedulerConfig::paper_dcsa()).unwrap();
        assert!(s.total_cache_time() > Duration::ZERO);
        let chart = render_gantt(&s, &comps);
        assert!(chart.contains('='), "cache row missing:\n{chart}");
    }

    #[test]
    fn long_schedules_compress() {
        let wash = LogLinearWash::paper_calibrated();
        let d = DiffusionCoefficient::PROTEIN;
        let mut b = SequencingGraph::builder();
        let mut prev = b.operation(OperationKind::Mix, Duration::from_secs(60), d);
        for _ in 0..10 {
            let next = b.operation(OperationKind::Mix, Duration::from_secs(60), d);
            b.edge(prev, next).unwrap();
            prev = next;
        }
        let g = b.build().unwrap();
        let comps = Allocation::new(1, 0, 0, 0).instantiate(&ComponentLibrary::default());
        let s = schedule(&g, &comps, &wash, &SchedulerConfig::paper_dcsa()).unwrap();
        let chart = render_gantt(&s, &comps);
        for line in chart.lines() {
            assert!(line.len() <= MAX_COLS + 20, "line too wide: {}", line.len());
        }
    }
}
