//! `mfb` — command-line driver for DCSA flow-layer physical synthesis.
//!
//! ```text
//! mfb list                         list benchmarks
//! mfb table1                       regenerate the paper's Table I
//! mfb fig8                         regenerate Fig. 8 (channel cache time)
//! mfb fig9                         regenerate Fig. 9 (channel wash time)
//! mfb motivating                   run the Fig. 2(a) running example
//! mfb run <bench> [options]        synthesize one benchmark
//!     --flow ours|ba               which flow (default ours)
//!     --svg <file>                 write the layout as SVG
//!     --map                        print the ASCII layout
//!     --gantt                      print the schedule Gantt chart
//! mfb verify <bench|file.assay>    unified design-rule checker (DRC);
//!                                  exits with the worst severity found
//! mfb ablation                     binding/weight ablation study
//! ```

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

use mfb_bench_suite::{benchmark_by_name, motivating_example, table1_benchmarks, Benchmark};
use mfb_core::prelude::*;
use mfb_model::prelude::*;
use mfb_sched::prelude::BindingRule;
use mfb_viz::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--trace <file>` is accepted by every command as shorthand for
    // `mfb trace --out <file> <command>`: strip it before dispatch.
    let mut trace_out: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--trace") {
        if pos + 1 >= args.len() {
            eprintln!("error: --trace needs an output file");
            return ExitCode::FAILURE;
        }
        trace_out = Some(args.remove(pos + 1));
        args.remove(pos);
    }
    let cmd = args.first().cloned().unwrap_or_else(|| "help".to_string());
    let rest: Vec<String> = args[1.min(args.len())..].to_vec();
    let result = match trace_out {
        Some(path) => run_traced(&path, None, &cmd, &rest),
        None => dispatch(&cmd, &rest),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Routes one parsed command line to its implementation.
fn dispatch(cmd: &str, rest: &[String]) -> Result<ExitCode, String> {
    match cmd {
        "list" => cmd_list().map(ok),
        "table1" => cmd_table1().map(ok),
        "fig8" => cmd_fig(8).map(ok),
        "fig9" => cmd_fig(9).map(ok),
        "motivating" => cmd_motivating().map(ok),
        "run" => cmd_run(rest),
        "run-file" => cmd_run_file(rest),
        "fmt" => cmd_fmt(rest),
        "audit" => cmd_audit(rest).map(ok),
        "events" => cmd_events(rest).map(ok),
        "validate" => cmd_validate(rest).map(ok),
        "verify" => cmd_verify(rest),
        "analyze" => cmd_analyze(rest),
        "faults" => cmd_faults(rest).map(ok),
        "bench" => cmd_bench(rest).map(ok),
        "batch" => cmd_batch(rest),
        "serve" => cmd_serve(rest).map(ok),
        "client" => cmd_client(rest).map(ok),
        "trace" => cmd_trace(rest),
        "ablation" => cmd_ablation().map(ok),
        "help" | "--help" | "-h" => {
            print!("{}", HELP);
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`; try `mfb help`")),
    }
}

/// `mfb trace [--out FILE] [--format jsonl|chrome] <command> [args...]`:
/// runs any command with a trace collector installed, then writes the
/// schema-checked trace and prints a per-stage summary to stderr.
fn cmd_trace(rest: &[String]) -> Result<ExitCode, String> {
    let mut out: Option<String> = None;
    let mut format: Option<String> = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--out" => {
                out = Some(trace_flag_value(rest, i, "--out")?);
                i += 2;
            }
            "--format" => {
                let f = trace_flag_value(rest, i, "--format")?;
                if f != "jsonl" && f != "chrome" {
                    return Err(format!("--format must be jsonl or chrome, got `{f}`"));
                }
                format = Some(f);
                i += 2;
            }
            _ => break,
        }
    }
    let Some(cmd) = rest.get(i) else {
        return Err(
            "usage: mfb trace [--out FILE] [--format jsonl|chrome] <command> [args...]".to_string(),
        );
    };
    let out = out.unwrap_or_else(|| "trace.json".to_string());
    run_traced(&out, format.as_deref(), cmd, &rest[i + 1..])
}

fn trace_flag_value(rest: &[String], i: usize, flag: &str) -> Result<String, String> {
    rest.get(i + 1)
        .cloned()
        .ok_or_else(|| format!("{flag} needs a value"))
}

/// Dispatches `cmd` with tracing installed and exports the trace to
/// `path`. `format` defaults by extension: `.jsonl` means JSON Lines,
/// anything else Chrome trace-event JSON (for chrome://tracing/Perfetto).
fn run_traced(
    path: &str,
    format: Option<&str>,
    cmd: &str,
    rest: &[String],
) -> Result<ExitCode, String> {
    let collector = mfb_obs::TraceCollector::new();
    let code = {
        let _guard = mfb_obs::install(&collector);
        dispatch(cmd, rest)?
    };
    let trace = collector.finish();
    if trace.open_spans != 0 {
        return Err(format!("{} spans never closed", trace.open_spans));
    }
    let jsonl = match format {
        Some(f) => f == "jsonl",
        None => path.ends_with(".jsonl"),
    };
    let text = if jsonl {
        let text = mfb_obs::export::to_jsonl(&trace.events);
        mfb_obs::export::check_jsonl(&text)
            .map_err(|e| format!("trace failed schema check: {e}"))?;
        text
    } else {
        let text = mfb_obs::export::to_chrome(&trace.events);
        mfb_obs::export::check_chrome(&text)
            .map_err(|e| format!("trace failed schema check: {e}"))?;
        text
    };
    std::fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?;

    eprintln!(
        "trace: {} events ({} spans, {} counters, {} instants) in {:.1} ms -> {path}",
        trace.events.len(),
        trace.of_kind(mfb_obs::EventKind::Span).count(),
        trace.of_kind(mfb_obs::EventKind::Counter).count(),
        trace.of_kind(mfb_obs::EventKind::Instant).count(),
        trace.wall_ns as f64 / 1e6,
    );
    for s in mfb_obs::stage_summaries(&trace.events) {
        eprintln!(
            "trace: {:<18} {:>5} spans  total {:>9.3} ms  max {:>9.3} ms",
            s.name, s.count, s.total_ms, s.max_ms
        );
    }
    for c in mfb_obs::counter_totals(&trace.events) {
        eprintln!("trace: {:<18} {:>12}", c.name, c.total);
    }
    Ok(code)
}

/// Adapter for commands whose success always exits 0.
fn ok(_: ()) -> ExitCode {
    ExitCode::SUCCESS
}

const HELP: &str = "\
mfb - physical synthesis for flow-based microfluidic biochips with
distributed channel storage (Chen et al., DATE 2019)

USAGE:
    mfb list                       list benchmarks
    mfb table1                     regenerate the paper's Table I
    mfb fig8                       regenerate Fig. 8 (channel cache time)
    mfb fig9                       regenerate Fig. 9 (channel wash time)
    mfb motivating                 run the Fig. 2(a) running example
    mfb run <bench> [options]      synthesize one benchmark
        --flow ours|ba             which flow (default: ours)
        --svg <file>               write the layout as SVG
        --map                      print the ASCII layout
        --gantt                    print the schedule Gantt chart
        --heat                     print the channel-occupancy heatmap
        --save <file.json>         archive the full solution as JSON
        --timeout <secs>           abort with `deadline exceeded` if
                                   synthesis runs past the budget
    mfb run-file <file.assay>      synthesize a user-defined assay
                                   (same options as `run`; the file must
                                   contain an `alloc` line; `flow` and
                                   `defect` statements in the file are
                                   honored, `--flow` overriding the former)
    mfb fmt <file.assay>... [--check]
                                   rewrite assay files in the canonical
                                   DSL form; with --check, exit 1 if any
                                   file is not already canonical (for CI)
    mfb audit <bench>              physical audits of a synthesized chip:
                                   transport-time slack under a pressure-
                                   driven flow model, occupied area vs a
                                   conventional dedicated-storage design,
                                   and the control-layer estimate
    mfb events <bench> [--flow f]  chronological chip event log
    mfb validate <file.json> <bench>
                                   load an archived solution and replay it
                                   through the independent validator
    mfb verify <bench|file.assay> [options]
                                   run the unified design-rule checker and
                                   exit with its worst severity
                                   (0 clean, 1 warnings, 2 errors)
        --flow ours|ba             which flow (default: ours)
        --format pretty|json|sarif output format (default: pretty)
        --out <file>               write the report to a file
        --only <RULE-ID>           run only the listed rules (repeatable)
        --skip <RULE-ID>           turn one rule off (repeatable;
                                   --disable is an alias)
        --list-rules               list all design rules and exit
    mfb analyze <bench|file.assay> [options]
                                   run the cross-stage dataflow analyses
                                   (contamination taint, storage liveness,
                                   valve conflicts) and exit with the
                                   worst severity (0 clean, 1 warnings,
                                   2 errors)
        --flow ours|ba             which flow (default: ours)
        --format pretty|json|sarif output format (default: pretty)
        --out <file>               write the report to a file
        --only <RULE-ID>           run only the listed rules (repeatable)
        --skip <RULE-ID>           turn one rule off (repeatable)
        --inject conflict|wash-gap corrupt the routed solution with a
                                   seeded defect first (CI fixture)
        --list-rules               list the ANA-* rule catalog and exit
    mfb faults [options]           seeded Monte-Carlo defect injection:
                                   sample defect maps, synthesize around
                                   them with the resilient escalation
                                   ladder, DRC-check every survivor
        --sweep                    sweep defect severities over the
                                   Table-I benchmarks (survival rate and
                                   quality-degradation table)
        --bench <name>             restrict to one benchmark (default:
                                   PCR, or all of Table I with --sweep)
        --trials <n>               defect maps per severity (default: 5)
        --seed <s>                 base RNG seed (default: 1)
        --flow ours|ba             which flow (default: ours)
        --timeout <secs>           per-trial resynthesis budget; expired
                                   trials count as non-survivors
    mfb bench [options]            tracked perf baseline: time the
                                   optimized SA and router against their
                                   frozen references on every Table-I
                                   benchmark (see BENCH_synthesis.json)
        --json                     emit JSON instead of the text table
                                   (includes MFB_THREADS, the repeat
                                   count, and per-stage cache counters)
        --out <file>               write the report to a file
        --repeats <n>              timed repetitions, best-of (default: 3)
    mfb batch <manifest.json>      pipelined batch synthesis through the
                                   content-addressed stage cache; reports
                                   assays/sec and cache hit/miss counters
                                   (exit 1 if any job fails)
        --threads <n>              worker threads (sets MFB_THREADS)
        --warm                     pre-populate the cache with one
                                   untimed pass before the timed batch
        --json                     emit the report as JSON
        --out <file>               write the report to a file
        --timeout <secs>           per-job budget; expired jobs fail with
                                   a typed `deadline exceeded` error
    mfb serve [options]            long-running synthesis daemon speaking
                                   line-delimited JSON (submit/status/
                                   result/cancel/stats/drain); SIGTERM or
                                   `drain` finishes queued work, writes a
                                   final cache snapshot, and exits
        --listen <addr>            host:port, or a path (with a `/`) for
                                   a Unix socket (default: 127.0.0.1:7411)
        --cache-dir <dir>          persist the stage cache here; restarts
                                   over the same dir start warm
        --workers <n>              worker threads (default: MFB_THREADS)
        --queue-cap <n>            bounded queue size (default: 64)
        --client-cap <n>           per-client in-flight cap (default: 8)
        --retry-max <n>            attempt cap for transient (panic)
                                   failures (default: 3)
        --snapshot-every <n>       jobs between cache snapshots
                                   (default: 1)
    mfb client <addr> [request]    send one JSON request line to a daemon
                                   and print the response; with no
                                   request, forward stdin line by line
    mfb trace <command> [args...]  run any command with structured
                                   tracing on: per-stage spans, SA/A*
                                   counters, cache hit/miss and recovery
                                   rung events; prints a stage summary
                                   to stderr
        --out <file>               trace file (default: trace.json)
        --format jsonl|chrome      export format (default: by extension,
                                   .jsonl = JSON Lines, else Chrome
                                   trace-event JSON for chrome://tracing)
    (any command) --trace <file>   shorthand for `mfb trace --out <file>`
    mfb ablation                   binding/weight ablation study
";

fn wash() -> LogLinearWash {
    LogLinearWash::paper_calibrated()
}

fn cmd_list() -> Result<(), String> {
    println!(
        "{:<12} {:>4} {:>12} {:>7} {:>7}",
        "Benchmark", "Ops", "Components", "Edges", "Depth"
    );
    for b in table1_benchmarks() {
        println!(
            "{:<12} {:>4} {:>12} {:>7} {:>7}",
            b.name,
            b.graph.len(),
            b.allocation.to_string(),
            b.graph.edge_count(),
            b.graph.depth()
        );
    }
    Ok(())
}

fn compare_all() -> Result<Vec<ComparisonRow>, String> {
    let lib = ComponentLibrary::default();
    let benches = table1_benchmarks();
    // Benchmarks compare concurrently (bounded by MFB_THREADS); folding the
    // ordered results reports the same (lowest-index) error a serial scan
    // would have hit first.
    mfb_model::par::par_map_ordered(benches.len(), |i| {
        let b = &benches[i];
        ComparisonRow::compare(b.name, &b.graph, b.allocation, &lib, &wash())
            .map_err(|e| format!("{}: {e}", b.name))
    })
    .into_iter()
    .collect()
}

fn cmd_table1() -> Result<(), String> {
    let rows = compare_all()?;
    print!("{}", table1_text(&rows));
    Ok(())
}

fn cmd_fig(which: u8) -> Result<(), String> {
    let rows = compare_all()?;
    if which == 8 {
        print!("{}", fig8_text(&rows));
    } else {
        print!("{}", fig9_text(&rows));
    }
    Ok(())
}

fn synthesize(b: &Benchmark, flow: &str) -> Result<(ComponentSet, Solution), String> {
    synthesize_budgeted(b, flow, &Budget::unlimited())
}

fn synthesize_budgeted(
    b: &Benchmark,
    flow: &str,
    budget: &Budget,
) -> Result<(ComponentSet, Solution), String> {
    let comps = b.components(&ComponentLibrary::default());
    let synth = match flow {
        "ours" => Synthesizer::paper_dcsa(),
        "ba" => Synthesizer::paper_baseline(),
        other => return Err(format!("unknown flow `{other}` (expected ours|ba)")),
    };
    let solution = synth
        .synthesize_with(
            &b.graph,
            &comps,
            &wash(),
            &DefectMap::pristine(),
            None,
            budget,
        )
        .map_err(|e| e.to_string())?;
    Ok((comps, solution))
}

/// Parses the value of a `--timeout <secs>` flag: a finite, positive
/// number of seconds.
fn parse_timeout_secs(value: Option<&String>) -> Result<f64, String> {
    let raw = value.ok_or("--timeout needs a number of seconds")?;
    let secs: f64 = raw.parse().map_err(|e| format!("--timeout: {e}"))?;
    if !secs.is_finite() || secs <= 0.0 {
        return Err("--timeout must be a positive number of seconds".into());
    }
    Ok(secs)
}

/// A fresh [`Budget`] for `timeout_secs` (the deadline starts now), or
/// an unlimited one when the flag was absent.
fn budget_for(timeout_secs: Option<f64>) -> Budget {
    match timeout_secs {
        Some(s) => Budget::with_timeout(std::time::Duration::from_secs_f64(s)),
        None => Budget::unlimited(),
    }
}

fn print_solution(name: &str, comps: &ComponentSet, solution: &Solution) {
    let m = SolutionMetrics::of(solution, comps);
    println!("benchmark: {name}");
    println!("  execution time     : {}", m.execution_time);
    println!("  resource util      : {:.1}%", m.utilization * 100.0);
    println!("  channel length     : {:.0} mm", m.channel_length_mm);
    println!("  channel cache time : {}", m.cache_time);
    println!("  channel wash time  : {}", m.channel_wash_time);
    println!("  component washes   : {}", m.component_wash_time);
    println!("  routing delay      : {}", m.total_delay);
    println!("  in-place deliveries: {}", m.in_place);
    println!("  transports routed  : {}", m.transports);
    println!("  placement attempts : {}", solution.attempts);
    let control =
        mfb_control::ControlEstimate::of_chip(&solution.routing, &solution.placement, comps);
    println!("  control estimate   : {control}");
}

fn cmd_motivating() -> Result<(), String> {
    let b = motivating_example();
    let (comps, ours) = synthesize(&b, "ours")?;
    let (_, ba) = synthesize(&b, "ba")?;
    println!("== Fig. 2(a) running example ==\n");
    println!("-- our flow --");
    print_solution(b.name, &comps, &ours);
    println!("\n{}", render_gantt(&ours.schedule, &comps));
    println!("-- baseline --");
    print_solution(b.name, &comps, &ba);
    println!("\n{}", render_gantt(&ba.schedule, &comps));
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let mut bench: Option<String> = None;
    let mut flow = "ours".to_string();
    let mut svg_out: Option<String> = None;
    let mut want_map = false;
    let mut want_gantt = false;
    let mut want_heat = false;
    let mut save: Option<String> = None;
    let mut timeout: Option<f64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--flow" => flow = it.next().ok_or("--flow needs a value")?.clone(),
            "--svg" => svg_out = Some(it.next().ok_or("--svg needs a file")?.clone()),
            "--map" => want_map = true,
            "--gantt" => want_gantt = true,
            "--heat" => want_heat = true,
            "--save" => save = Some(it.next().ok_or("--save needs a file")?.clone()),
            "--timeout" => timeout = Some(parse_timeout_secs(it.next())?),
            other if bench.is_none() => bench = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let bench = bench.ok_or("usage: mfb run <benchmark> [--flow ours|ba]")?;
    let b = benchmark_by_name(&bench)
        .ok_or_else(|| format!("unknown benchmark `{bench}`; see `mfb list`"))?;
    let (comps, solution) = synthesize_budgeted(&b, &flow, &budget_for(timeout))?;
    print_solution(b.name, &comps, &solution);

    let report = solution.verify(&b.graph, &comps, &wash());
    let valid = report.is_valid();
    if valid {
        println!("  replay validation  : OK");
    } else {
        println!(
            "  replay validation  : {} violations!",
            report.violations.len()
        );
        for v in &report.violations {
            println!("    {v}");
        }
    }

    if want_gantt {
        println!("\n{}", render_gantt(&solution.schedule, &comps));
    }
    if want_map {
        println!(
            "\n{}",
            render_ascii(&solution.placement, &comps, Some(&solution.routing))
        );
    }
    if want_heat {
        println!(
            "\n{}",
            render_heatmap(&solution.placement, &solution.routing)
        );
    }
    if let Some(path) = svg_out {
        let svg = render_svg(&solution.placement, &comps, Some(&solution.routing));
        std::fs::write(&path, svg).map_err(|e| format!("writing {path}: {e}"))?;
        println!("layout written to {path}");
    }
    if let Some(path) = save {
        let json = serde_json::to_string_pretty(&solution)
            .map_err(|e| format!("serializing solution: {e}"))?;
        std::fs::write(&path, json).map_err(|e| format!("writing {path}: {e}"))?;
        println!("solution written to {path}");
    }
    Ok(if valid {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

/// The synthesis configuration for an assay: an explicit `--flow` flag
/// wins, then the file's own `flow` statement, then the paper's DCSA
/// flow; the file's `t_c=`/`seed=` settings overlay the base either way.
fn config_for_flow(flag: Option<&str>, file: &FlowDecl) -> Result<SynthesisConfig, String> {
    let mut config = match flag {
        Some("ours") | Some("dcsa") => SynthesisConfig::paper_dcsa(),
        Some("ba") | Some("baseline") => SynthesisConfig::paper_baseline(),
        Some(other) => {
            return Err(format!(
                "unknown flow `{other}` (expected ours|dcsa|ba|baseline)"
            ))
        }
        None => match file.kind {
            Some(FlowKind::Baseline) => SynthesisConfig::paper_baseline(),
            _ => SynthesisConfig::paper_dcsa(),
        },
    };
    if let Some(t_c) = file.t_c {
        config.t_c = t_c;
    }
    if let Some(seed) = file.seed {
        config = config.with_seed(seed);
    }
    Ok(config)
}

/// `mfb fmt <file.assay>... [--check]`: rewrites assay files into the
/// canonical DSL form (or, with `--check`, exits 1 if any file differs
/// without touching it).
fn cmd_fmt(args: &[String]) -> Result<ExitCode, String> {
    let mut check = false;
    let mut files: Vec<String> = Vec::new();
    for a in args {
        match a.as_str() {
            "--check" => check = true,
            other if other.starts_with("--") => {
                return Err(format!("unexpected argument `{other}`"))
            }
            other => files.push(other.to_string()),
        }
    }
    if files.is_empty() {
        return Err("usage: mfb fmt <file.assay>... [--check]".into());
    }
    let mut dirty = 0usize;
    for file in &files {
        let text = std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
        let ast = parse_assay_ast(&text).map_err(|e| format!("{file}: {e}"))?;
        let formatted = write_assay_ast(&ast);
        if formatted == text {
            continue;
        }
        if check {
            eprintln!("{file}: not canonically formatted (run `mfb fmt {file}`)");
            dirty += 1;
        } else {
            std::fs::write(file, &formatted).map_err(|e| format!("writing {file}: {e}"))?;
            println!("{file}: reformatted");
        }
    }
    Ok(if dirty > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn cmd_run_file(args: &[String]) -> Result<ExitCode, String> {
    let mut file: Option<String> = None;
    let mut flow: Option<String> = None;
    let mut svg_out: Option<String> = None;
    let mut want_map = false;
    let mut want_gantt = false;
    let mut timeout: Option<f64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--flow" => flow = Some(it.next().ok_or("--flow needs a value")?.clone()),
            "--svg" => svg_out = Some(it.next().ok_or("--svg needs a file")?.clone()),
            "--map" => want_map = true,
            "--gantt" => want_gantt = true,
            "--timeout" => timeout = Some(parse_timeout_secs(it.next())?),
            other if file.is_none() => file = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let file = file.ok_or("usage: mfb run-file <file.assay> [--flow ours|ba]")?;
    let text = std::fs::read_to_string(&file).map_err(|e| format!("reading {file}: {e}"))?;
    let assay = parse_assay(&text).map_err(|e| format!("{file}: {e}"))?;
    let alloc = assay
        .allocation
        .ok_or("the assay file must contain an `alloc M H F D` line")?;
    let comps = alloc.instantiate(&ComponentLibrary::default());
    let synth = Synthesizer::new(config_for_flow(flow.as_deref(), &assay.flow)?);
    let solution = synth
        .synthesize_with(
            &assay.graph,
            &comps,
            &wash(),
            &assay.defects,
            None,
            &budget_for(timeout),
        )
        .map_err(|e| e.to_string())?;
    print_solution(assay.graph.name(), &comps, &solution);
    let report = solution.verify(&assay.graph, &comps, &wash());
    let valid = report.is_valid();
    println!(
        "  replay validation  : {}",
        if valid {
            "OK".to_string()
        } else {
            format!("{} violations", report.violations.len())
        }
    );
    if want_gantt {
        println!("\n{}", render_gantt(&solution.schedule, &comps));
    }
    if want_map {
        println!(
            "\n{}",
            render_ascii(&solution.placement, &comps, Some(&solution.routing))
        );
    }
    if let Some(path) = svg_out {
        let svg = render_svg(&solution.placement, &comps, Some(&solution.routing));
        std::fs::write(&path, svg).map_err(|e| format!("writing {path}: {e}"))?;
        println!("layout written to {path}");
    }
    Ok(if valid {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

fn cmd_events(args: &[String]) -> Result<(), String> {
    let mut bench: Option<String> = None;
    let mut flow = "ours".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--flow" => flow = it.next().ok_or("--flow needs a value")?.clone(),
            other if bench.is_none() => bench = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let bench = bench.ok_or("usage: mfb events <benchmark> [--flow ours|ba]")?;
    let b = benchmark_by_name(&bench)
        .ok_or_else(|| format!("unknown benchmark `{bench}`; see `mfb list`"))?;
    let (_comps, solution) = synthesize(&b, &flow)?;
    let log = mfb_sim::prelude::event_log(&solution.schedule, &solution.routing);
    print!("{}", mfb_sim::prelude::render_event_log(&log));
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let [file, bench] = args else {
        return Err("usage: mfb validate <file.json> <benchmark>".into());
    };
    let text = std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
    let solution: Solution = serde_json::from_str(&text).map_err(|e| format!("{file}: {e}"))?;
    let b = benchmark_by_name(bench)
        .ok_or_else(|| format!("unknown benchmark `{bench}`; see `mfb list`"))?;
    let comps = b.components(&ComponentLibrary::default());
    let report = solution.verify(&b.graph, &comps, &wash());
    if report.is_valid() {
        println!(
            "{file}: physically executable on {} ({} transports, makespan {:.1}s)",
            b.name,
            solution.routing.paths.len(),
            report.stats.makespan.as_secs_f64()
        );
        Ok(())
    } else {
        for v in &report.violations {
            eprintln!("  {v}");
        }
        Err(format!("{file}: {} violations", report.violations.len()))
    }
}

/// Validates the shared `--only`/`--skip` rule selection of `verify` and
/// `analyze`: every id must exist, so a typo cannot silently pass a check.
/// `--only` keeps just the listed rules; `--skip` is subtractive.
fn validate_rule_ids(
    command: &str,
    known: &[&str],
    only: &[String],
    skip: &[String],
) -> Result<(), String> {
    for id in only.iter().chain(skip.iter()) {
        if !known.contains(&id.as_str()) {
            return Err(format!(
                "unknown rule `{id}`; see `mfb {command} --list-rules`"
            ));
        }
    }
    Ok(())
}

/// Prints the `--list-rules` table shared by `verify` and `analyze`.
fn print_rule_table(rules: &[mfb_verify::RuleInfo], is_enabled: impl Fn(&str) -> bool) {
    println!(
        "{:<14} {:<8} {:<28} description",
        "rule", "severity", "name"
    );
    for r in rules {
        let state = if is_enabled(r.id) { "" } else { " (disabled)" };
        println!(
            "{:<14} {:<8} {:<28} {}{state}",
            r.id, r.severity, r.name, r.description
        );
    }
}

/// A resolved `verify`/`analyze` target: the assay, its components, and —
/// when the target is a DSL file — its `flow` constraints and `defect`
/// statements (empty and pristine for benchmarks).
struct AssayTarget {
    graph: SequencingGraph,
    comps: ComponentSet,
    flow: FlowDecl,
    defects: DefectMap,
}

/// Resolves a benchmark name or `.assay` file path into an assay and its
/// component allocation.
fn resolve_assay_target(target: &str) -> Result<AssayTarget, String> {
    if let Some(b) = benchmark_by_name(target) {
        Ok(AssayTarget {
            graph: b.graph.clone(),
            comps: b.components(&ComponentLibrary::default()),
            flow: FlowDecl::default(),
            defects: DefectMap::pristine(),
        })
    } else if std::path::Path::new(target).exists() {
        let text = std::fs::read_to_string(target).map_err(|e| format!("reading {target}: {e}"))?;
        let assay = parse_assay(&text).map_err(|e| format!("{target}: {e}"))?;
        let alloc = assay
            .allocation
            .ok_or("the assay file must contain an `alloc M H F D` line")?;
        Ok(AssayTarget {
            graph: assay.graph,
            comps: alloc.instantiate(&ComponentLibrary::default()),
            flow: assay.flow,
            defects: assay.defects,
        })
    } else {
        Err(format!(
            "`{target}` is neither a benchmark (see `mfb list`) nor an assay file"
        ))
    }
}

fn cmd_verify(args: &[String]) -> Result<ExitCode, String> {
    use mfb_verify::prelude::*;

    let mut target: Option<String> = None;
    let mut flow: Option<String> = None;
    let mut format = "pretty".to_string();
    let mut out: Option<String> = None;
    let mut only: Vec<String> = Vec::new();
    let mut skip: Vec<String> = Vec::new();
    let mut list_rules = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--flow" => flow = Some(it.next().ok_or("--flow needs a value")?.clone()),
            "--format" => format = it.next().ok_or("--format needs a value")?.clone(),
            "--out" => out = Some(it.next().ok_or("--out needs a file")?.clone()),
            "--only" => only.push(it.next().ok_or("--only needs a rule id")?.clone()),
            // `--disable` predates `--skip` and stays as an alias.
            "--skip" | "--disable" => skip.push(it.next().ok_or("--skip needs a rule id")?.clone()),
            "--list-rules" => list_rules = true,
            other if target.is_none() => target = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }

    let mut registry = RuleRegistry::with_all_rules();
    let known: Vec<&str> = registry.rules().map(|r| r.id).collect();
    validate_rule_ids("verify", &known, &only, &skip)?;
    if !only.is_empty() {
        registry.retain_only(only.iter().map(String::as_str));
    }
    for id in &skip {
        registry.disable(id);
    }

    if list_rules {
        let rules: Vec<_> = registry.rules().collect();
        print_rule_table(&rules, |id| registry.is_enabled(id));
        return Ok(ExitCode::SUCCESS);
    }

    let target =
        target.ok_or("usage: mfb verify <bench|file.assay> [--format pretty|json|sarif]")?;
    let t = resolve_assay_target(&target)?;

    let synth = Synthesizer::new(config_for_flow(flow.as_deref(), &t.flow)?);
    let router = synth.config().router;
    let solution = synth
        .synthesize_with_defects(&t.graph, &t.comps, &wash(), &t.defects)
        .map_err(|e| e.to_string())?;
    let report = solution.drc_with(&t.graph, &t.comps, &wash(), router, &registry);

    let rendered = match format.as_str() {
        "pretty" => render_pretty(&report),
        "json" => render_json(&report),
        "sarif" => render_sarif(&report, &registry),
        other => {
            return Err(format!(
                "unknown format `{other}` (expected pretty|json|sarif)"
            ))
        }
    };
    match out {
        Some(path) => {
            std::fs::write(&path, &rendered).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("report written to {path}");
        }
        None => print!("{rendered}"),
    }
    Ok(ExitCode::from(report.exit_code() as u8))
}

fn cmd_analyze(args: &[String]) -> Result<ExitCode, String> {
    use mfb_analyze::prelude::*;
    use mfb_verify::prelude::*;

    let mut target: Option<String> = None;
    let mut flow: Option<String> = None;
    let mut format = "pretty".to_string();
    let mut out: Option<String> = None;
    let mut only: Vec<String> = Vec::new();
    let mut skip: Vec<String> = Vec::new();
    let mut inject: Option<String> = None;
    let mut list_rules = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--flow" => flow = Some(it.next().ok_or("--flow needs a value")?.clone()),
            "--format" => format = it.next().ok_or("--format needs a value")?.clone(),
            "--out" => out = Some(it.next().ok_or("--out needs a file")?.clone()),
            "--only" => only.push(it.next().ok_or("--only needs a rule id")?.clone()),
            "--skip" => skip.push(it.next().ok_or("--skip needs a rule id")?.clone()),
            "--inject" => inject = Some(it.next().ok_or("--inject needs a defect kind")?.clone()),
            "--list-rules" => list_rules = true,
            other if target.is_none() => target = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }

    let mut analyzer = Analyzer::with_all_rules();
    let rules = analysis_rules();
    let known: Vec<&str> = rules.iter().map(|r| r.id).collect();
    validate_rule_ids("analyze", &known, &only, &skip)?;
    if !only.is_empty() {
        analyzer.retain_only(only.iter().map(String::as_str));
    }
    for id in &skip {
        analyzer.disable(id);
    }

    if list_rules {
        print_rule_table(&rules, |id| analyzer.is_enabled(id));
        return Ok(ExitCode::SUCCESS);
    }

    let target =
        target.ok_or("usage: mfb analyze <bench|file.assay> [--format pretty|json|sarif]")?;
    let t = resolve_assay_target(&target)?;

    let synth = Synthesizer::new(config_for_flow(flow.as_deref(), &t.flow)?);
    let router = synth.config().router;
    let mut solution = synth
        .synthesize_with_defects(&t.graph, &t.comps, &wash(), &t.defects)
        .map_err(|e| e.to_string())?;
    if let Some(kind) = &inject {
        inject_defect(&mut solution, kind)?;
        eprintln!("injected `{kind}` defect into the routed solution");
    }
    let report = solution.analyze_with(&t.graph, &t.comps, &wash(), router, &analyzer);

    let rendered = match format.as_str() {
        "pretty" => render_pretty(&report),
        "json" => render_json(&report),
        "sarif" => render_sarif_with(&report, &rules),
        other => {
            return Err(format!(
                "unknown format `{other}` (expected pretty|json|sarif)"
            ))
        }
    };
    match out {
        Some(path) => {
            std::fs::write(&path, &rendered).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("report written to {path}");
        }
        None => print!("{rendered}"),
    }
    Ok(ExitCode::from(report.exit_code() as u8))
}

/// Corrupts a routed solution with a known defect so the analyzer's
/// detection can be demonstrated (and CI-checked) on real benchmarks.
fn inject_defect(solution: &mut mfb_core::prelude::Solution, kind: &str) -> Result<(), String> {
    let paths = &mut solution.routing.paths;
    let donor = paths
        .iter()
        .find(|p| !p.is_empty())
        .ok_or("cannot inject: the solution has no routed paths")?;
    let donor_fluid = donor.fluid;
    let cell = donor.cells[0];
    let window = donor.windows[0];
    let victim = paths
        .iter_mut()
        .find(|p| p.fluid != donor_fluid && !p.is_empty())
        .ok_or("cannot inject: need two routed fluids")?;
    match kind {
        // A different fluid books the donor's head cell at the same time:
        // conflict classes 1–2, caught by replay and ANA-TAINT-001 alike.
        "conflict" => {
            victim.cells.push(cell);
            victim.windows.push(window);
        }
        // The different fluid arrives one tick after the donor leaves —
        // inside the residue horizon, before any wash can complete.
        "wash-gap" => {
            let start = window.end + mfb_model::prelude::Duration::from_ticks(1);
            let end = start + mfb_model::prelude::Duration::from_secs(2);
            victim.cells.push(cell);
            victim
                .windows
                .push(mfb_model::prelude::Interval::new(start, end));
        }
        other => {
            return Err(format!(
                "unknown defect kind `{other}` (expected conflict|wash-gap)"
            ))
        }
    }
    Ok(())
}

/// Aggregated outcome of one (benchmark, severity) cell of the sweep.
struct SweepCell {
    survived: u32,
    trials: u32,
    attempts_sum: u32,
    degradation_sum: f64,
    midassay_survived: u32,
    midassay_trials: u32,
    drc_fault_findings: usize,
}

fn cmd_faults(args: &[String]) -> Result<(), String> {
    use mfb_sim::prelude::{assess_faults, FaultEvent, FaultKind};
    use mfb_verify::prelude::{RuleRegistry, VerifyInput};

    let mut sweep = false;
    let mut bench: Option<String> = None;
    let mut trials: u32 = 5;
    let mut seed: u64 = 1;
    let mut flow = "ours".to_string();
    let mut timeout: Option<f64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sweep" => sweep = true,
            "--bench" => bench = Some(it.next().ok_or("--bench needs a name")?.clone()),
            "--timeout" => timeout = Some(parse_timeout_secs(it.next())?),
            "--trials" => {
                trials = it
                    .next()
                    .ok_or("--trials needs a number")?
                    .parse()
                    .map_err(|e| format!("--trials: {e}"))?;
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a number")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--flow" => flow = it.next().ok_or("--flow needs a value")?.clone(),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let trials = trials.max(1);

    let benches: Vec<Benchmark> = match &bench {
        Some(name) => vec![benchmark_by_name(name)
            .ok_or_else(|| format!("unknown benchmark `{name}`; see `mfb list`"))?],
        None if sweep => table1_benchmarks(),
        None => vec![benchmark_by_name("PCR").expect("PCR is a Table-I benchmark")],
    };
    // (cell block probability, component death probability) per severity.
    let severities: &[(f64, f64)] = if sweep {
        &[(0.0, 0.0), (0.01, 0.05), (0.03, 0.10), (0.05, 0.20)]
    } else {
        &[(0.02, 0.10)]
    };
    let synth = match flow.as_str() {
        "ours" => Synthesizer::paper_dcsa(),
        "ba" => Synthesizer::paper_baseline(),
        other => return Err(format!("unknown flow `{other}` (expected ours|ba)")),
    };
    let policy = RecoveryPolicy::standard();
    let registry = RuleRegistry::with_all_rules();

    println!(
        "fault-injection sweep: seed {seed}, {trials} trial(s)/severity, flow {flow}, \
         ladder reseed={} grow={} relax-tc={} rebind={}",
        policy.reseed_attempts, policy.grow_steps, policy.relax_tc_steps, policy.rebind_attempts
    );
    println!(
        "{:<10} {:>7} {:>7} {:>9} {:>9} {:>10} {:>13} {:>10}",
        "benchmark",
        "cell_p",
        "comp_p",
        "survival",
        "mean_att",
        "mean_degr",
        "midassay_surv",
        "drc_faults"
    );

    for (bi, b) in benches.iter().enumerate() {
        let comps = b.components(&ComponentLibrary::default());
        let pristine = synth
            .synthesize(&b.graph, &comps, &wash())
            .map_err(|e| format!("{}: pristine synthesis failed: {e}", b.name))?;
        let grid = pristine.placement.grid();
        let pristine_completion = pristine.routing.completion().as_secs_f64();
        let midassay_at = Instant::from_secs((pristine_completion / 2.0) as u64);

        for (li, &(cell_p, comp_p)) in severities.iter().enumerate() {
            // Every trial is a pure function of its trial seed, so trials
            // run concurrently (bounded by MFB_THREADS) and fold into the
            // cell in trial order — identical totals to the serial sweep,
            // including the order-sensitive f64 degradation sum.
            struct TrialOutcome {
                /// `(attempts, degradation %, DRC-FAULT-001 findings)` of a
                /// surviving resynthesis, if any.
                survivor: Option<(u32, f64, usize)>,
                /// Whether the pristine solution survived this trial's
                /// mid-assay fault (`None` when the trial drew no defects).
                midassay: Option<bool>,
            }
            let outcomes = mfb_model::par::par_map_ordered(trials as usize, |ti| {
                let trial = ti as u32;
                // Deterministic per (seed, benchmark, severity, trial).
                let trial_seed = seed
                    .wrapping_mul(0x0000_0100_0000_01B3)
                    .wrapping_add((bi as u64) << 40)
                    .wrapping_add((li as u64) << 20)
                    .wrapping_add(u64::from(trial));
                let defects = DefectMap::sample(grid, &comps, cell_p, comp_p, trial_seed);

                // Resynthesize around the defects with the full ladder.
                // Each trial gets a fresh budget (deadline measured from
                // its own start) and a private cache; an expired trial
                // simply yields no survivor, so the sweep's accounting
                // stays well-defined under `--timeout`.
                let outcome = match timeout {
                    Some(secs) => synth.synthesize_resilient_budgeted(
                        &b.graph,
                        &comps,
                        &wash(),
                        &defects,
                        &policy,
                        &StageCache::new(),
                        &budget_for(Some(secs)),
                    ),
                    None => {
                        synth.synthesize_resilient(&b.graph, &comps, &wash(), &defects, &policy)
                    }
                };
                let survivor = outcome.solution().map(|sol| {
                    let completion = sol.routing.completion().as_secs_f64();
                    let degradation =
                        (completion - pristine_completion) / pristine_completion * 100.0;
                    // DRC-FAULT-001: no artifact of the survivor may touch
                    // a defect.
                    let w = wash();
                    let input = VerifyInput::new(
                        &b.graph,
                        &comps,
                        &sol.schedule,
                        &sol.placement,
                        &sol.routing,
                        &w,
                        synth.config().router,
                    )
                    .with_defects(&defects);
                    let report = registry.run(&input);
                    let drc_faults = report
                        .diagnostics
                        .iter()
                        .filter(|d| d.rule == "DRC-FAULT-001")
                        .count();
                    (sol.attempts, degradation, drc_faults)
                });

                // Mid-assay: would the *pristine* solution, already
                // executing, survive this trial's first fault striking at
                // half-makespan without resynthesis?
                let midassay_fault = defects
                    .blocked_cells()
                    .first()
                    .map(|&c| FaultKind::CellBlocked(c))
                    .or_else(|| {
                        defects
                            .dead_components()
                            .first()
                            .map(|&c| FaultKind::ComponentDead(c))
                    });
                let midassay = midassay_fault.map(|kind| {
                    let impacts = assess_faults(
                        &pristine.schedule,
                        &pristine.placement,
                        &pristine.routing,
                        &[FaultEvent {
                            at: midassay_at,
                            kind,
                        }],
                    );
                    impacts.iter().all(|i| i.survives())
                });
                TrialOutcome { survivor, midassay }
            });

            let mut cell = SweepCell {
                survived: 0,
                trials,
                attempts_sum: 0,
                degradation_sum: 0.0,
                midassay_survived: 0,
                midassay_trials: 0,
                drc_fault_findings: 0,
            };
            for o in outcomes {
                if let Some((attempts, degradation, drc_faults)) = o.survivor {
                    cell.survived += 1;
                    cell.attempts_sum += attempts;
                    cell.degradation_sum += degradation;
                    cell.drc_fault_findings += drc_faults;
                }
                if let Some(survived) = o.midassay {
                    cell.midassay_trials += 1;
                    if survived {
                        cell.midassay_survived += 1;
                    }
                }
            }

            let mean_att = if cell.survived > 0 {
                f64::from(cell.attempts_sum) / f64::from(cell.survived)
            } else {
                0.0
            };
            let mean_degr = if cell.survived > 0 {
                cell.degradation_sum / f64::from(cell.survived)
            } else {
                0.0
            };
            let midassay = if cell.midassay_trials > 0 {
                format!("{}/{}", cell.midassay_survived, cell.midassay_trials)
            } else {
                "-".to_string()
            };
            println!(
                "{:<10} {:>7.2} {:>7.2} {:>6}/{:<2} {:>9.1} {:>+9.1}% {:>13} {:>10}",
                b.name,
                cell_p,
                comp_p,
                cell.survived,
                cell.trials,
                mean_att,
                mean_degr,
                midassay,
                cell.drc_fault_findings
            );
        }
    }
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let mut json = false;
    let mut out: Option<String> = None;
    let mut repeats: u32 = 3;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--out" => out = Some(it.next().ok_or("--out needs a path")?.clone()),
            "--repeats" => {
                repeats = it
                    .next()
                    .ok_or("--repeats needs a number")?
                    .parse()
                    .map_err(|e| format!("--repeats: {e}"))?;
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let report = mfb_bench::perf::perf_report(repeats.max(1));
    let text = if json {
        let mut s = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        s.push('\n');
        s
    } else {
        mfb_bench::perf::perf_text(&report)
    };
    match out {
        Some(path) => std::fs::write(&path, &text).map_err(|e| format!("{path}: {e}"))?,
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_batch(args: &[String]) -> Result<ExitCode, String> {
    use mfb_batch::prelude::*;

    let mut manifest: Option<String> = None;
    let mut json = false;
    let mut warm = false;
    let mut out: Option<String> = None;
    let mut timeout: Option<f64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--warm" => warm = true,
            "--out" => out = Some(it.next().ok_or("--out needs a path")?.clone()),
            "--timeout" => timeout = Some(parse_timeout_secs(it.next())?),
            "--threads" => {
                let n: usize = it
                    .next()
                    .ok_or("--threads needs a number")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                std::env::set_var("MFB_THREADS", n.to_string());
            }
            other if manifest.is_none() && !other.starts_with('-') => {
                manifest = Some(other.to_string());
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let manifest = manifest.ok_or("usage: mfb batch <manifest.json> [options]")?;
    let text = std::fs::read_to_string(&manifest).map_err(|e| format!("{manifest}: {e}"))?;
    let base_dir = std::path::Path::new(&manifest)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or_else(|| std::path::Path::new("."))
        .to_path_buf();
    let mut jobs = parse_manifest(&text, &base_dir).map_err(|e| e.to_string())?;
    // The budget's deadline starts now and is shared by the whole batch:
    // every job's checkpoints poll the same wall-clock cutoff, so a slow
    // batch degrades into typed per-job `deadline exceeded` failures
    // instead of hanging the invocation.
    if timeout.is_some() {
        let budget = budget_for(timeout);
        jobs = jobs
            .into_iter()
            .map(|j| j.with_budget(budget.clone()))
            .collect();
    }

    let cache = StageCache::new();
    if warm {
        // Untimed pre-pass: the reported batch then measures pure
        // warm-cache throughput.
        run_batch(&jobs, &cache);
    }
    let run = run_batch(&jobs, &cache);

    let rendered = if json {
        let mut s = serde_json::to_string_pretty(&run.report).map_err(|e| e.to_string())?;
        s.push('\n');
        s
    } else {
        batch_text(&run.report)
    };
    match out {
        Some(path) => std::fs::write(&path, &rendered).map_err(|e| format!("{path}: {e}"))?,
        None => print!("{rendered}"),
    }
    Ok(if run.report.failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Plain-text rendering of a batch report.
fn batch_text(report: &mfb_batch::prelude::BatchReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>3} {:>8} {:>9} {:>10} {:>5} {:>9} {:>9}",
        "job", "ok", "attempts", "exec_s", "chan_mm", "warm", "prep_ms", "solve_ms"
    );
    for o in &report.outcomes {
        let _ = writeln!(
            out,
            "{:<16} {:>3} {:>8} {:>9.1} {:>10.1} {:>5} {:>9.2} {:>9.2}{}",
            o.name,
            if o.ok { "yes" } else { "NO" },
            o.attempts,
            o.execution_secs,
            o.channel_length_mm,
            if o.warm_schedule { "yes" } else { "no" },
            o.prep_ms,
            o.solve_ms,
            match &o.error {
                Some(e) => format!("  {e}"),
                None => String::new(),
            }
        );
    }
    let _ = writeln!(
        out,
        "{}/{} jobs ok in {:.2}s on {} threads: {:.2} assays/s; cache {} hits / {} misses \
         ({} schedule validations)",
        report.ok,
        report.jobs,
        report.wall_seconds,
        report.threads,
        report.assays_per_sec,
        report.cache.hits(),
        report.cache.misses(),
        report.cache.schedule_validations
    );
    out
}

/// `mfb serve`: run the crash-safe synthesis daemon until SIGTERM,
/// SIGINT, or a `drain` request, then print the shutdown summary.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    use mfb_serve::prelude::*;

    let mut cfg = ServerConfig {
        listen: "127.0.0.1:7411".to_owned(),
        ..ServerConfig::default()
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--listen" => cfg.listen = it.next().ok_or("--listen needs an address")?.clone(),
            "--cache-dir" => {
                cfg.cache_dir = Some(std::path::PathBuf::from(
                    it.next().ok_or("--cache-dir needs a directory")?,
                ));
            }
            "--workers" => cfg.workers = parse_num(it.next(), "--workers")?,
            "--queue-cap" => {
                cfg.queue_cap = parse_num(it.next(), "--queue-cap")?;
                if cfg.queue_cap == 0 {
                    return Err("--queue-cap must be at least 1".into());
                }
            }
            "--client-cap" => {
                cfg.client_cap = parse_num(it.next(), "--client-cap")?;
                if cfg.client_cap == 0 {
                    return Err("--client-cap must be at least 1".into());
                }
            }
            "--retry-max" => cfg.retry_max = parse_num(it.next(), "--retry-max")?,
            "--snapshot-every" => {
                cfg.snapshot_every = parse_num(it.next(), "--snapshot-every")?;
                if cfg.snapshot_every == 0 {
                    return Err("--snapshot-every must be at least 1".into());
                }
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }

    let server = Server::bind(cfg).map_err(|e| format!("bind: {e}"))?;
    match server.local_addr() {
        Some(addr) => eprintln!("mfb serve: listening on {addr}"),
        None => eprintln!("mfb serve: listening"),
    }
    let summary = server.run().map_err(|e| format!("serve: {e}"))?;
    eprintln!(
        "mfb serve: drained; {} done, {} failed{}{}",
        summary.done,
        summary.failed,
        match summary.snapshot_entries {
            Some(n) => format!(", {n} cache entries snapshotted"),
            None => String::new(),
        },
        if summary.loaded.imported + summary.loaded.dropped > 0 {
            format!(
                " (started with {} imported / {} dropped)",
                summary.loaded.imported, summary.loaded.dropped
            )
        } else {
            String::new()
        }
    );
    Ok(())
}

fn parse_num<T>(value: Option<&String>, flag: &str) -> Result<T, String>
where
    T: std::str::FromStr,
    T::Err: std::fmt::Display,
{
    value
        .ok_or_else(|| format!("{flag} needs a number"))?
        .parse()
        .map_err(|e| format!("{flag}: {e}"))
}

/// `mfb client <addr> [request]`: one-shot (or stdin-driven) client for
/// the daemon's line-delimited JSON protocol. Responses are printed one
/// per line, exactly as received.
fn cmd_client(args: &[String]) -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut request: Option<String> = None;
    for a in args {
        if addr.is_none() {
            addr = Some(a.clone());
        } else if request.is_none() {
            request = Some(a.clone());
        } else {
            return Err(format!("unexpected argument `{a}`"));
        }
    }
    let addr = addr.ok_or("usage: mfb client <addr> [request-json]")?;

    // Same rule the server uses: a `/` means a Unix-socket path.
    if addr.contains('/') {
        #[cfg(unix)]
        {
            let stream = std::os::unix::net::UnixStream::connect(&addr)
                .map_err(|e| format!("{addr}: {e}"))?;
            return client_session(stream, request);
        }
        #[cfg(not(unix))]
        return Err("unix-socket paths are not supported on this platform".into());
    }
    let stream = std::net::TcpStream::connect(addr.as_str()).map_err(|e| format!("{addr}: {e}"))?;
    client_session(stream, request)
}

fn client_session<S: std::io::Read + std::io::Write>(
    stream: S,
    request: Option<String>,
) -> Result<(), String> {
    use std::io::{BufRead, BufReader};
    // One BufReader wraps the stream; writes go through `get_mut` (the
    // buffer only holds unread response bytes, so this is safe).
    let mut conn = BufReader::new(stream);
    let mut roundtrip = |line: &str| -> Result<(), String> {
        let line = line.trim();
        if line.is_empty() {
            return Ok(());
        }
        conn.get_mut()
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|()| conn.get_mut().flush())
            .map_err(|e| format!("send: {e}"))?;
        let mut response = String::new();
        let n = conn
            .read_line(&mut response)
            .map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".into());
        }
        print!("{response}");
        Ok(())
    };
    match request {
        Some(line) => roundtrip(&line),
        None => {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                let line = line.map_err(|e| format!("stdin: {e}"))?;
                roundtrip(&line)?;
            }
            Ok(())
        }
    }
}

fn cmd_audit(args: &[String]) -> Result<(), String> {
    let bench = args.first().ok_or("usage: mfb audit <benchmark>")?.clone();
    let b = benchmark_by_name(&bench)
        .ok_or_else(|| format!("unknown benchmark `{bench}`; see `mfb list`"))?;
    let (comps, solution) = synthesize(&b, "ours")?;

    println!("physical audits for {}:", b.name);

    // Transport-time slack: is the scheduler's constant t_c honest for the
    // routed channel lengths under realistic pumping pressure?
    let model = PressureDriven::typical_pdms();
    let audit = audit_transport_times(&solution, &model);
    println!(
        "  transport audit ({:.0} kPa, {:.0} um channels): {}",
        model.pressure_kpa,
        model.channel_height_um,
        if audit.is_sound() {
            format!(
                "all {} transports fit t_c (worst ratio {:.2})",
                audit.tasks.len(),
                audit.worst_ratio()
            )
        } else {
            format!("{} transports exceed t_c!", audit.violations().count())
        }
    );

    // Area vs a conventional dedicated-storage design.
    let area = area_report(&solution);
    println!(
        "  occupied area      : {:.0} mm^2 ({} fluids cached at peak)",
        area.occupied_mm2, area.peak_cached_fluids
    );
    println!(
        "  dedicated storage  : +{:.0} mm^2 equivalent ({:.0}% saved by DCSA)",
        area.dedicated_storage_equivalent_mm2,
        area.savings_fraction() * 100.0
    );

    // Wash realizability: can every channel wash actually be flushed with
    // buffer in its time gap?
    let plan = mfb_route::prelude::plan_washes(
        &solution.routing,
        &solution.schedule,
        &b.graph,
        &solution.placement,
        &wash(),
        &mfb_route::prelude::RouterConfig::paper(),
    );
    println!(
        "  wash plan          : {} flushes, {} incidental, {} unplannable ({:.0}% coverage)",
        plan.flushes.len(),
        plan.incidental,
        plan.unplanned.len(),
        plan.coverage() * 100.0
    );

    // Control layer.
    let control =
        mfb_control::ControlEstimate::of_chip(&solution.routing, &solution.placement, &comps);
    println!("  control layer      : {control}");
    Ok(())
}

fn cmd_ablation() -> Result<(), String> {
    use mfb_core::config::SynthesisConfig;
    let lib = ComponentLibrary::default();
    println!("Ablation study: each variant disables one design choice.\n");
    println!(
        "{:<12} {:>12} {:>10} {:>10} {:>12}",
        "Benchmark", "Variant", "Exec(s)", "Util(%)", "Channel(mm)"
    );
    println!("{}", "-".repeat(60));
    for b in table1_benchmarks() {
        if !matches!(b.name, "CPA" | "Synthetic4") {
            continue; // the paper-scale stress cases
        }
        let comps = b.allocation.instantiate(&lib);
        let variants: [(&str, SynthesisConfig); 5] = [
            ("full", SynthesisConfig::paper_dcsa()),
            ("no-case1", {
                let mut c = SynthesisConfig::paper_dcsa();
                c.binding = BindingRule::EarliestReady;
                c
            }),
            ("case1-any", {
                let mut c = SynthesisConfig::paper_dcsa();
                c.binding = BindingRule::StorageAwareUnordered;
                c
            }),
            ("no-weights", {
                let mut c = SynthesisConfig::paper_dcsa();
                c.router.wash_aware_weights = false;
                c
            }),
            ("cleanup", {
                let mut c = SynthesisConfig::paper_dcsa();
                c.optimize_channels = true;
                c
            }),
        ];
        for (name, mut cfg) in variants {
            cfg.max_placement_attempts = 64;
            match Synthesizer::new(cfg).synthesize(&b.graph, &comps, &wash()) {
                Ok(sol) => {
                    let m = SolutionMetrics::of(&sol, &comps);
                    println!(
                        "{:<12} {:>12} {:>10.0} {:>10.1} {:>12.0}",
                        b.name,
                        name,
                        m.execution_time.as_secs_f64(),
                        m.utilization * 100.0,
                        m.channel_length_mm
                    );
                }
                Err(e) => println!("{:<12} {:>12}   unroutable ({e})", b.name, name),
            }
        }
    }
    Ok(())
}
