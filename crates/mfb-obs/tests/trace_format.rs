//! Unit tests for the trace data model and exporters: JSONL and Chrome
//! trace-event outputs round-trip through serde and are accepted by the
//! minimal schema checks; malformed traces (NaN fields, non-monotone
//! timestamps, misused durations) are rejected.

#![cfg(feature = "trace")]

use mfb_obs::export::{check_chrome, check_events, check_jsonl, from_jsonl, to_chrome, to_jsonl};
use mfb_obs::{
    counter_totals, install, instant, stage_summaries, EventKind, Field, FieldValue,
    TraceCollector, TraceEvent,
};

/// Builds a small real trace through the public macro/guard API.
fn sample_trace() -> mfb_obs::Trace {
    let collector = TraceCollector::new();
    let guard = install(&collector);
    {
        let _outer = mfb_obs::obs_span!("stage.place", attempt = 0u64, seed = 42u64);
        {
            let _inner = mfb_obs::obs_span!("place.sa", components = 7u64);
            mfb_obs::obs_counter!("sa.proposals", 1000u64);
            mfb_obs::obs_counter!("sa.accepted", 300u64);
        }
        mfb_obs::obs_instant!("cache.placement.miss", stage = "placement");
    }
    drop(guard);
    collector.finish()
}

#[test]
fn jsonl_round_trips_and_passes_schema_check() {
    let trace = sample_trace();
    assert_eq!(trace.open_spans, 0, "all spans closed");
    assert!(!trace.events.is_empty());

    let jsonl = to_jsonl(&trace.events);
    assert_eq!(jsonl.lines().count(), trace.events.len());
    let parsed = from_jsonl(&jsonl).expect("jsonl parses back");
    assert_eq!(parsed, trace.events, "byte-level round-trip through serde");
    assert_eq!(check_jsonl(&jsonl), Ok(trace.events.len()));
}

#[test]
fn chrome_export_passes_schema_check_and_covers_all_kinds() {
    let trace = sample_trace();
    let chrome = to_chrome(&trace.events);
    assert_eq!(check_chrome(&chrome), Ok(trace.events.len()));
    // All three phase letters appear: complete spans, counters, instants.
    for ph in ["\"ph\":\"X\"", "\"ph\":\"C\"", "\"ph\":\"i\""] {
        assert!(chrome.contains(ph), "missing {ph} in {chrome}");
    }
}

#[test]
fn timestamps_are_monotone_and_spans_nest_within_parents() {
    let trace = sample_trace();
    let mut last = 0;
    for e in &trace.events {
        assert!(e.t_ns >= last, "sorted export is monotone");
        last = e.t_ns;
    }
    let outer = trace.spans_named("stage.place").next().expect("outer span");
    let inner = trace.spans_named("place.sa").next().expect("inner span");
    assert!(inner.t_ns >= outer.t_ns);
    assert!(inner.t_ns + inner.dur_ns <= outer.t_ns + outer.dur_ns);
    assert_eq!(outer.u64_field("seed"), Some(42));
}

fn event(seq: u64, t_ns: u64) -> TraceEvent {
    TraceEvent {
        seq,
        tid: 1,
        kind: EventKind::Instant,
        name: "x".to_string(),
        t_ns,
        dur_ns: 0,
        value: 0,
        fields: Vec::new(),
    }
}

#[test]
fn schema_check_rejects_malformed_traces() {
    // Non-monotone timestamps.
    let bad = vec![event(0, 10), event(1, 5)];
    assert!(check_events(&bad).unwrap_err().contains("monotone"));

    // NaN float field.
    let mut nan = event(0, 0);
    nan.fields.push(Field::new("ratio", f64::NAN));
    assert!(check_events(&[nan]).unwrap_err().contains("finite"));

    // Duration on a non-span event.
    let mut with_dur = event(0, 0);
    with_dur.dur_ns = 7;
    assert!(check_events(&[with_dur]).unwrap_err().contains("duration"));

    // Empty name.
    let mut unnamed = event(0, 0);
    unnamed.name.clear();
    assert!(check_events(&[unnamed]).unwrap_err().contains("name"));

    // The same malformations are caught after JSONL serialization.
    let bad_jsonl = to_jsonl(&[event(0, 10), event(1, 5)]);
    assert!(check_jsonl(&bad_jsonl).is_err());
}

#[test]
fn field_values_round_trip_every_variant() {
    let mut e = event(0, 0);
    e.fields = vec![
        Field::new("u", 3u64),
        Field::new("i", -4i64),
        Field::new("f", 2.5f64),
        Field::new("s", "text"),
        Field::new("b", true),
    ];
    let json = serde_json::to_string(&e).unwrap();
    let back: TraceEvent = serde_json::from_str(&json).unwrap();
    assert_eq!(back, e);
    assert_eq!(back.field("f"), Some(&FieldValue::F64(2.5)));
    assert_eq!(back.str_field("s"), Some("text"));
}

#[test]
fn summaries_aggregate_spans_and_counters_deterministically() {
    let trace = sample_trace();
    let stages = stage_summaries(&trace.events);
    let names: Vec<&str> = stages.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, ["place.sa", "stage.place"], "sorted by name");
    for s in &stages {
        assert_eq!(s.count, 1);
        assert!(s.total_ms >= 0.0 && s.max_ms <= s.total_ms + 1e-9);
        assert_eq!(s.hist_us_log2.iter().sum::<u64>(), s.count);
    }
    let counters = counter_totals(&trace.events);
    assert_eq!(counters.len(), 2);
    assert_eq!(counters[0].name, "sa.accepted");
    assert_eq!(counters[0].total, 300);
    assert_eq!(counters[1].name, "sa.proposals");
    assert_eq!(counters[1].total, 1000);
}

#[test]
fn no_collector_means_no_recording_and_finish_counts_open_spans() {
    // No install: probes are inert.
    {
        let _span = mfb_obs::obs_span!("stage.route");
        mfb_obs::obs_counter!("astar.expansions", 5u64);
    }
    let collector = TraceCollector::new();
    let guard = install(&collector);
    let leaked = mfb_obs::obs_span!("leaky");
    let open_now = collector.finish().open_spans;
    drop(leaked);
    drop(guard);
    let trace = collector.finish();
    assert_eq!(open_now, 1, "finish sees the still-open span");
    assert_eq!(trace.open_spans, 0);
    assert_eq!(
        trace.events.len(),
        1,
        "only the installed-window span recorded"
    );
    assert_eq!(trace.events[0].name, "leaky");
}

#[test]
fn install_nests_and_restores_the_previous_collector() {
    let outer = TraceCollector::new();
    let g1 = install(&outer);
    instant("outer.before", Vec::new());
    {
        let inner = TraceCollector::new();
        let g2 = install(&inner);
        instant("inner.only", Vec::new());
        drop(g2);
        assert_eq!(inner.finish().events.len(), 1);
    }
    instant("outer.after", Vec::new());
    drop(g1);
    let trace = outer.finish();
    let names: Vec<&str> = trace.events.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(names, ["outer.before", "outer.after"]);
    assert!(!mfb_obs::enabled(), "all guards dropped");
}

#[test]
fn collector_propagates_across_threads_with_distinct_tids() {
    let collector = TraceCollector::new();
    let guard = install(&collector);
    let handle = mfb_obs::current().expect("installed");
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let h = handle.clone();
            scope.spawn(move || {
                let _g = install(&h);
                let _span = mfb_obs::obs_span!("worker.step");
            });
        }
    });
    drop(guard);
    let trace = collector.finish();
    let tids: std::collections::BTreeSet<u64> =
        trace.spans_named("worker.step").map(|e| e.tid).collect();
    assert_eq!(trace.events.len(), 2);
    assert_eq!(tids.len(), 2, "each worker thread has its own tid");
}
