//! The trace event data model.
//!
//! Events are flat records rather than a nested span tree: each completed
//! span is emitted as a single record carrying its start time and duration,
//! which keeps the model serializable through the vendored serde stand-in
//! and makes JSONL export a line-per-event affair. Ordering is recovered by
//! sorting on `(t_ns, seq)`; `seq` is a collector-global allocation counter,
//! so the sort is total and deterministic for a given interleaving.

use serde::{Deserialize, Serialize};

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A closed duration: `t_ns` is the start, `dur_ns` the length.
    Span,
    /// A monotone metric increment: `value` carries the delta. Totals for a
    /// name are the sum of all its counter events in a trace.
    Counter,
    /// A zero-duration point event (e.g. a cache hit or a recovery rung).
    Instant,
}

/// A dynamically typed value attached to an event via a [`Field`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point. Schema checks reject non-finite values.
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::I64(i64::from(v))
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// A key/value annotation on an event (stage, assay, seed, attempt, ...).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Field {
    /// Field name.
    pub key: String,
    /// Field value.
    pub value: FieldValue,
}

impl Field {
    /// Builds a field from anything convertible into a [`FieldValue`].
    pub fn new(key: impl Into<String>, value: impl Into<FieldValue>) -> Field {
        Field {
            key: key.into(),
            value: value.into(),
        }
    }
}

/// One trace record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Collector-global allocation order; tie-breaker for equal timestamps.
    pub seq: u64,
    /// Small dense id of the emitting thread (1-based, process-global).
    pub tid: u64,
    /// Record kind.
    pub kind: EventKind,
    /// Event name, e.g. `stage.place` or `cache.routing.hit`.
    pub name: String,
    /// Nanoseconds since the collector's epoch (span start for spans).
    pub t_ns: u64,
    /// Span length in nanoseconds; zero for counters and instants.
    pub dur_ns: u64,
    /// Counter delta; zero for spans and instants.
    pub value: u64,
    /// Structured annotations.
    pub fields: Vec<Field>,
}

impl TraceEvent {
    /// Looks up a field value by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|f| f.key == key).map(|f| &f.value)
    }

    /// Looks up a string field by key.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        match self.field(key) {
            Some(FieldValue::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Looks up an unsigned integer field by key.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        match self.field(key) {
            Some(FieldValue::U64(v)) => Some(*v),
            _ => None,
        }
    }
}

/// A finished trace: the sorted event log plus collector-level telemetry
/// used by the well-formedness checks.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Events sorted by `(t_ns, seq)`.
    pub events: Vec<TraceEvent>,
    /// Spans still open when the trace was finished. A well-formed trace
    /// has zero: every span guard was dropped before `finish`.
    pub open_spans: u64,
    /// Wall-clock nanoseconds from collector creation to `finish`.
    pub wall_ns: u64,
}

impl Trace {
    /// Events of one kind.
    pub fn of_kind(&self, kind: EventKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Sum of `value` over all counter events with this name.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.events
            .iter()
            .filter(|e| e.kind == EventKind::Counter && e.name == name)
            .map(|e| e.value)
            .sum()
    }

    /// Number of instant events with this name.
    pub fn instant_count(&self, name: &str) -> u64 {
        self.events
            .iter()
            .filter(|e| e.kind == EventKind::Instant && e.name == name)
            .count() as u64
    }

    /// Spans with this name.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events
            .iter()
            .filter(move |e| e.kind == EventKind::Span && e.name == name)
    }
}
