//! Per-stage aggregation: collapses a raw event log into span timing
//! summaries (count, total, max, log2 duration histogram) and counter
//! totals, the shape folded into `PerfReport`/`BENCH_synthesis.json`.

use crate::event::{EventKind, TraceEvent};
use serde::{Deserialize, Serialize};

/// Aggregated timing for all spans sharing one name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSummary {
    /// Span name, e.g. `stage.route`.
    pub name: String,
    /// Number of spans.
    pub count: u64,
    /// Summed duration in milliseconds.
    pub total_ms: f64,
    /// Longest single span in milliseconds.
    pub max_ms: f64,
    /// Log2 duration histogram: bucket `i` counts spans with duration in
    /// `[2^i, 2^(i+1))` microseconds; bucket 0 also takes sub-microsecond
    /// spans. Trailing buckets are trimmed.
    pub hist_us_log2: Vec<u64>,
}

fn log2_bucket(dur_ns: u64) -> usize {
    let us = dur_ns / 1_000;
    if us <= 1 {
        0
    } else {
        (63 - us.leading_zeros()) as usize
    }
}

/// Groups span events by name, sorted by name for deterministic output.
pub fn stage_summaries(events: &[TraceEvent]) -> Vec<StageSummary> {
    let mut out: Vec<StageSummary> = Vec::new();
    for e in events {
        if e.kind != EventKind::Span {
            continue;
        }
        let idx = match out.iter().position(|s| s.name == e.name) {
            Some(i) => i,
            None => {
                out.push(StageSummary {
                    name: e.name.clone(),
                    count: 0,
                    total_ms: 0.0,
                    max_ms: 0.0,
                    hist_us_log2: Vec::new(),
                });
                out.len() - 1
            }
        };
        let s = &mut out[idx];
        let ms = e.dur_ns as f64 / 1e6;
        s.count += 1;
        s.total_ms += ms;
        if ms > s.max_ms {
            s.max_ms = ms;
        }
        let b = log2_bucket(e.dur_ns);
        if s.hist_us_log2.len() <= b {
            s.hist_us_log2.resize(b + 1, 0);
        }
        s.hist_us_log2[b] += 1;
    }
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// A counter name with its summed value over the trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterTotal {
    /// Counter name, e.g. `astar.expansions`.
    pub name: String,
    /// Sum of every counter event's delta.
    pub total: u64,
}

/// Sums counter events by name, sorted by name for deterministic output.
pub fn counter_totals(events: &[TraceEvent]) -> Vec<CounterTotal> {
    let mut out: Vec<CounterTotal> = Vec::new();
    for e in events {
        if e.kind != EventKind::Counter {
            continue;
        }
        match out.iter_mut().find(|c| c.name == e.name) {
            Some(c) => c.total += e.value,
            None => out.push(CounterTotal {
                name: e.name.clone(),
                total: e.value,
            }),
        }
    }
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}
