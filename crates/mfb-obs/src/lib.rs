//! `mfb-obs`: zero-cost structured tracing for the DCSA synthesis pipeline.
//!
//! Probes are spans (RAII duration guards), counters (monotone deltas) and
//! instants (point events), emitted through the [`obs_span!`],
//! [`obs_counter!`] and [`obs_instant!`] macros. Recording goes to a
//! thread-local subscriber installed with [`install`]; parallel regions
//! re-install the collector handle captured from the spawning thread, so a
//! single trace spans every worker.
//!
//! The cost contract, in three tiers:
//!
//! 1. **Feature off** (`--no-default-features`): [`enabled`] is a `const
//!    false`, every macro folds to nothing, and no collector machinery is
//!    compiled. All probe call sites still type-check identically.
//! 2. **Feature on, no collector installed** (the default for `synthesize`
//!    and `mfb bench`): each probe costs one relaxed atomic load and a
//!    branch — field vectors are never built because the macros guard
//!    argument evaluation behind [`enabled`].
//! 3. **Collector installed**: spans cost two `Instant` reads and one
//!    mutex push on close. Instrumentation sits at stage boundaries only —
//!    never inside the SA proposal loop or per-A*-expansion — so pinned
//!    hot paths execute the same instruction stream either way.
//!
//! Tracing never perturbs results: probes observe, they do not branch the
//! synthesis flow, and the golden tests in `mfb-core` pin byte-identical
//! solutions with tracing on vs off across thread counts.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod event;
pub mod export;
pub mod summary;

pub use event::{EventKind, Field, FieldValue, Trace, TraceEvent};
pub use summary::{counter_totals, stage_summaries, CounterTotal, StageSummary};

#[cfg(feature = "trace")]
mod imp {
    use crate::event::{EventKind, Field, Trace, TraceEvent};
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::Instant;

    /// Count of live [`InstallGuard`]s across all threads. The fast path
    /// for "tracing off" is a single relaxed load of this.
    static ACTIVE: AtomicUsize = AtomicUsize::new(0);

    static NEXT_TID: AtomicU64 = AtomicU64::new(1);

    thread_local! {
        static CURRENT: RefCell<Option<TraceCollector>> = const { RefCell::new(None) };
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }

    fn tid() -> u64 {
        TID.with(|t| *t)
    }

    struct Shared {
        epoch: Instant,
        events: Mutex<Vec<TraceEvent>>,
        seq: AtomicU64,
        open_spans: AtomicU64,
    }

    /// A cloneable handle to one trace-in-progress. Clone it into worker
    /// threads and [`install`](crate::install) it there; all handles feed
    /// the same event log.
    #[derive(Clone)]
    pub struct TraceCollector {
        shared: Arc<Shared>,
    }

    impl std::fmt::Debug for TraceCollector {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("TraceCollector")
                .field("events", &self.shared.events.lock().map_or(0, |e| e.len()))
                .finish_non_exhaustive()
        }
    }

    impl TraceCollector {
        /// Creates an empty collector; its creation instant is the trace
        /// epoch that all `t_ns` timestamps are relative to.
        pub fn new() -> TraceCollector {
            TraceCollector {
                shared: Arc::new(Shared {
                    epoch: Instant::now(),
                    events: Mutex::new(Vec::new()),
                    seq: AtomicU64::new(0),
                    open_spans: AtomicU64::new(0),
                }),
            }
        }

        fn now_ns(&self) -> u64 {
            self.shared.epoch.elapsed().as_nanos() as u64
        }

        fn push(
            &self,
            kind: EventKind,
            name: String,
            t_ns: u64,
            dur_ns: u64,
            value: u64,
            fields: Vec<Field>,
        ) {
            let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed);
            let ev = TraceEvent {
                seq,
                tid: tid(),
                kind,
                name,
                t_ns,
                dur_ns,
                value,
                fields,
            };
            self.shared
                .events
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(ev);
        }

        /// Snapshots the trace: events sorted by `(t_ns, seq)`, plus the
        /// open-span count and wall time. Call after all guards dropped.
        pub fn finish(&self) -> Trace {
            let mut events = self
                .shared
                .events
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone();
            events.sort_by_key(|e| (e.t_ns, e.seq));
            Trace {
                events,
                open_spans: self.shared.open_spans.load(Ordering::SeqCst),
                wall_ns: self.now_ns(),
            }
        }
    }

    impl Default for TraceCollector {
        fn default() -> Self {
            TraceCollector::new()
        }
    }

    /// RAII installation of a collector on the current thread; restores
    /// the previous subscriber (if any) on drop.
    #[must_use = "dropping the guard immediately uninstalls the collector"]
    #[derive(Debug)]
    pub struct InstallGuard {
        prev: Option<TraceCollector>,
    }

    /// Installs `collector` as the current thread's subscriber.
    pub fn install(collector: &TraceCollector) -> InstallGuard {
        let prev = CURRENT.with(|c| c.borrow_mut().replace(collector.clone()));
        ACTIVE.fetch_add(1, Ordering::Relaxed);
        InstallGuard { prev }
    }

    impl Drop for InstallGuard {
        fn drop(&mut self) {
            ACTIVE.fetch_sub(1, Ordering::Relaxed);
            CURRENT.with(|c| {
                *c.borrow_mut() = self.prev.take();
            });
        }
    }

    /// The collector installed on this thread, if any. Capture before
    /// spawning workers and [`install`] inside each to propagate a trace
    /// across a parallel region.
    pub fn current() -> Option<TraceCollector> {
        if ACTIVE.load(Ordering::Relaxed) == 0 {
            return None;
        }
        CURRENT.with(|c| c.borrow().clone())
    }

    /// True when any thread has a collector installed. The macros gate
    /// argument evaluation behind this so an untraced run pays exactly one
    /// relaxed load and branch per probe.
    #[inline]
    pub fn enabled() -> bool {
        ACTIVE.load(Ordering::Relaxed) != 0
    }

    /// An open span; emits one complete [`EventKind::Span`] record on drop.
    #[must_use = "a span records its duration when dropped; bind it with `let _span = ...`"]
    pub struct SpanGuard {
        inner: Option<OpenSpan>,
    }

    impl std::fmt::Debug for SpanGuard {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("SpanGuard")
                .field("name", &self.inner.as_ref().map(|s| s.name.as_str()))
                .finish_non_exhaustive()
        }
    }

    struct OpenSpan {
        collector: TraceCollector,
        name: String,
        start_ns: u64,
        fields: Vec<Field>,
    }

    impl SpanGuard {
        /// A guard that records nothing (no collector on this thread).
        pub fn disabled() -> SpanGuard {
            SpanGuard { inner: None }
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            if let Some(s) = self.inner.take() {
                let end = s.collector.now_ns();
                s.collector.shared.open_spans.fetch_sub(1, Ordering::SeqCst);
                s.collector.push(
                    EventKind::Span,
                    s.name,
                    s.start_ns,
                    end.saturating_sub(s.start_ns),
                    0,
                    s.fields,
                );
            }
        }
    }

    /// Opens a span on the current thread's collector. Prefer
    /// [`obs_span!`](crate::obs_span), which skips field construction when
    /// tracing is off.
    pub fn span(name: &str, fields: Vec<Field>) -> SpanGuard {
        match current() {
            Some(collector) => {
                collector.shared.open_spans.fetch_add(1, Ordering::SeqCst);
                let start_ns = collector.now_ns();
                SpanGuard {
                    inner: Some(OpenSpan {
                        collector,
                        name: name.to_string(),
                        start_ns,
                        fields,
                    }),
                }
            }
            None => SpanGuard::disabled(),
        }
    }

    /// Records a counter delta. Prefer [`obs_counter!`](crate::obs_counter).
    pub fn counter(name: &str, value: u64, fields: Vec<Field>) {
        if let Some(c) = current() {
            let t = c.now_ns();
            c.push(EventKind::Counter, name.to_string(), t, 0, value, fields);
        }
    }

    /// Records a point event. Prefer [`obs_instant!`](crate::obs_instant).
    pub fn instant(name: &str, fields: Vec<Field>) {
        if let Some(c) = current() {
            let t = c.now_ns();
            c.push(EventKind::Instant, name.to_string(), t, 0, 0, fields);
        }
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    use crate::event::{Field, Trace};

    /// Inert stand-in: collects nothing, [`finish`](TraceCollector::finish)
    /// returns an empty trace.
    #[derive(Debug, Clone, Default)]
    pub struct TraceCollector;

    impl TraceCollector {
        /// Creates the inert collector.
        pub fn new() -> TraceCollector {
            TraceCollector
        }

        /// Always the empty trace.
        pub fn finish(&self) -> Trace {
            Trace::default()
        }
    }

    /// Inert guard.
    #[must_use = "dropping the guard immediately uninstalls the collector"]
    #[derive(Debug)]
    pub struct InstallGuard(());

    /// No-op.
    pub fn install(_collector: &TraceCollector) -> InstallGuard {
        InstallGuard(())
    }

    /// Always `None`.
    pub fn current() -> Option<TraceCollector> {
        None
    }

    /// Constant `false`: the branch in every probe macro folds away.
    #[inline(always)]
    pub fn enabled() -> bool {
        false
    }

    /// Inert guard.
    #[must_use = "a span records its duration when dropped; bind it with `let _span = ...`"]
    #[derive(Debug)]
    pub struct SpanGuard(());

    impl SpanGuard {
        /// The inert guard.
        pub fn disabled() -> SpanGuard {
            SpanGuard(())
        }
    }

    /// No-op.
    pub fn span(_name: &str, _fields: Vec<Field>) -> SpanGuard {
        SpanGuard(())
    }

    /// No-op.
    pub fn counter(_name: &str, _value: u64, _fields: Vec<Field>) {}

    /// No-op.
    pub fn instant(_name: &str, _fields: Vec<Field>) {}
}

pub use imp::{
    counter, current, enabled, install, instant, span, InstallGuard, SpanGuard, TraceCollector,
};

/// Runs `f` with `collector` installed on this thread and returns its
/// result; convenience for trace-the-whole-closure call sites.
pub fn with_collector<R>(collector: &TraceCollector, f: impl FnOnce() -> R) -> R {
    let _guard = install(collector);
    f()
}

/// Opens a span named `$name` with optional `key = value` fields. Expands
/// to a guard expression; bind it (`let _span = obs_span!(...)`) so it
/// lives to the end of the region being timed. Field expressions are not
/// evaluated unless tracing is enabled.
#[macro_export]
macro_rules! obs_span {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::span($name, vec![$($crate::Field::new(stringify!($k), $v)),*])
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

/// Records a counter delta `$value` under `$name` with optional fields.
/// Value and field expressions are not evaluated unless tracing is enabled.
#[macro_export]
macro_rules! obs_counter {
    ($name:expr, $value:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::counter($name, $value, vec![$($crate::Field::new(stringify!($k), $v)),*]);
        }
    };
}

/// Records a point event under `$name` with optional fields. Field
/// expressions are not evaluated unless tracing is enabled.
#[macro_export]
macro_rules! obs_instant {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::instant($name, vec![$($crate::Field::new(stringify!($k), $v)),*]);
        }
    };
}
