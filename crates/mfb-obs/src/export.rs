//! Trace export: JSON Lines and Chrome trace-event format, each paired
//! with a minimal schema check so CI can validate artifacts without a
//! trace viewer.

use crate::event::{EventKind, FieldValue, TraceEvent};
use serde::Content;

/// Serializes events as JSON Lines: one `TraceEvent` object per line.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&serde_json::to_string(e).expect("trace events always serialize"));
        out.push('\n');
    }
    out
}

/// Parses JSON Lines back into events. Blank lines are skipped.
pub fn from_jsonl(s: &str) -> Result<Vec<TraceEvent>, serde::Error> {
    s.lines()
        .filter(|l| !l.trim().is_empty())
        .map(serde_json::from_str)
        .collect()
}

/// Structural well-formedness check shared by both export formats:
/// non-empty names, monotone non-decreasing timestamps, kind-appropriate
/// duration/value usage, and finite float fields. Returns the event count.
pub fn check_events(events: &[TraceEvent]) -> Result<usize, String> {
    let mut last_t = 0u64;
    for e in events {
        if e.name.is_empty() {
            return Err(format!("event seq {} has an empty name", e.seq));
        }
        if e.t_ns < last_t {
            return Err(format!(
                "timestamps not monotone: seq {} at {} ns after {} ns",
                e.seq, e.t_ns, last_t
            ));
        }
        last_t = e.t_ns;
        if e.kind != EventKind::Span && e.dur_ns != 0 {
            return Err(format!("non-span event seq {} carries a duration", e.seq));
        }
        if e.kind != EventKind::Counter && e.value != 0 {
            return Err(format!("non-counter event seq {} carries a value", e.seq));
        }
        for f in &e.fields {
            if let FieldValue::F64(v) = f.value {
                if !v.is_finite() {
                    return Err(format!(
                        "event seq {} field `{}` is not finite",
                        e.seq, f.key
                    ));
                }
            }
        }
    }
    Ok(events.len())
}

/// Parses and schema-checks a JSONL trace. Returns the event count.
pub fn check_jsonl(s: &str) -> Result<usize, String> {
    let events = from_jsonl(s).map_err(|e| e.to_string())?;
    check_events(&events)
}

fn field_content(v: &FieldValue) -> Content {
    match v {
        FieldValue::U64(x) => Content::U64(*x),
        FieldValue::I64(x) => Content::I64(*x),
        FieldValue::F64(x) => Content::F64(*x),
        FieldValue::Str(x) => Content::Str(x.clone()),
        FieldValue::Bool(x) => Content::Bool(*x),
    }
}

/// Serializes events in Chrome trace-event format (the JSON-array flavor):
/// spans become complete `"X"` events, counters `"C"`, instants `"i"`.
/// Load the result in `chrome://tracing` or Perfetto.
pub fn to_chrome(events: &[TraceEvent]) -> String {
    let items: Vec<Content> = events
        .iter()
        .map(|e| {
            let ph = match e.kind {
                EventKind::Span => "X",
                EventKind::Counter => "C",
                EventKind::Instant => "i",
            };
            let mut args: Vec<(String, Content)> = e
                .fields
                .iter()
                .map(|f| (f.key.clone(), field_content(&f.value)))
                .collect();
            if e.kind == EventKind::Counter {
                args.push(("value".to_string(), Content::U64(e.value)));
            }
            let mut obj = vec![
                ("name", Content::Str(e.name.clone())),
                ("ph", Content::Str(ph.to_string())),
                ("ts", Content::F64(e.t_ns as f64 / 1000.0)),
                ("pid", Content::U64(1)),
                ("tid", Content::U64(e.tid)),
            ];
            if e.kind == EventKind::Span {
                obj.push(("dur", Content::F64(e.dur_ns as f64 / 1000.0)));
            }
            if e.kind == EventKind::Instant {
                obj.push(("s", Content::Str("t".to_string())));
            }
            obj.push(("args", Content::Map(args)));
            Content::object(obj)
        })
        .collect();
    serde_json::to_string(&Content::Seq(items)).expect("chrome trace always serializes")
}

/// Minimal Chrome trace-event schema check: a JSON array whose entries have
/// a non-empty `name`, a known `ph`, finite non-negative `ts` (monotone in
/// file order, matching our sorted export), `pid`/`tid`, and — for complete
/// events — a finite non-negative `dur`. Returns the event count.
pub fn check_chrome(s: &str) -> Result<usize, String> {
    let root: Content = serde_json::from_str(s).map_err(|e| e.to_string())?;
    let items = root.as_array().ok_or("chrome trace is not a JSON array")?;
    let mut last_ts = f64::NEG_INFINITY;
    for (i, item) in items.iter().enumerate() {
        let name = item
            .get("name")
            .and_then(Content::as_str)
            .ok_or_else(|| format!("entry {i}: missing name"))?;
        if name.is_empty() {
            return Err(format!("entry {i}: empty name"));
        }
        let ph = item
            .get("ph")
            .and_then(Content::as_str)
            .ok_or_else(|| format!("entry {i}: missing ph"))?;
        if !matches!(ph, "X" | "C" | "i") {
            return Err(format!("entry {i}: unknown ph `{ph}`"));
        }
        let ts = item
            .get("ts")
            .and_then(Content::as_f64)
            .ok_or_else(|| format!("entry {i}: missing ts"))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!(
                "entry {i}: ts {ts} is not a finite non-negative time"
            ));
        }
        if ts < last_ts {
            return Err(format!("entry {i}: ts {ts} precedes {last_ts}"));
        }
        last_ts = ts;
        for key in ["pid", "tid"] {
            if item.get(key).and_then(Content::as_u64).is_none() {
                return Err(format!("entry {i}: missing {key}"));
            }
        }
        if ph == "X" {
            let dur = item
                .get("dur")
                .and_then(Content::as_f64)
                .ok_or_else(|| format!("entry {i}: complete event missing dur"))?;
            if !dur.is_finite() || dur < 0.0 {
                return Err(format!(
                    "entry {i}: dur {dur} is not a finite non-negative span"
                ));
            }
        }
    }
    Ok(items.len())
}
