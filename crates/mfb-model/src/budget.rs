//! Execution budgets: wall-clock deadlines and cooperative cancellation.
//!
//! A [`Budget`] travels *down* the synthesis stack — flow driver, recovery
//! ladder, SA inner loop, A* expansion — and is polled at coarse checkpoints
//! (a temperature epoch, a few thousand node expansions, a stage boundary).
//! When the deadline passes or the paired [`CancelToken`] fires, the stage
//! stops at the next checkpoint and surfaces a typed
//! [`BudgetExceeded`] instead of running hot forever.
//!
//! Budgets never perturb results: checkpoints only ever *abort*, so a run
//! that finishes within its budget is bit-identical to an unlimited run.
//! [`Budget::unlimited`] is a two-`None` struct whose [`check`](Budget::check)
//! folds to a pair of branch-not-taken tests — cheap enough for hot loops.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why a budgeted computation stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetExceeded {
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// The paired [`CancelToken`] was fired.
    Cancelled,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetExceeded::DeadlineExceeded => write!(f, "deadline exceeded"),
            BudgetExceeded::Cancelled => write!(f, "cancelled"),
        }
    }
}

impl std::error::Error for BudgetExceeded {}

/// A shared flag that requests cooperative cancellation.
///
/// Cloning is cheap (one `Arc` bump); every clone observes the same flag.
/// Firing is idempotent and cannot be undone.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, unfired token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. All clones observe the flag at their next
    /// [`Budget::check`] checkpoint.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// `true` once [`cancel`](Self::cancel) has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A deadline plus an optional cancellation token, polled cooperatively.
///
/// `Budget` is `Clone` and cheap to pass by value or reference; clones share
/// the cancellation flag but carry their own copy of the deadline.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
}

impl Budget {
    /// A budget that never trips. `check` on this value is two `None`
    /// pattern tests — safe to call from hot loops.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// A budget that trips once `timeout` has elapsed from now.
    pub fn with_timeout(timeout: std::time::Duration) -> Self {
        Budget {
            deadline: Instant::now().checked_add(timeout),
            cancel: None,
        }
    }

    /// A budget that trips at `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        Budget {
            deadline: Some(deadline),
            cancel: None,
        }
    }

    /// Attaches a cancellation token; [`check`](Self::check) trips with
    /// [`BudgetExceeded::Cancelled`] once the token fires.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// `true` when the budget can never trip (no deadline, no token).
    #[inline]
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.cancel.is_none()
    }

    /// The deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Polls the budget. Cancellation wins over the deadline when both have
    /// tripped (cancellation is an explicit operator action; deadline is
    /// ambient), so a cancelled job is reported as cancelled even if it also
    /// ran long.
    #[inline]
    pub fn check(&self) -> Result<(), BudgetExceeded> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(BudgetExceeded::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(BudgetExceeded::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_never_trips() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert_eq!(b.check(), Ok(()));
    }

    #[test]
    fn expired_deadline_trips() {
        let b = Budget::with_timeout(Duration::ZERO);
        assert!(!b.is_unlimited());
        assert_eq!(b.check(), Err(BudgetExceeded::DeadlineExceeded));
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let b = Budget::with_timeout(Duration::from_secs(3600));
        assert_eq!(b.check(), Ok(()));
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let token = CancelToken::new();
        let b = Budget::unlimited().with_cancel(token.clone());
        assert_eq!(b.check(), Ok(()));
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(b.check(), Err(BudgetExceeded::Cancelled));
        // A clone taken before firing observes the same flag.
        assert_eq!(b.clone().check(), Err(BudgetExceeded::Cancelled));
    }

    #[test]
    fn cancellation_wins_over_deadline() {
        let token = CancelToken::new();
        token.cancel();
        let b = Budget::with_timeout(Duration::ZERO).with_cancel(token);
        assert_eq!(b.check(), Err(BudgetExceeded::Cancelled));
    }

    #[test]
    fn displays_are_stable() {
        assert_eq!(
            BudgetExceeded::DeadlineExceeded.to_string(),
            "deadline exceeded"
        );
        assert_eq!(BudgetExceeded::Cancelled.to_string(), "cancelled");
    }
}
