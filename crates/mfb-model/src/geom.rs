//! Grid geometry shared by placement and routing.
//!
//! The paper partitions the routing plane into an array of rectangular cells
//! (§IV-B.2, Fig. 4); components occupy rectangles of cells and flow channels
//! are paths of cells. This module provides the cell coordinate system,
//! rectangles, and the chip grid specification (dimensions plus the physical
//! pitch used to convert cell counts into millimetres of channel).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Position of one grid cell (column `x`, row `y`), zero-based from the
/// chip's lower-left corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellPos {
    /// Column index.
    pub x: u32,
    /// Row index.
    pub y: u32,
}

impl CellPos {
    /// Creates a cell position.
    #[inline]
    pub const fn new(x: u32, y: u32) -> Self {
        CellPos { x, y }
    }

    /// Manhattan distance to `other`, in cells.
    #[inline]
    pub fn manhattan(self, other: CellPos) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }

    /// The four edge-adjacent neighbours that stay inside a
    /// `width` × `height` grid.
    pub fn neighbours(self, width: u32, height: u32) -> impl Iterator<Item = CellPos> {
        let CellPos { x, y } = self;
        [
            (x > 0).then(|| CellPos::new(x - 1, y)),
            (x + 1 < width).then(|| CellPos::new(x + 1, y)),
            (y > 0).then(|| CellPos::new(x, y - 1)),
            (y + 1 < height).then(|| CellPos::new(x, y + 1)),
        ]
        .into_iter()
        .flatten()
    }
}

impl fmt::Display for CellPos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// An axis-aligned rectangle of grid cells: origin `(x, y)` (lower-left) and
/// extent `width` × `height`, both at least 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CellRect {
    /// Lower-left corner.
    pub origin: CellPos,
    /// Width in cells.
    pub width: u32,
    /// Height in cells.
    pub height: u32,
}

impl CellRect {
    /// Creates a rectangle.
    ///
    /// # Panics
    ///
    /// Panics if either extent is zero.
    pub fn new(origin: CellPos, width: u32, height: u32) -> Self {
        assert!(
            width > 0 && height > 0,
            "rectangle extents must be positive"
        );
        CellRect {
            origin,
            width,
            height,
        }
    }

    /// Exclusive upper-right corner `(origin.x + width, origin.y + height)`.
    #[inline]
    pub const fn upper_right(self) -> (u32, u32) {
        (self.origin.x + self.width, self.origin.y + self.height)
    }

    /// `true` when `pos` lies inside the rectangle.
    #[inline]
    pub const fn contains(self, pos: CellPos) -> bool {
        pos.x >= self.origin.x
            && pos.y >= self.origin.y
            && pos.x < self.origin.x + self.width
            && pos.y < self.origin.y + self.height
    }

    /// `true` when `self` and `other` share at least one cell.
    pub const fn intersects(self, other: CellRect) -> bool {
        let (ax2, ay2) = self.upper_right();
        let (bx2, by2) = other.upper_right();
        self.origin.x < bx2 && other.origin.x < ax2 && self.origin.y < by2 && other.origin.y < ay2
    }

    /// `self` grown by `margin` cells on every side (clamped at the grid
    /// origin). Used to enforce routing clearance between components.
    pub fn inflated(self, margin: u32) -> CellRect {
        let x = self.origin.x.saturating_sub(margin);
        let y = self.origin.y.saturating_sub(margin);
        CellRect {
            origin: CellPos::new(x, y),
            width: self.width + (self.origin.x - x) + margin,
            height: self.height + (self.origin.y - y) + margin,
        }
    }

    /// Iterates over every cell in the rectangle, row-major.
    pub fn cells(self) -> impl Iterator<Item = CellPos> {
        let CellRect {
            origin,
            width,
            height,
        } = self;
        (origin.y..origin.y + height)
            .flat_map(move |y| (origin.x..origin.x + width).map(move |x| CellPos::new(x, y)))
    }

    /// Number of cells in the rectangle.
    #[inline]
    pub const fn area(self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// The centre of the rectangle, rounded down to a cell.
    #[inline]
    pub const fn center(self) -> CellPos {
        CellPos::new(
            self.origin.x + self.width / 2,
            self.origin.y + self.height / 2,
        )
    }
}

impl fmt::Display for CellRect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}+{}x{}]", self.origin, self.width, self.height)
    }
}

/// The chip grid: cell-array dimensions plus the physical pitch of one cell.
///
/// `pitch_mm` converts cell counts into millimetres of flow channel for the
/// paper's *total channel length* metric (Table I reports hundreds to
/// thousands of millimetres; the default 10 mm pitch reproduces that scale).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    /// Grid width in cells.
    pub width: u32,
    /// Grid height in cells.
    pub height: u32,
    /// Physical edge length of one cell, in millimetres.
    pub pitch_mm: f64,
}

impl GridSpec {
    /// Default physical cell pitch, millimetres.
    pub const DEFAULT_PITCH_MM: f64 = 10.0;

    /// Creates a grid specification.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the pitch is not positive and
    /// finite.
    pub fn new(width: u32, height: u32, pitch_mm: f64) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be positive");
        assert!(
            pitch_mm.is_finite() && pitch_mm > 0.0,
            "cell pitch must be positive and finite"
        );
        GridSpec {
            width,
            height,
            pitch_mm,
        }
    }

    /// A square grid with the default pitch.
    pub fn square(side: u32) -> Self {
        GridSpec::new(side, side, Self::DEFAULT_PITCH_MM)
    }

    /// Total number of cells.
    #[inline]
    pub const fn cell_count(&self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// `true` when `pos` lies on the grid.
    #[inline]
    pub const fn contains(&self, pos: CellPos) -> bool {
        pos.x < self.width && pos.y < self.height
    }

    /// `true` when `rect` lies entirely on the grid.
    pub const fn contains_rect(&self, rect: CellRect) -> bool {
        let (x2, y2) = rect.upper_right();
        x2 <= self.width && y2 <= self.height
    }

    /// Dense row-major index of `pos`, for `Vec`-backed cell tables.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `pos` is off-grid.
    #[inline]
    pub fn index(&self, pos: CellPos) -> usize {
        debug_assert!(
            self.contains(pos),
            "cell {pos} outside {}x{} grid",
            self.width,
            self.height
        );
        pos.y as usize * self.width as usize + pos.x as usize
    }

    /// Converts a cell count into millimetres of channel.
    #[inline]
    pub fn cells_to_mm(&self, cells: u64) -> f64 {
        cells as f64 * self.pitch_mm
    }
}

impl fmt::Display for GridSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} cells @ {} mm",
            self.width, self.height, self.pitch_mm
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance() {
        assert_eq!(CellPos::new(1, 2).manhattan(CellPos::new(4, 0)), 5);
        assert_eq!(CellPos::new(3, 3).manhattan(CellPos::new(3, 3)), 0);
    }

    #[test]
    fn neighbours_respect_bounds() {
        let corner: Vec<_> = CellPos::new(0, 0).neighbours(3, 3).collect();
        assert_eq!(corner, vec![CellPos::new(1, 0), CellPos::new(0, 1)]);
        let mid: Vec<_> = CellPos::new(1, 1).neighbours(3, 3).collect();
        assert_eq!(mid.len(), 4);
        let edge: Vec<_> = CellPos::new(2, 1).neighbours(3, 3).collect();
        assert_eq!(edge.len(), 3);
    }

    #[test]
    fn rect_contains_and_intersects() {
        let a = CellRect::new(CellPos::new(1, 1), 3, 2);
        assert!(a.contains(CellPos::new(1, 1)));
        assert!(a.contains(CellPos::new(3, 2)));
        assert!(!a.contains(CellPos::new(4, 1)));
        assert!(!a.contains(CellPos::new(1, 3)));

        let b = CellRect::new(CellPos::new(3, 2), 2, 2);
        assert!(a.intersects(b)); // share cell (3,2)
        let c = CellRect::new(CellPos::new(4, 1), 2, 2);
        assert!(!a.intersects(c)); // touch edges only
    }

    #[test]
    fn rect_inflation_clamps_at_origin() {
        let r = CellRect::new(CellPos::new(0, 1), 2, 2).inflated(1);
        assert_eq!(r.origin, CellPos::new(0, 0));
        assert_eq!((r.width, r.height), (3, 4));
        let r2 = CellRect::new(CellPos::new(2, 2), 2, 2).inflated(1);
        assert_eq!(r2.origin, CellPos::new(1, 1));
        assert_eq!((r2.width, r2.height), (4, 4));
    }

    #[test]
    fn rect_cells_row_major() {
        let r = CellRect::new(CellPos::new(1, 1), 2, 2);
        let cells: Vec<_> = r.cells().collect();
        assert_eq!(
            cells,
            vec![
                CellPos::new(1, 1),
                CellPos::new(2, 1),
                CellPos::new(1, 2),
                CellPos::new(2, 2)
            ]
        );
        assert_eq!(r.area(), 4);
        assert_eq!(r.center(), CellPos::new(2, 2));
    }

    #[test]
    fn grid_spec_bounds_and_index() {
        let g = GridSpec::new(4, 3, 10.0);
        assert_eq!(g.cell_count(), 12);
        assert!(g.contains(CellPos::new(3, 2)));
        assert!(!g.contains(CellPos::new(4, 0)));
        assert!(!g.contains(CellPos::new(0, 3)));
        assert_eq!(g.index(CellPos::new(0, 0)), 0);
        assert_eq!(g.index(CellPos::new(3, 2)), 11);
        assert!(g.contains_rect(CellRect::new(CellPos::new(0, 0), 4, 3)));
        assert!(!g.contains_rect(CellRect::new(CellPos::new(1, 0), 4, 3)));
        assert_eq!(g.cells_to_mm(42), 420.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn grid_rejects_zero_dims() {
        GridSpec::new(0, 3, 10.0);
    }
}
