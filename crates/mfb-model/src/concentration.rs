//! Concentration tracking through a sequencing graph.
//!
//! Dilution assays (the CPA benchmark, serial and interpolated dilution
//! ladders) exist to produce *specific concentrations* of an analyte. This
//! module propagates concentrations through a bioassay under the standard
//! 1:1 mixing model:
//!
//! * a **mix** operation outputs the mean of its input concentrations
//!   (equal-volume merge); inputs that are not produced on-chip contribute
//!   the concentration assigned to the operation via
//!   [`ConcentrationMap::source`] (default: pure buffer, `0.0`);
//! * **heat**, **filter** and **detect** pass their (single) input through
//!   unchanged; a filter can optionally attenuate by a retention factor.
//!
//! The profile lets tests pin the chemistry of the benchmark
//! reconstructions — e.g. a serial dilution ladder must halve at every
//! rung — and lets assay designers read the concentration each detector
//! ultimately sees.

use crate::graph::SequencingGraph;
use crate::ids::OpId;
use crate::operation::OperationKind;
use std::collections::HashMap;

/// Input concentrations for a concentration analysis.
///
/// Concentrations are relative (typically `1.0` = the undiluted stock).
#[derive(Debug, Clone, Default)]
pub struct ConcentrationMap {
    /// Extra off-chip inflow per operation: `(concentration, parts)` —
    /// e.g. a dilution mix has one on-chip parent plus one part of buffer.
    sources: HashMap<OpId, (f64, f64)>,
    /// Retention factor applied by filter operations (1.0 = no loss).
    filter_retention: f64,
}

impl ConcentrationMap {
    /// An empty map: every operation's off-chip inputs are pure buffer and
    /// filters retain everything.
    pub fn new() -> Self {
        ConcentrationMap {
            sources: HashMap::new(),
            filter_retention: 1.0,
        }
    }

    /// Declares that operation `op` additionally draws `parts` volume parts
    /// of an off-chip fluid at `concentration`. A source mix with no
    /// on-chip parents takes its whole volume from here.
    pub fn source(mut self, op: OpId, concentration: f64, parts: f64) -> Self {
        assert!(
            concentration >= 0.0 && parts > 0.0,
            "concentration must be non-negative and parts positive"
        );
        self.sources.insert(op, (concentration, parts));
        self
    }

    /// Sets the fraction of analyte a filter retains (default 1.0).
    pub fn filter_retention(mut self, retention: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&retention),
            "retention must be in [0, 1]"
        );
        self.filter_retention = retention;
        self
    }

    /// Propagates concentrations through `graph`; returns the output
    /// concentration of each operation, indexed by `OpId`.
    ///
    /// Mixing model: each on-chip parent contributes one volume part; the
    /// declared off-chip source contributes its `parts`. Operations with
    /// neither (a source with no declaration) output buffer (`0.0`).
    pub fn profile(&self, graph: &SequencingGraph) -> Vec<f64> {
        let mut conc = vec![0.0f64; graph.len()];
        for &o in graph.topological_order() {
            let parents = graph.parents(o);
            let kind = graph.op(o).kind();
            conc[o.index()] = match kind {
                OperationKind::Mix => {
                    let mut mass = 0.0;
                    let mut volume = 0.0;
                    for &p in parents {
                        mass += conc[p.index()];
                        volume += 1.0;
                    }
                    if let Some(&(c, parts)) = self.sources.get(&o) {
                        mass += c * parts;
                        volume += parts;
                    }
                    if volume == 0.0 {
                        0.0
                    } else {
                        mass / volume
                    }
                }
                OperationKind::Filter => {
                    let input = parents.first().map_or(0.0, |&p| conc[p.index()]);
                    input * self.filter_retention
                }
                OperationKind::Heat | OperationKind::Detect => {
                    parents.first().map_or(0.0, |&p| conc[p.index()])
                }
            };
        }
        conc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluid::DiffusionCoefficient;
    use crate::time::Duration;

    fn d() -> DiffusionCoefficient {
        DiffusionCoefficient::PROTEIN
    }

    #[test]
    fn serial_dilution_halves_per_rung() {
        // stock -> mix(buffer) -> mix(buffer) -> ...
        let mut b = SequencingGraph::builder();
        let mut ops = Vec::new();
        let mut prev: Option<OpId> = None;
        for _ in 0..5 {
            let op = b.operation(OperationKind::Mix, Duration::from_secs(5), d());
            if let Some(p) = prev {
                b.edge(p, op).unwrap();
            }
            ops.push(op);
            prev = Some(op);
        }
        let g = b.build().unwrap();
        // The head draws pure stock; every later rung adds 1 part buffer.
        let mut map = ConcentrationMap::new().source(ops[0], 1.0, 1.0);
        for &op in &ops[1..] {
            map = map.source(op, 0.0, 1.0);
        }
        let conc = map.profile(&g);
        for (k, &op) in ops.iter().enumerate() {
            // rung 0: (1*1)/1 = 1; rung k: previous halved.
            let expected = 0.5f64.powi(k as i32);
            assert!(
                (conc[op.index()] - expected).abs() < 1e-12,
                "rung {k}: {} vs {expected}",
                conc[op.index()]
            );
        }
    }

    #[test]
    fn interpolation_averages_neighbours() {
        let mut b = SequencingGraph::builder();
        let hi = b.operation(OperationKind::Mix, Duration::from_secs(5), d());
        let lo = b.operation(OperationKind::Mix, Duration::from_secs(5), d());
        let mid = b.operation(OperationKind::Mix, Duration::from_secs(5), d());
        b.edge(hi, mid).unwrap();
        b.edge(lo, mid).unwrap();
        let g = b.build().unwrap();
        let conc = ConcentrationMap::new()
            .source(hi, 1.0, 1.0)
            .source(lo, 0.2, 1.0)
            .profile(&g);
        assert!((conc[mid.index()] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn passthrough_kinds_do_not_dilute() {
        let mut b = SequencingGraph::builder();
        let m = b.operation(OperationKind::Mix, Duration::from_secs(5), d());
        let h = b.operation(OperationKind::Heat, Duration::from_secs(2), d());
        let det = b.operation(OperationKind::Detect, Duration::from_secs(2), d());
        b.chain(&[m, h, det]).unwrap();
        let g = b.build().unwrap();
        let conc = ConcentrationMap::new().source(m, 0.8, 1.0).profile(&g);
        assert_eq!(conc[h.index()], 0.8);
        assert_eq!(conc[det.index()], 0.8);
    }

    #[test]
    fn filters_attenuate_by_retention() {
        let mut b = SequencingGraph::builder();
        let m = b.operation(OperationKind::Mix, Duration::from_secs(5), d());
        let f = b.operation(OperationKind::Filter, Duration::from_secs(3), d());
        b.edge(m, f).unwrap();
        let g = b.build().unwrap();
        let conc = ConcentrationMap::new()
            .source(m, 1.0, 1.0)
            .filter_retention(0.25)
            .profile(&g);
        assert!((conc[f.index()] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn undeclared_sources_are_buffer() {
        let mut b = SequencingGraph::builder();
        let m = b.operation(OperationKind::Mix, Duration::from_secs(5), d());
        let g = b.build().unwrap();
        let conc = ConcentrationMap::new().profile(&g);
        assert_eq!(conc[m.index()], 0.0);
    }

    #[test]
    fn uneven_parts_weight_the_mean() {
        // 1 part stock at 1.0 + 3 parts buffer = 0.25.
        let mut b = SequencingGraph::builder();
        let m = b.operation(OperationKind::Mix, Duration::from_secs(5), d());
        let g = b.build().unwrap();
        let conc = ConcentrationMap::new().source(m, 0.0, 3.0).profile(&g);
        assert_eq!(conc[m.index()], 0.0, "buffer only");

        let mut b = SequencingGraph::builder();
        let stock = b.operation(OperationKind::Mix, Duration::from_secs(5), d());
        let dilute = b.operation(OperationKind::Mix, Duration::from_secs(5), d());
        b.edge(stock, dilute).unwrap();
        let g = b.build().unwrap();
        let conc = ConcentrationMap::new()
            .source(stock, 1.0, 1.0)
            .source(dilute, 0.0, 3.0)
            .profile(&g);
        assert!((conc[dilute.index()] - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "retention")]
    fn rejects_bad_retention() {
        ConcentrationMap::new().filter_retention(1.5);
    }
}
