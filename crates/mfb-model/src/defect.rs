//! Chip defect maps: which cells and components a synthesis run must
//! avoid.
//!
//! Fabricated flow-layer chips are rarely pristine: valves stick, channels
//! clog, and whole mixers die on the bench. A [`DefectMap`] records the
//! known damage of one physical chip — **blocked grid cells** no channel
//! may cross, **dead components** no operation may bind to, and **degraded
//! cells** that still work but cost extra wash effort — so every pipeline
//! stage can route and bind around it instead of discovering the damage at
//! run time.
//!
//! The map serialises to a flat JSON document (no maps/sets, only arrays)
//! so it can ride alongside an `.assay` file:
//!
//! ```json
//! {
//!   "blocked": [{"x": 3, "y": 7}, {"x": 4, "y": 7}],
//!   "dead": [2],
//!   "penalties": [{"cell": {"x": 9, "y": 1}, "extra_weight": 5}]
//! }
//! ```

use crate::component::ComponentSet;
use crate::geom::{CellPos, GridSpec};
use crate::ids::ComponentId;
use std::fmt;

/// One degraded-but-usable cell: routing through it costs `extra_weight`
/// additional wash-weight units on top of whatever the router already
/// charges (Eq. (5)'s `w(i)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CellPenalty {
    /// The degraded cell.
    pub cell: CellPos,
    /// Extra wash-weight units charged for crossing it.
    pub extra_weight: u32,
}

/// The known damage of one physical chip.
///
/// Internally the map keeps its collections sorted and deduplicated, so
/// membership tests are `O(log n)` and two maps describing the same damage
/// always compare (and serialise) identically.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DefectMap {
    /// Cells no channel may occupy (sorted, deduplicated).
    blocked: Vec<CellPos>,
    /// Components no operation may bind to (sorted, deduplicated).
    dead: Vec<ComponentId>,
    /// Degraded cells with their extra routing weight (sorted by cell).
    penalties: Vec<CellPenalty>,
}

impl DefectMap {
    /// A pristine chip: nothing blocked, nothing dead, no penalties.
    pub fn pristine() -> Self {
        DefectMap::default()
    }

    /// `true` when the chip is pristine.
    pub fn is_pristine(&self) -> bool {
        self.blocked.is_empty() && self.dead.is_empty() && self.penalties.is_empty()
    }

    /// Marks `cell` permanently unusable for routing.
    pub fn block_cell(&mut self, cell: CellPos) -> &mut Self {
        if let Err(i) = self.blocked.binary_search(&cell) {
            self.blocked.insert(i, cell);
        }
        self
    }

    /// Marks `component` dead: scheduling must not bind operations to it
    /// and placement must not move it around.
    pub fn kill_component(&mut self, component: ComponentId) -> &mut Self {
        if let Err(i) = self.dead.binary_search(&component) {
            self.dead.insert(i, component);
        }
        self
    }

    /// Charges `extra_weight` additional wash-weight units for routing
    /// through `cell`. Repeated calls on the same cell accumulate.
    pub fn penalize_cell(&mut self, cell: CellPos, extra_weight: u32) -> &mut Self {
        match self.penalties.binary_search_by_key(&cell, |p| p.cell) {
            Ok(i) => {
                self.penalties[i].extra_weight =
                    self.penalties[i].extra_weight.saturating_add(extra_weight);
            }
            Err(i) => self.penalties.insert(i, CellPenalty { cell, extra_weight }),
        }
        self
    }

    /// `true` when no channel may occupy `cell`.
    pub fn is_blocked(&self, cell: CellPos) -> bool {
        self.blocked.binary_search(&cell).is_ok()
    }

    /// `true` when `component` must not be bound or used.
    pub fn is_dead(&self, component: ComponentId) -> bool {
        self.dead.binary_search(&component).is_ok()
    }

    /// The extra routing weight of `cell` (0 for healthy cells).
    pub fn weight_penalty(&self, cell: CellPos) -> u32 {
        match self.penalties.binary_search_by_key(&cell, |p| p.cell) {
            Ok(i) => self.penalties[i].extra_weight,
            Err(_) => 0,
        }
    }

    /// All blocked cells, sorted.
    pub fn blocked_cells(&self) -> &[CellPos] {
        &self.blocked
    }

    /// All dead components, sorted.
    pub fn dead_components(&self) -> &[ComponentId] {
        &self.dead
    }

    /// All degraded cells with their penalties, sorted by cell.
    pub fn penalties(&self) -> &[CellPenalty] {
        &self.penalties
    }

    /// Checks the map against the chip it claims to describe: every
    /// blocked or degraded cell must lie on `grid` and every dead
    /// component must exist in `components`.
    ///
    /// # Errors
    ///
    /// The first inconsistency found, as a [`DefectMapError`].
    pub fn validate(
        &self,
        grid: GridSpec,
        components: &ComponentSet,
    ) -> Result<(), DefectMapError> {
        if let Some(&cell) = self.blocked.iter().find(|&&c| !grid.contains(c)) {
            return Err(DefectMapError::BlockedCellOffGrid { cell, grid });
        }
        if let Some(p) = self.penalties.iter().find(|p| !grid.contains(p.cell)) {
            return Err(DefectMapError::PenalizedCellOffGrid { cell: p.cell, grid });
        }
        if let Some(&component) = self.dead.iter().find(|c| c.index() >= components.len()) {
            return Err(DefectMapError::UnknownDeadComponent {
                component,
                known: components.len(),
            });
        }
        Ok(())
    }

    /// Deterministically samples a random defect map for fault-injection
    /// sweeps: each grid cell is blocked with probability `cell_p` and each
    /// component dies with probability `comp_p` (both clamped to `[0, 1]`),
    /// driven by `seed` alone — the same arguments always produce the same
    /// map.
    pub fn sample(
        grid: GridSpec,
        components: &ComponentSet,
        cell_p: f64,
        comp_p: f64,
        seed: u64,
    ) -> Self {
        let cell_p = cell_p.clamp(0.0, 1.0);
        let comp_p = comp_p.clamp(0.0, 1.0);
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut unit = move || {
            // splitmix64: tiny, seedable, and good enough for sweeps.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut map = DefectMap::pristine();
        for y in 0..grid.height {
            for x in 0..grid.width {
                if unit() < cell_p {
                    map.block_cell(CellPos::new(x, y));
                }
            }
        }
        for c in components.ids() {
            if unit() < comp_p {
                map.kill_component(c);
            }
        }
        map
    }
}

/// Why a [`DefectMap`] is inconsistent with the chip it describes.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum DefectMapError {
    /// A blocked cell lies outside the routing grid.
    BlockedCellOffGrid {
        /// The offending cell.
        cell: CellPos,
        /// The grid it misses.
        grid: GridSpec,
    },
    /// A penalised cell lies outside the routing grid.
    PenalizedCellOffGrid {
        /// The offending cell.
        cell: CellPos,
        /// The grid it misses.
        grid: GridSpec,
    },
    /// A dead component id does not exist in the allocation.
    UnknownDeadComponent {
        /// The offending id.
        component: ComponentId,
        /// How many components the allocation actually has.
        known: usize,
    },
}

impl fmt::Display for DefectMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefectMapError::BlockedCellOffGrid { cell, grid } => write!(
                f,
                "blocked cell ({}, {}) lies outside the {}x{} grid",
                cell.x, cell.y, grid.width, grid.height
            ),
            DefectMapError::PenalizedCellOffGrid { cell, grid } => write!(
                f,
                "penalized cell ({}, {}) lies outside the {}x{} grid",
                cell.x, cell.y, grid.width, grid.height
            ),
            DefectMapError::UnknownDeadComponent { component, known } => write!(
                f,
                "dead component {component} does not exist (allocation has {known} components)"
            ),
        }
    }
}

impl std::error::Error for DefectMapError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Allocation, ComponentLibrary};

    #[test]
    fn pristine_map_has_no_defects() {
        let m = DefectMap::pristine();
        assert!(m.is_pristine());
        assert!(!m.is_blocked(CellPos::new(0, 0)));
        assert!(!m.is_dead(ComponentId::new(0)));
        assert_eq!(m.weight_penalty(CellPos::new(0, 0)), 0);
    }

    #[test]
    fn membership_and_dedup() {
        let mut m = DefectMap::pristine();
        m.block_cell(CellPos::new(2, 3))
            .block_cell(CellPos::new(1, 1))
            .block_cell(CellPos::new(2, 3));
        m.kill_component(ComponentId::new(4))
            .kill_component(ComponentId::new(4));
        assert_eq!(m.blocked_cells().len(), 2);
        assert_eq!(m.dead_components(), &[ComponentId::new(4)]);
        assert!(m.is_blocked(CellPos::new(2, 3)));
        assert!(!m.is_blocked(CellPos::new(3, 2)));
        assert!(m.is_dead(ComponentId::new(4)));
    }

    #[test]
    fn penalties_accumulate() {
        let mut m = DefectMap::pristine();
        m.penalize_cell(CellPos::new(5, 5), 3)
            .penalize_cell(CellPos::new(5, 5), 2);
        assert_eq!(m.weight_penalty(CellPos::new(5, 5)), 5);
        assert_eq!(m.weight_penalty(CellPos::new(5, 6)), 0);
    }

    #[test]
    fn validate_rejects_off_grid_and_unknown() {
        let grid = GridSpec::square(8);
        let comps = Allocation::new(1, 0, 0, 1).instantiate(&ComponentLibrary::default());
        let mut off = DefectMap::pristine();
        off.block_cell(CellPos::new(9, 0));
        assert!(matches!(
            off.validate(grid, &comps),
            Err(DefectMapError::BlockedCellOffGrid { .. })
        ));
        let mut unknown = DefectMap::pristine();
        unknown.kill_component(ComponentId::new(7));
        assert!(matches!(
            unknown.validate(grid, &comps),
            Err(DefectMapError::UnknownDeadComponent { .. })
        ));
        let mut ok = DefectMap::pristine();
        ok.block_cell(CellPos::new(7, 7))
            .kill_component(ComponentId::new(1));
        assert!(ok.validate(grid, &comps).is_ok());
    }

    #[test]
    fn sampling_is_deterministic_and_seed_sensitive() {
        let grid = GridSpec::square(12);
        let comps = Allocation::new(2, 1, 1, 1).instantiate(&ComponentLibrary::default());
        let a = DefectMap::sample(grid, &comps, 0.1, 0.3, 42);
        let b = DefectMap::sample(grid, &comps, 0.1, 0.3, 42);
        let c = DefectMap::sample(grid, &comps, 0.1, 0.3, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.validate(grid, &comps).is_ok());
    }

    #[test]
    fn serde_round_trip() {
        let mut m = DefectMap::pristine();
        m.block_cell(CellPos::new(3, 7))
            .kill_component(ComponentId::new(2))
            .penalize_cell(CellPos::new(9, 1), 5);
        let json = serde_json::to_string(&m).unwrap();
        let back: DefectMap = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
