//! Wash-time models: how long it takes to flush a contaminant out of a
//! component or channel.
//!
//! Per the paper's §II-B (following Hu et al., TCAD'16), wash time is
//! dominated by the contaminant's diffusion coefficient; channel length,
//! channel width and buffer pressure are second-order and ignored. A *lower*
//! diffusion coefficient means a *longer* wash.
//!
//! The default model, [`LogLinearWash`], interpolates linearly in
//! `log10(D)` between the two anchor points published in the paper:
//! `D = 1e-5 cm²/s → 0.2 s` (small molecules such as a lysis buffer) and
//! `D = 5e-8 cm²/s → 6 s` (large particles such as tobacco mosaic virus),
//! clamped to a configurable maximum.

use crate::fluid::DiffusionCoefficient;
use crate::time::Duration;
use std::fmt::Debug;

/// Maps a contaminant's diffusion coefficient to the buffer-flush time needed
/// to remove its residue from a component or a channel cell.
///
/// Implementations must be monotone: a smaller coefficient never yields a
/// shorter wash. The property-based tests in this crate enforce that for the
/// provided models.
pub trait WashModel: Debug + Send + Sync {
    /// Wash time for a residue with diffusion coefficient `d`.
    fn wash_time(&self, d: DiffusionCoefficient) -> Duration;
}

/// The default log-linear wash model (see module docs).
///
/// # Examples
///
/// ```
/// use mfb_model::prelude::*;
/// use mfb_model::wash::LogLinearWash;
///
/// let model = LogLinearWash::paper_calibrated();
/// assert_eq!(model.wash_time(DiffusionCoefficient::SMALL_MOLECULE),
///            Duration::from_secs_f64(0.2));
/// assert_eq!(model.wash_time(DiffusionCoefficient::VIRUS),
///            Duration::from_secs(6));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LogLinearWash {
    /// Wash time at the fast-diffusion anchor.
    t_fast: f64,
    /// `log10` of the fast-diffusion anchor coefficient.
    log_d_fast: f64,
    /// Seconds of extra wash per decade of diffusion-coefficient decrease.
    secs_per_decade: f64,
    /// Upper clamp on wash time, seconds.
    max_secs: f64,
}

impl LogLinearWash {
    /// Builds a model through two anchor points
    /// `(d_fast → t_fast)` and `(d_slow → t_slow)`, clamped to `max`.
    ///
    /// # Panics
    ///
    /// Panics if `d_fast <= d_slow` or `t_fast >= t_slow` (the model must
    /// slope the right way).
    pub fn from_anchors(
        d_fast: DiffusionCoefficient,
        t_fast: Duration,
        d_slow: DiffusionCoefficient,
        t_slow: Duration,
        max: Duration,
    ) -> Self {
        assert!(
            d_fast > d_slow,
            "fast-diffusion anchor must have the larger coefficient"
        );
        assert!(
            t_fast < t_slow,
            "fast-diffusion anchor must have the shorter wash time"
        );
        let decades = d_fast.log10() - d_slow.log10();
        LogLinearWash {
            t_fast: t_fast.as_secs_f64(),
            log_d_fast: d_fast.log10(),
            secs_per_decade: (t_slow.as_secs_f64() - t_fast.as_secs_f64()) / decades,
            max_secs: max.as_secs_f64(),
        }
    }

    /// The diffusion coefficient whose residue washes in exactly `wash`
    /// under this model (the inverse of [`WashModel::wash_time`], ignoring
    /// the clamp). Useful for constructing benchmark fluids with prescribed
    /// wash times.
    ///
    /// # Panics
    ///
    /// Panics if `wash` exceeds the model's clamp (no coefficient reaches it).
    pub fn coefficient_for(&self, wash: Duration) -> DiffusionCoefficient {
        let secs = wash.as_secs_f64();
        assert!(
            secs <= self.max_secs,
            "wash time {wash} exceeds the model's {} s clamp",
            self.max_secs
        );
        let decades_slower = (secs - self.t_fast) / self.secs_per_decade;
        DiffusionCoefficient::new(10f64.powf(self.log_d_fast - decades_slower))
            .expect("inverse produced a valid coefficient")
    }

    /// The longest wash time this model ever reports (its clamp), and the
    /// largest value [`coefficient_for`](LogLinearWash::coefficient_for)
    /// can invert. The `.assay` parser checks `wash=` values against this.
    pub fn max_wash(&self) -> Duration {
        Duration::from_secs_f64(self.max_secs)
    }

    /// The model calibrated on the paper's two published anchor points, with
    /// wash time clamped to 10 s (the paper's worst-case residue, and its
    /// initial routing-cell weight `w_e = 10`).
    pub fn paper_calibrated() -> Self {
        LogLinearWash::from_anchors(
            DiffusionCoefficient::SMALL_MOLECULE,
            Duration::from_secs_f64(0.2),
            DiffusionCoefficient::VIRUS,
            Duration::from_secs(6),
            Duration::from_secs(10),
        )
    }
}

impl Default for LogLinearWash {
    fn default() -> Self {
        LogLinearWash::paper_calibrated()
    }
}

impl WashModel for LogLinearWash {
    fn wash_time(&self, d: DiffusionCoefficient) -> Duration {
        let decades_slower = self.log_d_fast - d.log10();
        let secs = (self.t_fast + self.secs_per_decade * decades_slower).clamp(0.0, self.max_secs);
        Duration::from_secs_f64(secs)
    }
}

/// A wash model defined by an explicit table of `(coefficient, wash time)`
/// break-points, evaluated as a step function: a residue pays the wash time
/// of the smallest tabulated coefficient that is at least its own, and
/// contaminants diffusing faster than every break-point pay the `floor`.
///
/// Useful for reproducing published figures that tabulate wash times
/// per fluid (the paper's Fig. 2(b)) rather than deriving them from a curve.
#[derive(Debug, Clone, PartialEq)]
pub struct TableWash {
    /// Break-points sorted by ascending coefficient.
    table: Vec<(DiffusionCoefficient, Duration)>,
    /// Wash time for coefficients faster than every break-point.
    floor: Duration,
}

impl TableWash {
    /// Builds a table model. `entries` may be in any order; `floor` is the
    /// wash time for contaminants diffusing faster than all entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or the implied map is not monotone
    /// (a faster-diffusing entry with a longer wash time).
    pub fn new(mut entries: Vec<(DiffusionCoefficient, Duration)>, floor: Duration) -> Self {
        assert!(
            !entries.is_empty(),
            "table wash model needs at least one entry"
        );
        entries.sort_by_key(|entry| entry.0);
        for w in entries.windows(2) {
            assert!(
                w[0].1 >= w[1].1,
                "wash table must be monotone: slower diffusion => longer wash"
            );
        }
        assert!(
            floor <= entries.last().expect("non-empty").1,
            "floor must not exceed the fastest entry's wash time"
        );
        TableWash {
            table: entries,
            floor,
        }
    }
}

impl WashModel for TableWash {
    fn wash_time(&self, d: DiffusionCoefficient) -> Duration {
        // Entries are sorted ascending by coefficient; pick the first entry
        // with coefficient >= d (the tightest bound on this contaminant).
        for &(dc, t) in &self.table {
            if dc >= d {
                return t;
            }
        }
        self.floor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchors_reproduce() {
        let m = LogLinearWash::paper_calibrated();
        assert_eq!(
            m.wash_time(DiffusionCoefficient::SMALL_MOLECULE),
            Duration::from_secs_f64(0.2)
        );
        assert_eq!(
            m.wash_time(DiffusionCoefficient::VIRUS),
            Duration::from_secs(6)
        );
    }

    #[test]
    fn coefficient_for_inverts_wash_time() {
        let m = LogLinearWash::paper_calibrated();
        for secs in [0.2, 1.0, 2.0, 6.0, 9.5] {
            let want = Duration::from_secs_f64(secs);
            let d = m.coefficient_for(want);
            assert_eq!(m.wash_time(d), want, "round trip failed at {secs} s");
        }
    }

    #[test]
    #[should_panic(expected = "clamp")]
    fn coefficient_for_rejects_beyond_clamp() {
        LogLinearWash::paper_calibrated().coefficient_for(Duration::from_secs(11));
    }

    #[test]
    fn clamps_at_maximum() {
        let m = LogLinearWash::paper_calibrated();
        let very_slow = DiffusionCoefficient::new(1e-12).unwrap();
        assert_eq!(m.wash_time(very_slow), Duration::from_secs(10));
    }

    #[test]
    fn fast_diffusion_washes_quickly() {
        let m = LogLinearWash::paper_calibrated();
        let very_fast = DiffusionCoefficient::new(1e-3).unwrap();
        assert!(m.wash_time(very_fast) <= Duration::from_secs_f64(0.2));
    }

    #[test]
    fn monotone_between_anchors() {
        let m = LogLinearWash::paper_calibrated();
        let mut last = Duration::ZERO;
        // Sweep from 1e-5 down to 1e-9.
        for exp10 in 0..=40 {
            let d = DiffusionCoefficient::new(1e-5 / 10f64.powf(exp10 as f64 / 10.0)).unwrap();
            let w = m.wash_time(d);
            assert!(w >= last, "wash time decreased at {d}");
            last = w;
        }
    }

    #[test]
    #[should_panic(expected = "larger coefficient")]
    fn rejects_inverted_anchors() {
        LogLinearWash::from_anchors(
            DiffusionCoefficient::VIRUS,
            Duration::from_secs(1),
            DiffusionCoefficient::SMALL_MOLECULE,
            Duration::from_secs(2),
            Duration::from_secs(10),
        );
    }

    #[test]
    fn table_model_steps() {
        let t = TableWash::new(
            vec![
                (DiffusionCoefficient::SMALL_MOLECULE, Duration::from_secs(2)),
                (DiffusionCoefficient::VIRUS, Duration::from_secs(10)),
            ],
            Duration::from_secs(1),
        );
        // Exactly at an entry.
        assert_eq!(
            t.wash_time(DiffusionCoefficient::SMALL_MOLECULE),
            Duration::from_secs(2)
        );
        // Slower than every entry: pays the slowest (virus) bucket.
        let slower = DiffusionCoefficient::new(1e-9).unwrap();
        assert_eq!(t.wash_time(slower), Duration::from_secs(10));
        // Between the entries: pays the small-molecule bucket.
        let mid = DiffusionCoefficient::new(1e-6).unwrap();
        assert_eq!(t.wash_time(mid), Duration::from_secs(2));
        // Faster than everything: floor.
        let fast = DiffusionCoefficient::new(1e-3).unwrap();
        assert_eq!(t.wash_time(fast), Duration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn table_rejects_non_monotone() {
        TableWash::new(
            vec![
                (DiffusionCoefficient::SMALL_MOLECULE, Duration::from_secs(9)),
                (DiffusionCoefficient::VIRUS, Duration::from_secs(1)),
            ],
            Duration::ZERO,
        );
    }
}
