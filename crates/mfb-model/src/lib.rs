//! Domain model for flow-based microfluidic biochips (FBMBs) with a
//! distributed channel-storage architecture (DCSA).
//!
//! This crate is the foundation of the `mfb` workspace, a Rust implementation
//! of *"Physical Synthesis of Flow-Based Microfluidic Biochips Considering
//! Distributed Channel Storage"* (Chen et al., DATE 2019). It defines the
//! vocabulary every other crate speaks:
//!
//! * [`time`] — deterministic tick-based [`Instant`](time::Instant) /
//!   [`Duration`](time::Duration) / [`Interval`](time::Interval) arithmetic;
//! * [`ids`] — strongly-typed operation / component / net / task identifiers;
//! * [`fluid`] — diffusion coefficients, the physics behind wash times;
//! * [`operation`] and [`graph`] — bioassays as validated sequencing DAGs;
//! * [`component`] — component kinds, footprints, allocations, the set `C`;
//! * [`wash`] — wash-time models mapping diffusion coefficients to flush
//!   durations;
//! * [`geom`] — the cell grid on which placement and routing operate;
//! * [`hash`] — stable structural content hashing behind the
//!   content-addressed stage cache;
//! * [`budget`] — deadlines and cooperative cancellation polled at stage
//!   checkpoints.
//!
//! # Quick taste
//!
//! ```
//! use mfb_model::prelude::*;
//!
//! // A two-step assay: mix, then detect.
//! let mut b = SequencingGraph::builder();
//! let d = DiffusionCoefficient::PROTEIN;
//! let mix = b.operation(OperationKind::Mix, Duration::from_secs(5), d);
//! let det = b.operation(OperationKind::Detect, Duration::from_secs(4), d);
//! b.edge(mix, det).unwrap();
//! let assay = b.build().unwrap();
//!
//! // One mixer + one detector suffice.
//! let chip = Allocation::new(1, 0, 0, 1);
//! assert!(chip
//!     .instantiate(&ComponentLibrary::default())
//!     .covers(assay.ops().map(|o| o.kind())));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod budget;
pub mod component;
pub mod concentration;
pub mod defect;
pub mod fluid;
pub mod geom;
pub mod graph;
pub mod hash;
pub mod ids;
pub mod operation;
pub mod par;
pub mod text;
pub mod time;
pub mod transport;
pub mod wash;

/// One-stop import for the types used by virtually every consumer.
pub mod prelude {
    pub use crate::budget::{Budget, BudgetExceeded, CancelToken};
    pub use crate::component::{
        Allocation, Component, ComponentKind, ComponentLibrary, ComponentSet, Footprint,
    };
    pub use crate::concentration::ConcentrationMap;
    pub use crate::defect::{CellPenalty, DefectMap, DefectMapError};
    pub use crate::fluid::DiffusionCoefficient;
    pub use crate::geom::{CellPos, CellRect, GridSpec};
    pub use crate::graph::{GraphError, SequencingGraph, SequencingGraphBuilder};
    pub use crate::hash::{content_hash, wash_fingerprint, ContentHash, StableHasher};
    pub use crate::ids::{ComponentId, NetId, OpId, TaskId};
    pub use crate::operation::{Operation, OperationKind};
    pub use crate::text::{
        parse_assay, parse_assay_ast, write_assay, write_assay_ast, AssayAst, AssayFile,
        DefectDecl, EdgeDecl, FlowDecl, FlowKind, FluidSpec, OpDecl, ParseError, Span,
    };
    pub use crate::time::{peak_overlap, Duration, Instant, Interval};
    pub use crate::transport::{ConstantTc, PressureDriven, TransportModel};
    pub use crate::wash::{LogLinearWash, TableWash, WashModel};
}
