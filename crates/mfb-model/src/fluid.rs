//! Fluids and their diffusion coefficients.
//!
//! In a flow-based biochip every operation produces an output fluid that later
//! contaminates whatever component or channel it touched. The cost of removing
//! that contamination (the *wash time*) is dominated by the contaminant's
//! **diffusion coefficient** — see the paper's §II-B and Hu et al., TCAD'16:
//! small molecules diffuse fast and wash out in fractions of a second, while
//! large particles such as virus capsids diffuse slowly and take many seconds
//! of buffer flushing.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A diffusion coefficient in cm²/s.
///
/// The value is guaranteed finite and strictly positive. Biologically
/// plausible values span roughly `1e-9` (large particles) to `1e-5`
/// (small molecules) cm²/s; constructors accept anything positive so the
/// library stays usable for exotic chemistries.
///
/// `DiffusionCoefficient` implements a *total* order (positive finite floats
/// order totally), so fluids can be ranked by how hard they are to wash —
/// the paper's Case-I binding rule picks the parent fluid with the **lowest**
/// coefficient.
///
/// # Examples
///
/// ```
/// use mfb_model::fluid::DiffusionCoefficient;
///
/// let lysis_buffer = DiffusionCoefficient::new(1e-5).unwrap();
/// let virus = DiffusionCoefficient::new(5e-8).unwrap();
/// assert!(virus < lysis_buffer);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct DiffusionCoefficient(f64);

impl DiffusionCoefficient {
    /// Typical coefficient of a small-molecule buffer (e.g. a lysis buffer),
    /// `1e-5` cm²/s — washes out in ~0.2 s.
    pub const SMALL_MOLECULE: DiffusionCoefficient = DiffusionCoefficient(1e-5);

    /// Typical coefficient of a mid-size protein, `5e-7` cm²/s.
    pub const PROTEIN: DiffusionCoefficient = DiffusionCoefficient(5e-7);

    /// Typical coefficient of a large particle (e.g. tobacco mosaic virus),
    /// `5e-8` cm²/s — needs ~6 s of washing.
    pub const VIRUS: DiffusionCoefficient = DiffusionCoefficient(5e-8);

    /// Creates a diffusion coefficient, rejecting non-finite or non-positive
    /// values.
    pub fn new(cm2_per_s: f64) -> Result<Self, InvalidDiffusion> {
        if cm2_per_s.is_finite() && cm2_per_s > 0.0 {
            Ok(DiffusionCoefficient(cm2_per_s))
        } else {
            Err(InvalidDiffusion { value: cm2_per_s })
        }
    }

    /// The coefficient in cm²/s.
    #[inline]
    pub const fn cm2_per_s(self) -> f64 {
        self.0
    }

    /// Base-10 logarithm of the coefficient; the natural axis for wash-time
    /// models.
    #[inline]
    pub fn log10(self) -> f64 {
        self.0.log10()
    }
}

impl Eq for DiffusionCoefficient {}

impl PartialOrd for DiffusionCoefficient {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DiffusionCoefficient {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Values are finite and positive by construction, so `total_cmp`
        // agrees with the usual numeric order.
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for DiffusionCoefficient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2e} cm²/s", self.0)
    }
}

/// Error returned by [`DiffusionCoefficient::new`] for invalid values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidDiffusion {
    /// The rejected value.
    pub value: f64,
}

impl fmt::Display for InvalidDiffusion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "diffusion coefficient must be finite and positive, got {}",
            self.value
        )
    }
}

impl std::error::Error for InvalidDiffusion {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_positive_finite() {
        let d = DiffusionCoefficient::new(3.2e-6).unwrap();
        assert_eq!(d.cm2_per_s(), 3.2e-6);
    }

    #[test]
    fn rejects_bad_values() {
        assert!(DiffusionCoefficient::new(0.0).is_err());
        assert!(DiffusionCoefficient::new(-1e-6).is_err());
        assert!(DiffusionCoefficient::new(f64::NAN).is_err());
        assert!(DiffusionCoefficient::new(f64::INFINITY).is_err());
    }

    #[test]
    fn orders_numerically() {
        assert!(DiffusionCoefficient::VIRUS < DiffusionCoefficient::PROTEIN);
        assert!(DiffusionCoefficient::PROTEIN < DiffusionCoefficient::SMALL_MOLECULE);
        let mut v = [
            DiffusionCoefficient::SMALL_MOLECULE,
            DiffusionCoefficient::VIRUS,
            DiffusionCoefficient::PROTEIN,
        ];
        v.sort();
        assert_eq!(v[0], DiffusionCoefficient::VIRUS);
        assert_eq!(v[2], DiffusionCoefficient::SMALL_MOLECULE);
    }

    #[test]
    fn log10_matches() {
        let d = DiffusionCoefficient::new(1e-5).unwrap();
        assert!((d.log10() + 5.0).abs() < 1e-12);
    }

    #[test]
    fn error_display() {
        let err = DiffusionCoefficient::new(-1.0).unwrap_err();
        assert!(err.to_string().contains("-1"));
    }
}
