//! Strongly-typed identifiers for the entities of a synthesis problem.
//!
//! Using distinct newtypes for operation, component, net and transport-task
//! identifiers prevents the classic index-confusion bugs of EDA code bases
//! (indexing a component table with an operation id, etc.). All ids are plain
//! dense `u32` indices assigned by their owning container.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a raw dense index.
            #[inline]
            pub const fn new(index: u32) -> Self {
                $name(index)
            }

            /// The raw dense index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifier of an operation (a vertex of the sequencing graph).
    OpId,
    "o"
);

define_id!(
    /// Identifier of an allocated on-chip component (mixer, heater, …).
    ComponentId,
    "c"
);

define_id!(
    /// Identifier of a routing net (an ordered component pair that exchanges
    /// fluid at least once in the schedule).
    NetId,
    "n"
);

define_id!(
    /// Identifier of a transport task (one fluid movement between two
    /// components, or an eviction into channel storage).
    TaskId,
    "tk"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_and_display() {
        let o = OpId::new(3);
        assert_eq!(o.index(), 3);
        assert_eq!(o.to_string(), "o3");
        assert_eq!(ComponentId::new(1).to_string(), "c1");
        assert_eq!(NetId::new(0).to_string(), "n0");
        assert_eq!(TaskId::new(9).to_string(), "tk9");
        assert_eq!(usize::from(TaskId::new(9)), 9);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(OpId::new(1) < OpId::new(2));
        assert_eq!(OpId::new(5), OpId::new(5));
    }
}
