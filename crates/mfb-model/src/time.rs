//! Deterministic, tick-based time arithmetic.
//!
//! All scheduling, placement and routing code in this workspace manipulates
//! time as an integer number of *ticks* (one tick = 0.1 s). Integer time keeps
//! priority queues totally ordered, makes every experiment bit-reproducible,
//! and sidesteps the float-comparison pitfalls that plague schedulers.
//!
//! Two newtypes are provided, mirroring [`std::time`]:
//!
//! * [`Instant`] — a point on the global assay timeline (ticks since assay
//!   start).
//! * [`Duration`] — a span of time (a non-negative number of ticks).
//!
//! Conversions to and from seconds live at the API boundary
//! ([`Duration::from_secs_f64`], [`Instant::as_secs_f64`], …); internal code
//! never touches floating point time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of ticks per second. One tick is 100 ms, fine enough to represent
/// the shortest wash time reported in the paper (0.2 s) exactly.
pub const TICKS_PER_SECOND: u64 = 10;

/// A span of time, measured in integer ticks (see [`TICKS_PER_SECOND`]).
///
/// `Duration` is `Copy`, totally ordered and overflow-checked in debug
/// builds. It is the unit for operation execution times, wash times, cache
/// times and the constant transport time `t_c`.
///
/// # Examples
///
/// ```
/// use mfb_model::time::Duration;
///
/// let mix = Duration::from_secs(5);
/// let wash = Duration::from_secs_f64(0.2);
/// assert_eq!((mix + wash).as_secs_f64(), 5.2);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Duration(u64);

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from a raw tick count.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        Duration(ticks)
    }

    /// Creates a duration from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs * TICKS_PER_SECOND)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// tick.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN or too large to represent.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        let ticks = (secs * TICKS_PER_SECOND as f64).round();
        assert!(ticks <= u64::MAX as f64, "duration out of range: {secs} s");
        Duration(ticks as u64)
    }

    /// Raw tick count.
    #[inline]
    pub const fn as_ticks(self) -> u64 {
        self.0
    }

    /// This duration expressed in (possibly fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SECOND as f64
    }

    /// `true` if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked subtraction; `None` when `rhs > self`.
    #[inline]
    pub const fn checked_sub(self, rhs: Duration) -> Option<Duration> {
        match self.0.checked_sub(rhs.0) {
            Some(t) => Some(Duration(t)),
            None => None,
        }
    }

    /// Saturating subtraction; clamps at [`Duration::ZERO`].
    #[inline]
    pub const fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// The larger of `self` and `other`.
    #[inline]
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }

    /// The smaller of `self` and `other`.
    #[inline]
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(
            self.0
                .checked_sub(rhs.0)
                .expect("duration subtraction underflow"),
        )
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, Add::add)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}s", self.as_secs_f64())
    }
}

/// A point on the assay timeline: ticks elapsed since the assay started.
///
/// The assay origin is [`Instant::ZERO`]. Subtracting two instants yields a
/// [`Duration`]; adding a [`Duration`] to an instant yields a later instant.
///
/// # Examples
///
/// ```
/// use mfb_model::time::{Duration, Instant};
///
/// let start = Instant::ZERO + Duration::from_secs(3);
/// let end = start + Duration::from_secs(5);
/// assert_eq!(end - start, Duration::from_secs(5));
/// assert!(end > start);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Instant(u64);

impl Instant {
    /// The assay start time.
    pub const ZERO: Instant = Instant(0);

    /// Creates an instant from a raw tick count since assay start.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        Instant(ticks)
    }

    /// Creates an instant from whole seconds since assay start.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        Instant(secs * TICKS_PER_SECOND)
    }

    /// Raw tick count since assay start.
    #[inline]
    pub const fn as_ticks(self) -> u64 {
        self.0
    }

    /// Seconds since assay start.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SECOND as f64
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    #[inline]
    pub fn duration_since(self, earlier: Instant) -> Duration {
        Duration(
            self.0
                .checked_sub(earlier.0)
                .expect("`earlier` is later than `self`"),
        )
    }

    /// Duration elapsed since `earlier`, or [`Duration::ZERO`] if `earlier`
    /// is in the future.
    #[inline]
    pub const fn saturating_duration_since(self, earlier: Instant) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// The later of `self` and `other`.
    #[inline]
    pub fn max(self, other: Instant) -> Instant {
        Instant(self.0.max(other.0))
    }

    /// The earlier of `self` and `other`.
    #[inline]
    pub fn min(self, other: Instant) -> Instant {
        Instant(self.0.min(other.0))
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    #[inline]
    fn add(self, rhs: Duration) -> Instant {
        Instant(self.0.checked_add(rhs.0).expect("instant overflow"))
    }
}

impl AddAssign<Duration> for Instant {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Duration> for Instant {
    type Output = Instant;
    #[inline]
    fn sub(self, rhs: Duration) -> Instant {
        Instant(
            self.0
                .checked_sub(rhs.0)
                .expect("instant underflow: result before assay start"),
        )
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Instant) -> Duration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.1}s", self.as_secs_f64())
    }
}

/// A half-open time interval `[start, end)` on the assay timeline.
///
/// Intervals are the currency of conflict detection: two transport tasks
/// conflict on a grid cell exactly when their occupancy intervals intersect.
/// The half-open convention means back-to-back intervals (`a.end == b.start`)
/// do **not** overlap, matching the physical intuition that a channel freed
/// at time `t` is usable from time `t`.
///
/// # Examples
///
/// ```
/// use mfb_model::time::{Duration, Instant, Interval};
///
/// let a = Interval::new(Instant::from_secs(0), Instant::from_secs(5));
/// let b = Interval::new(Instant::from_secs(5), Instant::from_secs(9));
/// assert!(!a.overlaps(b));
/// assert!(a.overlaps(Interval::new(Instant::from_secs(4), Instant::from_secs(6))));
/// ```
///
/// Intervals order lexicographically by `(start, end)` — a total order used
/// for deterministic diagnostic output, not a containment relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// Inclusive start of the interval.
    pub start: Instant,
    /// Exclusive end of the interval.
    pub end: Instant,
}

impl Interval {
    /// Creates an interval `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    #[inline]
    pub fn new(start: Instant, end: Instant) -> Self {
        assert!(end >= start, "interval end {end} before start {start}");
        Interval { start, end }
    }

    /// An empty interval anchored at `at`.
    #[inline]
    pub fn empty_at(at: Instant) -> Self {
        Interval { start: at, end: at }
    }

    /// Length of the interval.
    #[inline]
    pub fn length(self) -> Duration {
        self.end - self.start
    }

    /// `true` when the interval contains no time at all.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// `true` when `self` and `other` share any instant
    /// (half-open semantics; touching endpoints do not overlap).
    /// Empty intervals never overlap anything.
    #[inline]
    pub fn overlaps(self, other: Interval) -> bool {
        !self.is_empty() && !other.is_empty() && self.start < other.end && other.start < self.end
    }

    /// `true` when instant `t` lies within `[start, end)`.
    #[inline]
    pub fn contains(self, t: Instant) -> bool {
        self.start <= t && t < self.end
    }

    /// The smallest interval covering both `self` and `other`.
    #[inline]
    pub fn hull(self, other: Interval) -> Interval {
        Interval {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// Peak number of simultaneously open intervals (empty intervals ignored).
///
/// The workhorse behind "peak parallel transports", "peak cached fluids"
/// and per-kind parallelism profiles.
pub fn peak_overlap<I: IntoIterator<Item = Interval>>(intervals: I) -> usize {
    let mut events: Vec<(Instant, i64)> = Vec::new();
    for iv in intervals {
        if iv.is_empty() {
            continue;
        }
        events.push((iv.start, 1));
        events.push((iv.end, -1));
    }
    events.sort_by_key(|&(t, d)| (t, d));
    let mut cur = 0i64;
    let mut peak = 0i64;
    for (_, d) in events {
        cur += d;
        peak = peak.max(cur);
    }
    peak as usize
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.1}s, {:.1}s)",
            self.start.as_secs_f64(),
            self.end.as_secs_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_second_roundtrip() {
        assert_eq!(Duration::from_secs(5).as_secs_f64(), 5.0);
        assert_eq!(Duration::from_secs_f64(0.2).as_ticks(), 2);
        assert_eq!(Duration::from_secs_f64(0.25).as_ticks(), 3); // rounds
    }

    #[test]
    fn duration_arithmetic() {
        let a = Duration::from_secs(3);
        let b = Duration::from_secs(2);
        assert_eq!(a + b, Duration::from_secs(5));
        assert_eq!(a - b, Duration::from_secs(1));
        assert_eq!(a * 4, Duration::from_secs(12));
        assert_eq!(a / 2, Duration::from_secs_f64(1.5));
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(b.saturating_sub(a), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn duration_sub_underflow_panics() {
        let _ = Duration::from_secs(1) - Duration::from_secs(2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn duration_from_negative_secs_panics() {
        let _ = Duration::from_secs_f64(-1.0);
    }

    #[test]
    fn duration_sum() {
        let total: Duration = [1u64, 2, 3].iter().map(|&s| Duration::from_secs(s)).sum();
        assert_eq!(total, Duration::from_secs(6));
    }

    #[test]
    fn instant_ordering_and_arithmetic() {
        let t0 = Instant::ZERO;
        let t1 = t0 + Duration::from_secs(4);
        assert!(t1 > t0);
        assert_eq!(t1 - t0, Duration::from_secs(4));
        assert_eq!(t1.saturating_duration_since(t1), Duration::ZERO);
        assert_eq!(t0.saturating_duration_since(t1), Duration::ZERO);
        assert_eq!(t1.max(t0), t1);
        assert_eq!(t1.min(t0), t0);
    }

    #[test]
    #[should_panic(expected = "later")]
    fn instant_duration_since_panics_when_reversed() {
        Instant::ZERO.duration_since(Instant::from_secs(1));
    }

    #[test]
    fn interval_overlap_half_open() {
        let a = Interval::new(Instant::from_secs(0), Instant::from_secs(5));
        let touching = Interval::new(Instant::from_secs(5), Instant::from_secs(7));
        let inside = Interval::new(Instant::from_secs(2), Instant::from_secs(3));
        let straddle = Interval::new(Instant::from_secs(4), Instant::from_secs(6));
        assert!(!a.overlaps(touching));
        assert!(!touching.overlaps(a));
        assert!(a.overlaps(inside));
        assert!(inside.overlaps(a));
        assert!(a.overlaps(straddle));
    }

    #[test]
    fn empty_interval_never_overlaps() {
        let a = Interval::new(Instant::from_secs(0), Instant::from_secs(5));
        let empty = Interval::empty_at(Instant::from_secs(2));
        assert!(empty.is_empty());
        assert!(!a.overlaps(empty));
        assert!(!empty.overlaps(a));
        assert!(!empty.overlaps(empty));
    }

    #[test]
    fn interval_contains_and_hull() {
        let a = Interval::new(Instant::from_secs(1), Instant::from_secs(3));
        assert!(a.contains(Instant::from_secs(1)));
        assert!(a.contains(Instant::from_secs(2)));
        assert!(!a.contains(Instant::from_secs(3)));
        let b = Interval::new(Instant::from_secs(5), Instant::from_secs(6));
        let h = a.hull(b);
        assert_eq!(h.start, Instant::from_secs(1));
        assert_eq!(h.end, Instant::from_secs(6));
    }

    #[test]
    fn peak_overlap_counts_simultaneity() {
        let iv = |a: u64, b: u64| Interval::new(Instant::from_secs(a), Instant::from_secs(b));
        assert_eq!(peak_overlap([]), 0);
        assert_eq!(peak_overlap([iv(0, 5)]), 1);
        assert_eq!(
            peak_overlap([iv(0, 5), iv(5, 9)]),
            1,
            "touching do not overlap"
        );
        assert_eq!(peak_overlap([iv(0, 5), iv(1, 3), iv(2, 4)]), 3);
        assert_eq!(
            peak_overlap([iv(0, 5), Interval::empty_at(Instant::from_secs(2))]),
            1
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Duration::from_secs_f64(1.5).to_string(), "1.5s");
        assert_eq!(Instant::from_secs(2).to_string(), "t=2.0s");
        let iv = Interval::new(Instant::ZERO, Instant::from_secs(1));
        assert_eq!(iv.to_string(), "[0.0s, 1.0s)");
    }
}
