//! Operations: the vertices of a sequencing graph.

use crate::fluid::DiffusionCoefficient;
use crate::ids::OpId;
use crate::time::Duration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a fluidic operation, which determines the kind of component
/// that can execute it.
///
/// The four kinds match the component vector reported in the paper's Table I:
/// `(Mixers, Heaters, Filters, Detectors)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OperationKind {
    /// Merge and blend two input fluids (executed on a rotary mixer).
    Mix,
    /// Heat a fluid to a target temperature (executed on a heater).
    Heat,
    /// Separate components of a fluid (executed on a filter).
    Filter,
    /// Optically analyse a fluid (executed on a detector).
    Detect,
}

impl OperationKind {
    /// All operation kinds, in the paper's `(M, H, F, D)` order.
    pub const ALL: [OperationKind; 4] = [
        OperationKind::Mix,
        OperationKind::Heat,
        OperationKind::Filter,
        OperationKind::Detect,
    ];

    /// Short human-readable name (`"mix"`, `"heat"`, …).
    pub const fn name(self) -> &'static str {
        match self {
            OperationKind::Mix => "mix",
            OperationKind::Heat => "heat",
            OperationKind::Filter => "filter",
            OperationKind::Detect => "detect",
        }
    }
}

impl fmt::Display for OperationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One operation of a bioassay.
///
/// An operation executes for a fixed [`duration`](Operation::duration) on a
/// component of matching [`kind`](Operation::kind) and produces a single
/// output fluid whose contamination behaviour is captured by
/// [`output_diffusion`](Operation::output_diffusion).
///
/// Operations are created through
/// [`SequencingGraphBuilder`](crate::graph::SequencingGraphBuilder), which
/// assigns their [`OpId`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Operation {
    id: OpId,
    kind: OperationKind,
    duration: Duration,
    output_diffusion: DiffusionCoefficient,
    label: String,
}

impl Operation {
    pub(crate) fn new(
        id: OpId,
        kind: OperationKind,
        duration: Duration,
        output_diffusion: DiffusionCoefficient,
        label: String,
    ) -> Self {
        Operation {
            id,
            kind,
            duration,
            output_diffusion,
            label,
        }
    }

    /// The operation's identifier within its graph.
    #[inline]
    pub fn id(&self) -> OpId {
        self.id
    }

    /// What kind of component this operation needs.
    #[inline]
    pub fn kind(&self) -> OperationKind {
        self.kind
    }

    /// Execution time of the operation.
    #[inline]
    pub fn duration(&self) -> Duration {
        self.duration
    }

    /// Diffusion coefficient of the fluid this operation produces; governs
    /// how long residues of that fluid take to wash away.
    #[inline]
    pub fn output_diffusion(&self) -> DiffusionCoefficient {
        self.output_diffusion
    }

    /// Human-readable label (e.g. `"mix sample with reagent"`). May be empty.
    #[inline]
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.label.is_empty() {
            write!(f, "{}[{} {}]", self.id, self.kind, self.duration)
        } else {
            write!(
                f,
                "{}[{} {} \"{}\"]",
                self.id, self.kind, self.duration, self.label
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_and_order() {
        assert_eq!(OperationKind::Mix.to_string(), "mix");
        assert_eq!(OperationKind::ALL.len(), 4);
        assert_eq!(OperationKind::ALL[3], OperationKind::Detect);
    }

    #[test]
    fn operation_accessors() {
        let op = Operation::new(
            OpId::new(2),
            OperationKind::Heat,
            Duration::from_secs(3),
            DiffusionCoefficient::PROTEIN,
            "denature".to_owned(),
        );
        assert_eq!(op.id(), OpId::new(2));
        assert_eq!(op.kind(), OperationKind::Heat);
        assert_eq!(op.duration(), Duration::from_secs(3));
        assert_eq!(op.output_diffusion(), DiffusionCoefficient::PROTEIN);
        assert_eq!(op.label(), "denature");
        assert!(op.to_string().contains("heat"));
        assert!(op.to_string().contains("denature"));
    }
}
