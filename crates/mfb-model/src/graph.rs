//! Sequencing graphs: the DAG model of a bioassay.
//!
//! A bioassay is modelled as a directed acyclic *sequencing graph*
//! `G(O, E)` (paper §II-C): vertices are fluidic [`Operation`]s, and an edge
//! `(o_j, o_i)` states that the output fluid of `o_j` is an input of `o_i`.
//! The graph is the sole workload input of the whole synthesis flow.
//!
//! Construction goes through [`SequencingGraphBuilder`], and
//! [`SequencingGraphBuilder::build`] validates acyclicity, so every
//! [`SequencingGraph`] in existence is a well-formed DAG — downstream code
//! (schedulers, routers, the simulator) can rely on that unconditionally.

use crate::fluid::DiffusionCoefficient;
use crate::ids::OpId;
use crate::operation::{Operation, OperationKind};
use crate::time::Duration;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// A validated directed acyclic sequencing graph.
///
/// # Examples
///
/// Build the three-operation chain `o0 → o1 → o2`:
///
/// ```
/// use mfb_model::prelude::*;
///
/// let mut b = SequencingGraph::builder();
/// let d = DiffusionCoefficient::SMALL_MOLECULE;
/// let o0 = b.operation(OperationKind::Mix, Duration::from_secs(5), d);
/// let o1 = b.operation(OperationKind::Heat, Duration::from_secs(3), d);
/// let o2 = b.operation(OperationKind::Detect, Duration::from_secs(4), d);
/// b.edge(o0, o1).unwrap();
/// b.edge(o1, o2).unwrap();
/// let g = b.build().unwrap();
///
/// assert_eq!(g.len(), 3);
/// assert_eq!(g.sources().collect::<Vec<_>>(), vec![o0]);
/// assert_eq!(g.sinks().collect::<Vec<_>>(), vec![o2]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequencingGraph {
    name: String,
    ops: Vec<Operation>,
    /// Edges as (parent, child) pairs, deduplicated, in insertion order.
    edges: Vec<(OpId, OpId)>,
    /// Adjacency: children of each op.
    children: Vec<Vec<OpId>>,
    /// Adjacency: parents of each op.
    parents: Vec<Vec<OpId>>,
    /// A topological order of all operations.
    topo: Vec<OpId>,
}

impl SequencingGraph {
    /// Starts building a new sequencing graph.
    pub fn builder() -> SequencingGraphBuilder {
        SequencingGraphBuilder::new()
    }

    /// The assay's name (may be empty).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of operations.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the graph has no operations. Never true for graphs built
    /// through the builder, which rejects empty graphs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of fluidic dependencies (edges).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The operation with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[inline]
    pub fn op(&self, id: OpId) -> &Operation {
        &self.ops[id.index()]
    }

    /// All operations, in id order.
    #[inline]
    pub fn ops(&self) -> impl ExactSizeIterator<Item = &Operation> {
        self.ops.iter()
    }

    /// All operation ids, in id order.
    pub fn op_ids(&self) -> impl ExactSizeIterator<Item = OpId> + '_ {
        (0..self.ops.len() as u32).map(OpId::new)
    }

    /// All edges as `(parent, child)` pairs, in insertion order.
    #[inline]
    pub fn edges(&self) -> impl ExactSizeIterator<Item = (OpId, OpId)> + '_ {
        self.edges.iter().copied()
    }

    /// Parents (father operations) of `id`: operations whose output fluid
    /// feeds `id`.
    #[inline]
    pub fn parents(&self, id: OpId) -> &[OpId] {
        &self.parents[id.index()]
    }

    /// Children of `id`: operations consuming the output fluid of `id`.
    #[inline]
    pub fn children(&self, id: OpId) -> &[OpId] {
        &self.children[id.index()]
    }

    /// Operations without parents (assay entry points).
    pub fn sources(&self) -> impl Iterator<Item = OpId> + '_ {
        self.op_ids().filter(|&o| self.parents(o).is_empty())
    }

    /// Operations without children (assay results).
    pub fn sinks(&self) -> impl Iterator<Item = OpId> + '_ {
        self.op_ids().filter(|&o| self.children(o).is_empty())
    }

    /// A topological order of all operations (parents before children).
    #[inline]
    pub fn topological_order(&self) -> &[OpId] {
        &self.topo
    }

    /// Number of operations of each kind, in `(Mix, Heat, Filter, Detect)`
    /// order.
    pub fn kind_histogram(&self) -> [usize; 4] {
        let mut h = [0usize; 4];
        for op in &self.ops {
            h[op.kind() as usize] += 1;
        }
        h
    }

    /// Per-operation *priority values* as defined by the paper's Algorithm 1:
    /// the length of the longest path from the operation to the sink, where
    /// each vertex contributes its execution time and each traversed edge
    /// contributes the constant transport time `t_c`.
    ///
    /// Indexed by `OpId::index()`. Operations with larger priority dominate
    /// the assay completion time and are scheduled first.
    ///
    /// # Examples
    ///
    /// For the paper's Fig. 2(a) running example, the priority of `o1` with
    /// `t_c = 2 s` is 21 s (path `o1 → o5 → o7 → o10 → sink`); this is
    /// checked by an integration test against the reconstructed benchmark.
    pub fn priority_values(&self, t_c: Duration) -> Vec<Duration> {
        let mut prio = vec![Duration::ZERO; self.ops.len()];
        // Reverse topological order: children before parents.
        for &id in self.topo.iter().rev() {
            let own = self.op(id).duration();
            let best_child = self
                .children(id)
                .iter()
                .map(|&ch| prio[ch.index()] + t_c)
                .max()
                .unwrap_or(Duration::ZERO);
            prio[id.index()] = own + best_child;
        }
        prio
    }

    /// Length of the critical (longest) path through the assay with transport
    /// cost `t_c` per edge — an absolute lower bound on assay completion time
    /// on any number of components.
    pub fn critical_path(&self, t_c: Duration) -> Duration {
        self.priority_values(t_c)
            .into_iter()
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Depth of the graph: number of operations on the longest vertex path.
    pub fn depth(&self) -> usize {
        let mut depth = vec![1usize; self.ops.len()];
        for &id in &self.topo {
            for &ch in self.children(id) {
                depth[ch.index()] = depth[ch.index()].max(depth[id.index()] + 1);
            }
        }
        depth.into_iter().max().unwrap_or(0)
    }

    /// Total execution time of all operations (the serial lower bound on a
    /// single component of each kind, ignoring transport and wash).
    pub fn total_work(&self) -> Duration {
        self.ops.iter().map(|o| o.duration()).sum()
    }
}

impl fmt::Display for SequencingGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({} ops, {} edges)",
            if self.name.is_empty() {
                "assay"
            } else {
                &self.name
            },
            self.len(),
            self.edge_count()
        )
    }
}

/// Incremental builder for [`SequencingGraph`].
///
/// Obtain one via [`SequencingGraph::builder`]. Operations are registered
/// with [`operation`](Self::operation) (which assigns ids densely in call
/// order) and dependencies with [`edge`](Self::edge);
/// [`build`](Self::build) performs whole-graph validation.
#[derive(Debug, Default, Clone)]
pub struct SequencingGraphBuilder {
    name: String,
    ops: Vec<Operation>,
    edges: Vec<(OpId, OpId)>,
}

impl SequencingGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the assay name.
    pub fn name(&mut self, name: impl Into<String>) -> &mut Self {
        self.name = name.into();
        self
    }

    /// Adds an operation and returns its id.
    pub fn operation(
        &mut self,
        kind: OperationKind,
        duration: Duration,
        output_diffusion: DiffusionCoefficient,
    ) -> OpId {
        self.labelled_operation(kind, duration, output_diffusion, String::new())
    }

    /// Adds an operation with a human-readable label and returns its id.
    pub fn labelled_operation(
        &mut self,
        kind: OperationKind,
        duration: Duration,
        output_diffusion: DiffusionCoefficient,
        label: impl Into<String>,
    ) -> OpId {
        let id = OpId::new(self.ops.len() as u32);
        self.ops.push(Operation::new(
            id,
            kind,
            duration,
            output_diffusion,
            label.into(),
        ));
        id
    }

    /// Declares that the output fluid of `parent` is an input of `child`.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ids, self-loops, or duplicate edges.
    /// Cycles are detected later, in [`build`](Self::build).
    pub fn edge(&mut self, parent: OpId, child: OpId) -> Result<&mut Self, GraphError> {
        let n = self.ops.len();
        if parent.index() >= n {
            return Err(GraphError::UnknownOperation(parent));
        }
        if child.index() >= n {
            return Err(GraphError::UnknownOperation(child));
        }
        if parent == child {
            return Err(GraphError::SelfLoop(parent));
        }
        if self.edges.contains(&(parent, child)) {
            return Err(GraphError::DuplicateEdge(parent, child));
        }
        self.edges.push((parent, child));
        Ok(self)
    }

    /// Convenience: adds a chain of edges `ops[0] → ops[1] → …`.
    pub fn chain(&mut self, ops: &[OpId]) -> Result<&mut Self, GraphError> {
        for w in ops.windows(2) {
            self.edge(w[0], w[1])?;
        }
        Ok(self)
    }

    /// Appends a whole existing graph as an independent sub-assay (the
    /// disjoint union). Returns the new ids of `other`'s operations, indexed
    /// by their old `OpId::index()` — the building block for running several
    /// bioassays concurrently on one chip, the headline use case of
    /// DCSA-based platforms.
    ///
    /// # Examples
    ///
    /// ```
    /// use mfb_model::prelude::*;
    ///
    /// let mut b = SequencingGraph::builder();
    /// let d = DiffusionCoefficient::PROTEIN;
    /// let solo = {
    ///     let mut sb = SequencingGraph::builder();
    ///     let a = sb.operation(OperationKind::Mix, Duration::from_secs(5), d);
    ///     let z = sb.operation(OperationKind::Detect, Duration::from_secs(3), d);
    ///     sb.edge(a, z).unwrap();
    ///     sb.build().unwrap()
    /// };
    /// b.append_graph(&solo);
    /// b.append_graph(&solo);
    /// let combined = b.build().unwrap();
    /// assert_eq!(combined.len(), 4);
    /// assert_eq!(combined.edge_count(), 2);
    /// ```
    pub fn append_graph(&mut self, other: &SequencingGraph) -> Vec<OpId> {
        let mapping: Vec<OpId> = other
            .ops()
            .map(|op| {
                self.labelled_operation(
                    op.kind(),
                    op.duration(),
                    op.output_diffusion(),
                    op.label().to_owned(),
                )
            })
            .collect();
        for (p, c) in other.edges() {
            self.edge(mapping[p.index()], mapping[c.index()])
                .expect("fresh ids cannot collide");
        }
        mapping
    }

    /// Validates and freezes the graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Empty`] for a graph without operations and
    /// [`GraphError::Cycle`] when the edges contain a directed cycle.
    pub fn build(self) -> Result<SequencingGraph, GraphError> {
        if self.ops.is_empty() {
            return Err(GraphError::Empty);
        }
        let n = self.ops.len();
        let mut children: Vec<Vec<OpId>> = vec![Vec::new(); n];
        let mut parents: Vec<Vec<OpId>> = vec![Vec::new(); n];
        for &(p, c) in &self.edges {
            children[p.index()].push(c);
            parents[c.index()].push(p);
        }

        // Kahn's algorithm for topological order and cycle detection.
        let mut indeg: Vec<usize> = parents.iter().map(Vec::len).collect();
        let mut queue: VecDeque<OpId> = (0..n as u32)
            .map(OpId::new)
            .filter(|o| indeg[o.index()] == 0)
            .collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(o) = queue.pop_front() {
            topo.push(o);
            for &ch in &children[o.index()] {
                indeg[ch.index()] -= 1;
                if indeg[ch.index()] == 0 {
                    queue.push_back(ch);
                }
            }
        }
        if topo.len() != n {
            let on_cycle = (0..n as u32)
                .map(OpId::new)
                .filter(|o| indeg[o.index()] > 0)
                .collect();
            return Err(GraphError::Cycle(on_cycle));
        }

        Ok(SequencingGraph {
            name: self.name,
            ops: self.ops,
            edges: self.edges,
            children,
            parents,
            topo,
        })
    }
}

/// Errors produced while building a [`SequencingGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// The graph contains no operations.
    Empty,
    /// An edge referenced an operation id that was never registered.
    UnknownOperation(OpId),
    /// An edge from an operation to itself.
    SelfLoop(OpId),
    /// The same dependency was declared twice.
    DuplicateEdge(OpId, OpId),
    /// The dependencies contain a directed cycle; the payload lists
    /// operations that remained on cycles.
    Cycle(Vec<OpId>),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "sequencing graph has no operations"),
            GraphError::UnknownOperation(o) => write!(f, "unknown operation {o}"),
            GraphError::SelfLoop(o) => write!(f, "self-loop on operation {o}"),
            GraphError::DuplicateEdge(p, c) => write!(f, "duplicate edge {p} -> {c}"),
            GraphError::Cycle(ops) => {
                write!(f, "sequencing graph contains a cycle through ")?;
                for (i, o) in ops.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{o}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn d() -> DiffusionCoefficient {
        DiffusionCoefficient::SMALL_MOLECULE
    }

    fn chain3() -> SequencingGraph {
        let mut b = SequencingGraph::builder();
        let o0 = b.operation(OperationKind::Mix, Duration::from_secs(5), d());
        let o1 = b.operation(OperationKind::Heat, Duration::from_secs(3), d());
        let o2 = b.operation(OperationKind::Detect, Duration::from_secs(4), d());
        b.chain(&[o0, o1, o2]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_chain() {
        let g = chain3();
        assert_eq!(g.len(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.parents(OpId::new(1)), &[OpId::new(0)]);
        assert_eq!(g.children(OpId::new(1)), &[OpId::new(2)]);
        assert_eq!(
            g.topological_order(),
            &[OpId::new(0), OpId::new(1), OpId::new(2)]
        );
        assert_eq!(g.depth(), 3);
        assert_eq!(g.total_work(), Duration::from_secs(12));
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            SequencingGraph::builder().build().unwrap_err(),
            GraphError::Empty
        );
    }

    #[test]
    fn rejects_self_loop_and_duplicates() {
        let mut b = SequencingGraph::builder();
        let o0 = b.operation(OperationKind::Mix, Duration::from_secs(1), d());
        let o1 = b.operation(OperationKind::Mix, Duration::from_secs(1), d());
        assert_eq!(b.edge(o0, o0).unwrap_err(), GraphError::SelfLoop(o0));
        b.edge(o0, o1).unwrap();
        assert_eq!(
            b.edge(o0, o1).unwrap_err(),
            GraphError::DuplicateEdge(o0, o1)
        );
    }

    #[test]
    fn rejects_unknown_ids() {
        let mut b = SequencingGraph::builder();
        let o0 = b.operation(OperationKind::Mix, Duration::from_secs(1), d());
        let bogus = OpId::new(7);
        assert_eq!(
            b.edge(o0, bogus).unwrap_err(),
            GraphError::UnknownOperation(bogus)
        );
        assert_eq!(
            b.edge(bogus, o0).unwrap_err(),
            GraphError::UnknownOperation(bogus)
        );
    }

    #[test]
    fn detects_cycle() {
        let mut b = SequencingGraph::builder();
        let o0 = b.operation(OperationKind::Mix, Duration::from_secs(1), d());
        let o1 = b.operation(OperationKind::Mix, Duration::from_secs(1), d());
        let o2 = b.operation(OperationKind::Mix, Duration::from_secs(1), d());
        b.edge(o0, o1).unwrap();
        b.edge(o1, o2).unwrap();
        b.edge(o2, o0).unwrap();
        match b.build().unwrap_err() {
            GraphError::Cycle(ops) => assert_eq!(ops.len(), 3),
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn priority_values_on_chain() {
        let g = chain3();
        let t_c = Duration::from_secs(2);
        let prio = g.priority_values(t_c);
        // o2: 4; o1: 3 + 2 + 4 = 9; o0: 5 + 2 + 9 = 16.
        assert_eq!(prio[2], Duration::from_secs(4));
        assert_eq!(prio[1], Duration::from_secs(9));
        assert_eq!(prio[0], Duration::from_secs(16));
        assert_eq!(g.critical_path(t_c), Duration::from_secs(16));
    }

    #[test]
    fn priority_values_take_longest_branch() {
        let mut b = SequencingGraph::builder();
        let top = b.operation(OperationKind::Mix, Duration::from_secs(1), d());
        let slow = b.operation(OperationKind::Mix, Duration::from_secs(10), d());
        let fast = b.operation(OperationKind::Mix, Duration::from_secs(1), d());
        b.edge(top, slow).unwrap();
        b.edge(top, fast).unwrap();
        let g = b.build().unwrap();
        let prio = g.priority_values(Duration::from_secs(2));
        assert_eq!(prio[top.index()], Duration::from_secs(13)); // 1 + 2 + 10
    }

    #[test]
    fn sources_and_sinks_on_diamond() {
        let mut b = SequencingGraph::builder();
        let a = b.operation(OperationKind::Mix, Duration::from_secs(1), d());
        let l = b.operation(OperationKind::Heat, Duration::from_secs(1), d());
        let r = b.operation(OperationKind::Filter, Duration::from_secs(1), d());
        let z = b.operation(OperationKind::Detect, Duration::from_secs(1), d());
        b.edge(a, l).unwrap();
        b.edge(a, r).unwrap();
        b.edge(l, z).unwrap();
        b.edge(r, z).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.sources().collect::<Vec<_>>(), vec![a]);
        assert_eq!(g.sinks().collect::<Vec<_>>(), vec![z]);
        assert_eq!(g.depth(), 3);
        assert_eq!(g.kind_histogram(), [1, 1, 1, 1]);
    }

    #[test]
    fn topo_order_respects_all_edges() {
        let g = chain3();
        let pos: Vec<usize> = {
            let mut pos = vec![0; g.len()];
            for (i, &o) in g.topological_order().iter().enumerate() {
                pos[o.index()] = i;
            }
            pos
        };
        for (p, c) in g.edges() {
            assert!(pos[p.index()] < pos[c.index()]);
        }
    }

    #[test]
    fn display_includes_counts() {
        let g = chain3();
        assert_eq!(g.to_string(), "assay(3 ops, 2 edges)");
    }
}
