//! Deterministic thread fan-out for embarrassingly parallel sweeps.
//!
//! The synthesis pipeline contains several loops whose iterations are pure
//! functions of their index — multi-seed SA restarts, recovery-ladder reseed
//! attempts, Table-I comparison runs, and `mfb faults --sweep` Monte-Carlo
//! trials. [`par_map_ordered`] runs such a loop on a scoped thread pool
//! (std only, no extra dependencies) and hands the results back **in input
//! order**, so a caller that folds them sequentially produces byte-identical
//! output regardless of how many worker threads ran.
//!
//! Worker count comes from [`thread_limit`] — the `MFB_THREADS` environment
//! variable when set (clamped to ≥ 1), otherwise
//! [`std::thread::available_parallelism`] — further capped at the machine's
//! core count: oversubscribing CPU-bound workers only costs wall time, and
//! the ordered reassembly makes worker count invisible in the output.
//! `MFB_THREADS=1` short-circuits to a plain serial loop — exactly the
//! pre-parallelism code path.
//!
//! Panic semantics mirror the serial loop: if an item's closure panics, the
//! payload of the **lowest-index** panicking item is resumed on the caller's
//! thread after all workers join (a serial loop would have panicked at that
//! same item; later items would simply never have run, and their results are
//! discarded here too).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Maximum number of worker threads a deterministic sweep may use.
///
/// Resolution order: `MFB_THREADS` (parsed as `usize`, values `< 1` clamp to
/// `1`), else [`std::thread::available_parallelism`], else `1`.
#[must_use]
pub fn thread_limit() -> usize {
    match std::env::var("MFB_THREADS") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    }
}

/// Maps `f` over `0..len` on up to [`thread_limit`] scoped threads and
/// returns the results in index order.
///
/// `f` must be a pure function of its index (it may read shared state
/// through the closure, but iteration `i`'s result must not depend on
/// whether iteration `j` ran). With `MFB_THREADS=1`, or when `len < 2`,
/// this degenerates to the plain serial `for` loop it replaces.
pub fn par_map_ordered<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    // `MFB_THREADS` is a cap, not a demand: spawning more CPU-bound workers
    // than the machine has cores only adds oversubscription overhead (the
    // super-round-per-call users of this function pay it per call), and the
    // ordered reassembly below makes the worker count invisible in the
    // output anyway.
    let cores = thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let workers = thread_limit().min(cores).min(len);
    if workers <= 1 {
        return (0..len).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    // Workers inherit the spawning thread's trace subscriber so a single
    // trace covers the whole parallel region.
    let obs = mfb_obs::current();
    let mut gathered: Vec<Vec<(usize, thread::Result<R>)>> = thread::scope(|scope| {
        let next = &next;
        let f = &f;
        // Spawn every worker before joining any (a lazy iterator here
        // would serialize the pool).
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let obs = obs.clone();
            handles.push(scope.spawn(move || {
                let _obs_guard = obs.as_ref().map(mfb_obs::install);
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    local.push((i, catch_unwind(AssertUnwindSafe(|| f(i)))));
                }
                local
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("mfb worker thread must not die outside f"))
            .collect()
    });

    let mut slots: Vec<Option<thread::Result<R>>> = (0..len).map(|_| None).collect();
    for (i, r) in gathered.drain(..).flatten() {
        slots[i] = Some(r);
    }
    let mut out = Vec::with_capacity(len);
    for slot in slots {
        match slot.expect("every index claimed exactly once") {
            Ok(r) => out.push(r),
            // Re-raise the first (lowest-index) panic, as the serial loop
            // would have.
            Err(payload) => resume_unwind(payload),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let out = par_map_ordered(64, |i| i * i);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_and_one_item_work() {
        assert_eq!(par_map_ordered(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_ordered(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn lowest_index_panic_wins() {
        let caught = catch_unwind(|| {
            par_map_ordered(16, |i| {
                if i % 5 == 2 {
                    panic!("boom {i}");
                }
                i
            })
        });
        let payload = caught.expect_err("must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(msg, "boom 2");
    }
}
