//! Transport-time models: how long a fluid plug takes to traverse a
//! channel.
//!
//! The paper (following Liu et al., DAC'17) assumes a **constant**
//! transport time `t_c` between any two components, because channel lengths
//! are unknown at scheduling time. That assumption deserves checking once
//! routing *has* determined the lengths: this module provides the constant
//! model plus a physical pressure-driven model, so a synthesized chip can
//! be audited for transports whose real travel time would exceed the `t_c`
//! the schedule was built with (see `mfb-core`'s transport-slack analysis).
//!
//! The physical model is plane-Poiseuille flow in a rectangular PDMS
//! channel: mean velocity `v = Δp·h² / (12·μ·L)` for a channel of height
//! `h`, length `L`, driven by pressure `Δp`, with fluid viscosity `μ`
//! (the aspect-ratio correction factor is absorbed into an effective
//! height). Typical FBMB numbers — `Δp ≈ 20 kPa`, `h ≈ 100 µm`,
//! `μ ≈ 1 mPa·s` — give plug velocities of a few tens of mm/s, so a
//! 100 mm channel is traversed in well under the paper's 2 s.

use crate::time::Duration;
use std::fmt::Debug;

/// Computes the travel time of a fluid plug over a channel of the given
/// physical length.
pub trait TransportModel: Debug + Send + Sync {
    /// Travel time over `length_mm` millimetres of channel.
    fn transport_time(&self, length_mm: f64) -> Duration;
}

/// The paper's model: every transport takes the same constant `t_c`,
/// regardless of distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstantTc {
    /// The constant transport time.
    pub t_c: Duration,
}

impl ConstantTc {
    /// The paper's default, `t_c = 2 s`.
    pub fn paper() -> Self {
        ConstantTc {
            t_c: Duration::from_secs(2),
        }
    }
}

impl TransportModel for ConstantTc {
    fn transport_time(&self, _length_mm: f64) -> Duration {
        self.t_c
    }
}

/// Pressure-driven laminar flow in a rectangular channel (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PressureDriven {
    /// Driving pressure, kPa.
    pub pressure_kpa: f64,
    /// Effective channel height, µm.
    pub channel_height_um: f64,
    /// Dynamic viscosity, mPa·s (water ≈ 1).
    pub viscosity_mpa_s: f64,
    /// Characteristic driven length, mm: the channel segment over which the
    /// pressure drop acts (typically the routed path length itself; using a
    /// fixed reference keeps velocity constant per chip).
    pub reference_length_mm: f64,
}

impl PressureDriven {
    /// Typical PDMS biochip operating point: 20 kPa, 100 µm channels,
    /// aqueous samples, 100 mm reference length.
    pub fn typical_pdms() -> Self {
        PressureDriven {
            pressure_kpa: 20.0,
            channel_height_um: 100.0,
            viscosity_mpa_s: 1.0,
            reference_length_mm: 100.0,
        }
    }

    /// Mean plug velocity, mm/s.
    pub fn velocity_mm_per_s(&self) -> f64 {
        // v = Δp h² / (12 μ L), SI then converted to mm/s.
        let dp = self.pressure_kpa * 1e3; // Pa
        let h = self.channel_height_um * 1e-6; // m
        let mu = self.viscosity_mpa_s * 1e-3; // Pa·s
        let l = self.reference_length_mm * 1e-3; // m
        let v = dp * h * h / (12.0 * mu * l); // m/s
        v * 1e3
    }
}

impl TransportModel for PressureDriven {
    fn transport_time(&self, length_mm: f64) -> Duration {
        assert!(
            length_mm.is_finite() && length_mm >= 0.0,
            "channel length must be non-negative, got {length_mm}"
        );
        let v = self.velocity_mm_per_s();
        Duration::from_secs_f64(length_mm / v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_model_ignores_length() {
        let m = ConstantTc::paper();
        assert_eq!(m.transport_time(1.0), Duration::from_secs(2));
        assert_eq!(m.transport_time(5000.0), Duration::from_secs(2));
    }

    #[test]
    fn typical_pdms_velocity_is_tens_of_mm_per_s() {
        let m = PressureDriven::typical_pdms();
        let v = m.velocity_mm_per_s();
        // Δp h²/(12 μ L) = 20e3 * (1e-4)² / (12 * 1e-3 * 0.1) ≈ 0.167 m/s.
        assert!((100.0..300.0).contains(&v), "v = {v} mm/s");
    }

    #[test]
    fn pressure_model_is_linear_in_length() {
        let m = PressureDriven::typical_pdms();
        let t100 = m.transport_time(100.0).as_secs_f64();
        let t200 = m.transport_time(200.0).as_secs_f64();
        assert!((t200 - 2.0 * t100).abs() < 0.11, "{t100} vs {t200}");
    }

    #[test]
    fn paper_tc_covers_typical_chip_distances() {
        // A 2 s t_c is conservative for chip-scale distances under typical
        // operating pressure — the paper's assumption is physically sound.
        let m = PressureDriven::typical_pdms();
        let crossing = m.transport_time(300.0); // a full 30-cell diagonal
        assert!(
            crossing <= Duration::from_secs(2),
            "300 mm takes {crossing}"
        );
    }

    #[test]
    fn higher_pressure_is_faster() {
        let slow = PressureDriven {
            pressure_kpa: 5.0,
            ..PressureDriven::typical_pdms()
        };
        let fast = PressureDriven {
            pressure_kpa: 50.0,
            ..PressureDriven::typical_pdms()
        };
        assert!(fast.transport_time(100.0) < slow.transport_time(100.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_length() {
        PressureDriven::typical_pdms().transport_time(-1.0);
    }
}
