//! The `.assay` DSL (version 1): a human-writable, diff-friendly language
//! for bioassays, with a real parser, a canonical pretty-printer, and a
//! normalizing lowering into the synthesis vocabulary.
//!
//! ```text
//! assay-dsl 1                      # optional version pragma (default: 1)
//! assay "my panel"                 # optional display name
//!
//! # op <name> <kind> <duration>s (wash=<secs>s | d=<cm^2/s>)
//! op prepA mix    5s wash=4s
//! op prepB mix    5s wash=2s
//! op merge mix    4s d=5e-8
//! op read  detect 3s wash=0.2s
//!
//! # edge <parent> -> <child> [-> <grandchild> ...]
//! edge prepA -> merge -> read
//! edge prepB -> merge
//!
//! # optional flow constraints: base flow, transport constant, SA seed
//! flow dcsa t_c=2s seed=7
//!
//! # optional chip defects (cells blocked, components dead, cells slowed)
//! defect block 3 4
//! defect dead 1
//! defect slow 5 6 2
//!
//! # optional: alloc <mixers> <heaters> <filters> <detectors>
//! alloc 2 0 0 1
//! ```
//!
//! Parsing happens in two stages. [`parse_assay_ast`] is a recursive-descent
//! parser producing an [`AssayAst`] — the statements exactly as written,
//! each carrying its source [`Span`] — and every error it (or the later
//! lowering) reports is a [`ParseError`] with a 1-based line *and* column.
//! [`AssayAst::lower`] then normalizes the AST into an [`AssayFile`]: a
//! validated [`SequencingGraph`], the optional [`Allocation`], the flow
//! constraints, and a [`DefectMap`]. [`parse_assay`] runs both stages.
//!
//! [`write_assay_ast`] is the canonical pretty-printer: its output is stable
//! under `parse → print → parse` (the AST round-trips exactly, spans aside)
//! and printing is idempotent, which is what `mfb fmt --check` relies on.
//!
//! `wash=` values are converted into diffusion coefficients through the
//! paper-calibrated log-linear wash model during lowering; `d=` gives the
//! coefficient directly. The authored form is preserved in the AST, so the
//! formatter never rewrites one into the other.

use crate::component::Allocation;
use crate::defect::DefectMap;
use crate::fluid::DiffusionCoefficient;
use crate::geom::CellPos;
use crate::graph::{GraphError, SequencingGraph};
use crate::ids::{ComponentId, OpId};
use crate::operation::OperationKind;
use crate::time::Duration;
use crate::wash::LogLinearWash;
use std::collections::HashMap;
use std::fmt;

/// The newest grammar version this parser understands.
pub const DSL_VERSION: u32 = 1;

/// Durations (op execution times, `t_c`) accepted by the grammar, in
/// seconds. The bound keeps every downstream tick computation far away
/// from `u64` overflow while allowing any physically meaningful assay.
pub const MAX_DURATION_SECS: f64 = 1_000_000.0;

/// A 1-based source position (line, column) inside an `.assay` document.
/// Columns count characters, the way editors do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// 1-based line number.
    pub line: usize,
    /// 1-based character column.
    pub column: usize,
}

impl Span {
    /// A span at `(line, column)`.
    pub const fn new(line: usize, column: usize) -> Self {
        Span { line, column }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.column)
    }
}

/// How an `op` statement specified its residue: an explicit diffusion
/// coefficient, or a wash time to invert through the calibrated model.
/// The distinction is preserved so the pretty-printer can echo the
/// authored form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FluidSpec {
    /// `wash=<secs>s`: the residue washes out in this long.
    Wash(Duration),
    /// `d=<cm^2/s>`: the diffusion coefficient itself.
    Diffusion(DiffusionCoefficient),
}

impl FluidSpec {
    /// The diffusion coefficient this spec denotes under `model`.
    pub fn coefficient(&self, model: &LogLinearWash) -> DiffusionCoefficient {
        match *self {
            FluidSpec::Wash(t) => model.coefficient_for(t),
            FluidSpec::Diffusion(d) => d,
        }
    }
}

/// One `op` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct OpDecl {
    /// The operation's name (unique within the file).
    pub name: String,
    /// What the operation does.
    pub kind: OperationKind,
    /// Execution time.
    pub duration: Duration,
    /// The output residue, as authored.
    pub fluid: FluidSpec,
    /// Where the operation's name appears.
    pub span: Span,
}

/// One `edge` statement: a dependency chain of two or more op names.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeDecl {
    /// The chained names, in order (`a -> b -> c` is `["a","b","c"]`).
    pub chain: Vec<String>,
    /// Where the statement starts.
    pub span: Span,
}

/// Which synthesis flow a `flow` statement selects as its base.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    /// The paper's distributed-channel-storage flow.
    Dcsa,
    /// The paper's baseline (BA) flow.
    Baseline,
}

impl FlowKind {
    /// The canonical keyword.
    pub fn name(self) -> &'static str {
        match self {
            FlowKind::Dcsa => "dcsa",
            FlowKind::Baseline => "baseline",
        }
    }
}

/// The merged flow constraints of every `flow` statement in the file.
/// All fields are optional; consumers overlay them onto their own base
/// configuration (file-level settings lose to explicit CLI/manifest
/// overrides).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FlowDecl {
    /// Base flow selection.
    pub kind: Option<FlowKind>,
    /// Transport-time constant override.
    pub t_c: Option<Duration>,
    /// Annealing seed override.
    pub seed: Option<u64>,
}

impl FlowDecl {
    /// True when no `flow` statement set anything.
    pub fn is_empty(&self) -> bool {
        self.kind.is_none() && self.t_c.is_none() && self.seed.is_none()
    }
}

/// One `defect` statement.
#[derive(Debug, Clone, PartialEq)]
pub enum DefectDecl {
    /// `defect block <x> <y>`: the cell is unusable.
    Block {
        /// Cell x.
        x: u32,
        /// Cell y.
        y: u32,
        /// Where the statement starts.
        span: Span,
    },
    /// `defect dead <component-index>`: the component cannot be bound.
    Dead {
        /// Index into the instantiated component set.
        component: u32,
        /// Where the statement starts.
        span: Span,
    },
    /// `defect slow <x> <y> <extra-weight>`: the cell pays extra wash
    /// weight in the router's cost function.
    Slow {
        /// Cell x.
        x: u32,
        /// Cell y.
        y: u32,
        /// Additional Eq. (5) weight (must be at least 1).
        extra_weight: u32,
        /// Where the statement starts.
        span: Span,
    },
}

impl DefectDecl {
    /// Where the statement starts.
    pub fn span(&self) -> Span {
        match *self {
            DefectDecl::Block { span, .. }
            | DefectDecl::Dead { span, .. }
            | DefectDecl::Slow { span, .. } => span,
        }
    }
}

/// A parsed `.assay` document, statement for statement. Produced by
/// [`parse_assay_ast`]; normalized into an [`AssayFile`] by
/// [`AssayAst::lower`]; printed canonically by [`write_assay_ast`].
#[derive(Debug, Clone, PartialEq)]
pub struct AssayAst {
    /// Grammar version (from the `assay-dsl` pragma; defaults to 1).
    pub version: u32,
    /// Display name (empty when the file has no `assay` header).
    pub name: String,
    /// `op` statements, in document order.
    pub ops: Vec<OpDecl>,
    /// `edge` statements, in document order.
    pub edges: Vec<EdgeDecl>,
    /// Merged `flow` constraints.
    pub flow: FlowDecl,
    /// `defect` statements, in document order.
    pub defects: Vec<DefectDecl>,
    /// The `alloc` line, if present.
    pub allocation: Option<Allocation>,
}

/// A parsed and lowered `.assay` file: the normalized form every consumer
/// (CLI, batch manifests, the serve daemon) works with.
#[derive(Debug, Clone, PartialEq)]
pub struct AssayFile {
    /// The bioassay.
    pub graph: SequencingGraph,
    /// The component allocation, if the file declared one.
    pub allocation: Option<Allocation>,
    /// Grammar version the file was written in.
    pub version: u32,
    /// Flow constraints from the file's `flow` statements.
    pub flow: FlowDecl,
    /// Chip defects from the file's `defect` statements.
    pub defects: DefectMap,
}

/// Errors produced while parsing or lowering an `.assay` document. Every
/// variant carries a 1-based line and column.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseError {
    /// A statement could not be understood.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// 1-based character column.
        column: usize,
        /// What went wrong.
        message: String,
    },
    /// An edge referenced an undefined operation name.
    UnknownOp {
        /// 1-based line number.
        line: usize,
        /// 1-based character column.
        column: usize,
        /// The missing name.
        name: String,
    },
    /// The same operation name was defined twice.
    DuplicateOp {
        /// 1-based line number of the re-definition.
        line: usize,
        /// 1-based character column of the re-defined name.
        column: usize,
        /// The re-defined name.
        name: String,
        /// Line of the first definition.
        first_line: usize,
    },
    /// The `assay-dsl` pragma names a version this parser does not read.
    UnsupportedVersion {
        /// 1-based line number.
        line: usize,
        /// 1-based character column.
        column: usize,
        /// The requested version.
        version: u64,
    },
    /// The resulting graph is invalid (cycle, empty).
    Graph {
        /// 1-based line number of the implicated statement.
        line: usize,
        /// 1-based character column.
        column: usize,
        /// The underlying graph error.
        source: GraphError,
    },
}

impl ParseError {
    /// The 1-based line the error points at.
    pub fn line(&self) -> usize {
        match *self {
            ParseError::Syntax { line, .. }
            | ParseError::UnknownOp { line, .. }
            | ParseError::DuplicateOp { line, .. }
            | ParseError::UnsupportedVersion { line, .. }
            | ParseError::Graph { line, .. } => line,
        }
    }

    /// The 1-based character column the error points at.
    pub fn column(&self) -> usize {
        match *self {
            ParseError::Syntax { column, .. }
            | ParseError::UnknownOp { column, .. }
            | ParseError::DuplicateOp { column, .. }
            | ParseError::UnsupportedVersion { column, .. }
            | ParseError::Graph { column, .. } => column,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let at = Span::new(self.line(), self.column());
        match self {
            ParseError::Syntax { message, .. } => write!(f, "{at}: {message}"),
            ParseError::UnknownOp { name, .. } => {
                write!(f, "{at}: unknown operation `{name}`")
            }
            ParseError::DuplicateOp {
                name, first_line, ..
            } => {
                write!(
                    f,
                    "{at}: operation `{name}` already defined on line {first_line}"
                )
            }
            ParseError::UnsupportedVersion { version, .. } => {
                write!(
                    f,
                    "{at}: unsupported assay-dsl version {version} (this parser reads version {DSL_VERSION})"
                )
            }
            ParseError::Graph { source, .. } => {
                write!(f, "{at}: invalid assay graph: {source}")
            }
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Graph { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// True when `s` is a legal op name: starts with a letter or `_`, then
/// letters, digits, `_`, `.` or `-`. The charset excludes `>` so a name
/// can never be confused with the `->` arrow.
pub fn is_valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
}

/// A cursor over one comment-stripped source line, tracking character
/// columns for error spans.
struct Cursor<'a> {
    line: usize,
    text: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(line: usize, text: &'a str) -> Self {
        Cursor { line, text, pos: 0 }
    }

    fn col_at(&self, byte: usize) -> usize {
        self.text[..byte].chars().count() + 1
    }

    fn col(&self) -> usize {
        self.col_at(self.pos)
    }

    fn skip_ws(&mut self) {
        let rest = &self.text[self.pos..];
        let trimmed = rest.trim_start();
        self.pos += rest.len() - trimmed.len();
    }

    /// The next whitespace-delimited token and the column it starts at.
    fn next_token(&mut self) -> Option<(&'a str, usize)> {
        self.skip_ws();
        if self.pos >= self.text.len() {
            return None;
        }
        let start = self.pos;
        let rest = &self.text[start..];
        let end = rest
            .find(char::is_whitespace)
            .map_or(self.text.len(), |i| start + i);
        self.pos = end;
        Some((&self.text[start..end], self.col_at(start)))
    }

    fn err(&self, column: usize, message: impl Into<String>) -> ParseError {
        ParseError::Syntax {
            line: self.line,
            column,
            message: message.into(),
        }
    }

    /// Errors unless the rest of the line is blank.
    fn expect_end(&mut self) -> Result<(), ParseError> {
        match self.next_token() {
            None => Ok(()),
            Some((tok, col)) => Err(self.err(col, format!("unexpected trailing token `{tok}`"))),
        }
    }
}

/// Strips a `#` comment, but not inside a double-quoted string.
fn strip_comment(raw: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in raw.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &raw[..i],
            _ => {}
        }
        escaped = false;
    }
    raw
}

/// Parses a finite float with a bounds check, reporting `what` in errors.
fn parse_f64(
    cur: &Cursor<'_>,
    col: usize,
    text: &str,
    what: &str,
    min_exclusive: f64,
    max_inclusive: f64,
) -> Result<f64, ParseError> {
    let v: f64 = text
        .parse()
        .map_err(|e| cur.err(col, format!("bad {what} `{text}`: {e}")))?;
    if !v.is_finite() {
        return Err(cur.err(col, format!("{what} `{text}` must be finite")));
    }
    if v <= min_exclusive || v > max_inclusive {
        return Err(cur.err(
            col,
            format!("{what} `{text}` out of range ({min_exclusive} < value <= {max_inclusive})"),
        ));
    }
    Ok(v)
}

/// Parses a `<secs>s` duration token.
fn parse_secs_token(
    cur: &Cursor<'_>,
    col: usize,
    tok: &str,
    what: &str,
    min_exclusive: f64,
    max_inclusive: f64,
) -> Result<Duration, ParseError> {
    let body = tok
        .strip_suffix('s')
        .ok_or_else(|| cur.err(col, format!("{what} `{tok}` must end in `s`")))?;
    let secs = parse_f64(cur, col, body, what, min_exclusive, max_inclusive)?;
    Ok(Duration::from_secs_f64(secs))
}

fn parse_u32(cur: &Cursor<'_>, col: usize, text: &str, what: &str) -> Result<u32, ParseError> {
    text.parse()
        .map_err(|e| cur.err(col, format!("bad {what} `{text}`: {e}")))
}

/// Parses an assay name after the `assay` keyword: either a quoted string
/// with `\"` / `\\` escapes, or (for compatibility) the bare rest of the
/// line.
fn parse_assay_name(cur: &mut Cursor<'_>) -> Result<String, ParseError> {
    cur.skip_ws();
    let start = cur.pos;
    let rest = &cur.text[start..];
    if rest.is_empty() {
        return Err(cur.err(cur.col(), "expected an assay name after `assay`"));
    }
    if !rest.starts_with('"') {
        // Bare form. A stray quote inside means the author meant to quote.
        if rest.contains('"') {
            return Err(cur.err(
                cur.col_at(start),
                "assay names containing `\"` must be fully quoted",
            ));
        }
        cur.pos = cur.text.len();
        return Ok(rest.trim_end().to_string());
    }
    let mut name = String::new();
    let mut chars = rest.char_indices().skip(1);
    loop {
        match chars.next() {
            None => {
                return Err(cur.err(cur.col_at(start), "unterminated string (missing `\"`)"));
            }
            Some((i, '"')) => {
                cur.pos = start + i + 1;
                cur.expect_end()?;
                return Ok(name);
            }
            Some((i, '\\')) => match chars.next() {
                Some((_, c @ ('"' | '\\'))) => name.push(c),
                Some((j, c)) => {
                    return Err(cur.err(
                        cur.col_at(start + j),
                        format!("unknown escape `\\{c}` (only `\\\"` and `\\\\` are recognized)"),
                    ));
                }
                None => {
                    return Err(
                        cur.err(cur.col_at(start + i), "unterminated escape at end of line")
                    );
                }
            },
            Some((_, c)) => name.push(c),
        }
    }
}

/// Parses `.assay` text into its statement-level AST. Syntax, duplicate
/// names/edges, self-loops, unknown edge endpoints, and version problems
/// are all reported here with line and column; only graph-level validation
/// (cycles) is deferred to [`AssayAst::lower`].
///
/// # Errors
///
/// See [`ParseError`].
pub fn parse_assay_ast(text: &str) -> Result<AssayAst, ParseError> {
    let mut version: Option<u32> = None;
    let mut name: Option<(String, usize)> = None;
    let mut ops: Vec<OpDecl> = Vec::new();
    let mut op_lines: HashMap<String, usize> = HashMap::new();
    let mut edges: Vec<EdgeDecl> = Vec::new();
    let mut edge_cols: Vec<Vec<usize>> = Vec::new();
    let mut edge_pairs: HashMap<(String, String), usize> = HashMap::new();
    let mut flow = FlowDecl::default();
    let mut flow_lines: HashMap<&'static str, usize> = HashMap::new();
    let mut defects: Vec<DefectDecl> = Vec::new();
    let mut allocation: Option<(Allocation, usize)> = None;
    let mut statements = 0usize;
    let mut line_count = 0usize;

    for (idx, raw) in text.lines().enumerate() {
        line_count = idx + 1;
        let line_no = idx + 1;
        let stripped = strip_comment(raw);
        let mut cur = Cursor::new(line_no, stripped);
        let Some((keyword, kw_col)) = cur.next_token() else {
            continue;
        };
        let stmt_span = Span::new(line_no, kw_col);
        match keyword {
            "assay-dsl" => {
                if statements > 0 {
                    return Err(cur.err(
                        kw_col,
                        "the `assay-dsl` version pragma must be the first statement",
                    ));
                }
                if version.is_some() {
                    return Err(cur.err(kw_col, "duplicate `assay-dsl` pragma"));
                }
                let (tok, col) = cur
                    .next_token()
                    .ok_or_else(|| cur.err(cur.col(), "expected a version number"))?;
                let v: u64 = tok
                    .parse()
                    .map_err(|e| cur.err(col, format!("bad version `{tok}`: {e}")))?;
                if v != u64::from(DSL_VERSION) {
                    return Err(ParseError::UnsupportedVersion {
                        line: line_no,
                        column: col,
                        version: v,
                    });
                }
                cur.expect_end()?;
                version = Some(v as u32);
            }
            "assay" => {
                if let Some((_, first)) = name {
                    return Err(cur.err(kw_col, format!("assay name already set on line {first}")));
                }
                let n = parse_assay_name(&mut cur)?;
                name = Some((n, line_no));
            }
            "op" => {
                let decl = parse_op_stmt(&mut cur, stmt_span)?;
                if let Some(&first_line) = op_lines.get(&decl.name) {
                    return Err(ParseError::DuplicateOp {
                        line: line_no,
                        column: decl.span.column,
                        name: decl.name,
                        first_line,
                    });
                }
                op_lines.insert(decl.name.clone(), line_no);
                ops.push(decl);
            }
            "edge" => {
                let (decl, cols) = parse_edge_stmt(&mut cur, stmt_span)?;
                for (k, pair) in decl.chain.windows(2).enumerate() {
                    let key = (pair[0].clone(), pair[1].clone());
                    if let Some(&first) = edge_pairs.get(&key) {
                        return Err(cur.err(
                            cols[k + 1],
                            format!(
                                "duplicate edge `{} -> {}` (first on line {first})",
                                pair[0], pair[1]
                            ),
                        ));
                    }
                    edge_pairs.insert(key, line_no);
                }
                edges.push(decl);
                edge_cols.push(cols);
            }
            "flow" => parse_flow_stmt(&mut cur, &mut flow, &mut flow_lines)?,
            "defect" => defects.push(parse_defect_stmt(&mut cur, stmt_span)?),
            "alloc" => {
                if let Some((_, first)) = allocation {
                    return Err(cur.err(kw_col, format!("allocation already set on line {first}")));
                }
                let mut counts = [0u32; 4];
                for (slot, what) in ["mixer", "heater", "filter", "detector"].iter().enumerate() {
                    let (tok, col) = cur.next_token().ok_or_else(|| {
                        cur.err(
                            cur.col(),
                            "expected `alloc <mixers> <heaters> <filters> <detectors>`",
                        )
                    })?;
                    counts[slot] = parse_u32(&cur, col, tok, &format!("{what} count"))?;
                }
                cur.expect_end()?;
                allocation = Some((
                    Allocation::new(counts[0], counts[1], counts[2], counts[3]),
                    line_no,
                ));
            }
            other => {
                return Err(cur.err(
                    kw_col,
                    format!(
                        "unknown keyword `{other}` (expected assay-dsl, assay, op, edge, flow, defect or alloc)"
                    ),
                ));
            }
        }
        statements += 1;
    }

    if ops.is_empty() {
        return Err(ParseError::Graph {
            line: line_count + 1,
            column: 1,
            source: GraphError::Empty,
        });
    }
    // Edges may reference ops declared later in the file; resolve names now
    // that every `op` has been seen.
    for (decl, cols) in edges.iter().zip(&edge_cols) {
        for (name, &col) in decl.chain.iter().zip(cols) {
            if !op_lines.contains_key(name) {
                return Err(ParseError::UnknownOp {
                    line: decl.span.line,
                    column: col,
                    name: name.clone(),
                });
            }
        }
    }

    Ok(AssayAst {
        version: version.unwrap_or(DSL_VERSION),
        name: name.map(|(n, _)| n).unwrap_or_default(),
        ops,
        edges,
        flow,
        defects,
        allocation: allocation.map(|(a, _)| a),
    })
}

fn parse_op_stmt(cur: &mut Cursor<'_>, span: Span) -> Result<OpDecl, ParseError> {
    let (name, name_col) = cur
        .next_token()
        .ok_or_else(|| cur.err(cur.col(), "expected an operation name after `op`"))?;
    if !is_valid_name(name) {
        return Err(cur.err(
            name_col,
            format!(
                "invalid operation name `{name}` (a letter or `_`, then letters, digits, `_`, `.` or `-`)"
            ),
        ));
    }
    let (kind_tok, kind_col) = cur
        .next_token()
        .ok_or_else(|| cur.err(cur.col(), "expected a kind (mix|heat|filter|detect)"))?;
    let kind = match kind_tok {
        "mix" => OperationKind::Mix,
        "heat" => OperationKind::Heat,
        "filter" => OperationKind::Filter,
        "detect" => OperationKind::Detect,
        other => {
            return Err(cur.err(
                kind_col,
                format!("expected kind mix|heat|filter|detect, got `{other}`"),
            ));
        }
    };
    let (dur_tok, dur_col) = cur
        .next_token()
        .ok_or_else(|| cur.err(cur.col(), "expected a duration (e.g. `5s`)"))?;
    let duration = parse_secs_token(cur, dur_col, dur_tok, "duration", 0.0, MAX_DURATION_SECS)?;
    let (fluid_tok, fluid_col) = cur.next_token().ok_or_else(|| {
        cur.err(
            cur.col(),
            "expected a fluid spec (`wash=<secs>s` or `d=<coefficient>`)",
        )
    })?;
    let fluid = if let Some(v) = fluid_tok.strip_prefix("wash=") {
        // The calibrated model inverts wash times up to its clamp; beyond it
        // no coefficient exists, so the grammar rejects the value here
        // rather than letting the lowering panic.
        let max = LogLinearWash::paper_calibrated().max_wash().as_secs_f64();
        let body = v
            .strip_suffix('s')
            .ok_or_else(|| cur.err(fluid_col, format!("wash value `{v}` must end in `s`")))?;
        let secs = parse_f64(cur, fluid_col, body, "wash time", -f64::EPSILON, max)?;
        FluidSpec::Wash(Duration::from_secs_f64(secs.max(0.0)))
    } else if let Some(v) = fluid_tok.strip_prefix("d=") {
        let d: f64 = v
            .parse()
            .map_err(|e| cur.err(fluid_col, format!("bad coefficient `{v}`: {e}")))?;
        let d = DiffusionCoefficient::new(d)
            .map_err(|e| cur.err(fluid_col, format!("bad coefficient `{v}`: {e}")))?;
        FluidSpec::Diffusion(d)
    } else {
        return Err(cur.err(
            fluid_col,
            format!("expected `wash=<secs>s` or `d=<coefficient>`, got `{fluid_tok}`"),
        ));
    };
    cur.expect_end()?;
    Ok(OpDecl {
        name: name.to_string(),
        kind,
        duration,
        fluid,
        span: Span::new(span.line, name_col),
    })
}

fn parse_edge_stmt(cur: &mut Cursor<'_>, span: Span) -> Result<(EdgeDecl, Vec<usize>), ParseError> {
    let mut chain = Vec::new();
    let mut cols = Vec::new();
    loop {
        let (tok, col) = match cur.next_token() {
            Some(t) => t,
            None if chain.len() >= 2 => break,
            None => {
                return Err(cur.err(cur.col(), "expected `edge a -> b [-> c ...]`"));
            }
        };
        if !chain.is_empty() {
            if tok != "->" {
                return Err(cur.err(col, format!("expected `->` between names, got `{tok}`")));
            }
            let Some((name_tok, name_col)) = cur.next_token() else {
                return Err(cur.err(cur.col(), "expected an operation name after `->`"));
            };
            if !is_valid_name(name_tok) {
                return Err(cur.err(name_col, format!("invalid operation name `{name_tok}`")));
            }
            if name_tok == chain[chain.len() - 1] {
                return Err(cur.err(
                    name_col,
                    format!("edge `{name_tok} -> {name_tok}` is a self-loop"),
                ));
            }
            chain.push(name_tok.to_string());
            cols.push(name_col);
        } else {
            if !is_valid_name(tok) {
                return Err(cur.err(col, format!("invalid operation name `{tok}`")));
            }
            chain.push(tok.to_string());
            cols.push(col);
        }
    }
    Ok((EdgeDecl { chain, span }, cols))
}

fn parse_flow_stmt(
    cur: &mut Cursor<'_>,
    flow: &mut FlowDecl,
    seen: &mut HashMap<&'static str, usize>,
) -> Result<(), ParseError> {
    let line = cur.line;
    let mut any = false;
    let mut set = |key: &'static str, col: usize, cur: &Cursor<'_>| -> Result<(), ParseError> {
        if let Some(&first) = seen.get(key) {
            return Err(cur.err(col, format!("flow `{key}` already set on line {first}")));
        }
        seen.insert(key, line);
        Ok(())
    };
    while let Some((tok, col)) = cur.next_token() {
        any = true;
        match tok {
            "dcsa" | "ours" => {
                set("flow", col, cur)?;
                flow.kind = Some(FlowKind::Dcsa);
            }
            "baseline" | "ba" => {
                set("flow", col, cur)?;
                flow.kind = Some(FlowKind::Baseline);
            }
            _ if tok.starts_with("t_c=") => {
                set("t_c", col, cur)?;
                let v = &tok[4..];
                flow.t_c = Some(parse_secs_token(
                    cur,
                    col,
                    v,
                    "t_c",
                    0.0,
                    MAX_DURATION_SECS,
                )?);
            }
            _ if tok.starts_with("seed=") => {
                set("seed", col, cur)?;
                let v = &tok[5..];
                let seed: u64 = v
                    .parse()
                    .map_err(|e| cur.err(col, format!("bad seed `{v}`: {e}")))?;
                flow.seed = Some(seed);
            }
            other => {
                return Err(cur.err(
                    col,
                    format!(
                        "expected `dcsa`, `baseline`, `t_c=<secs>s` or `seed=<n>`, got `{other}`"
                    ),
                ));
            }
        }
    }
    if !any {
        return Err(cur.err(
            cur.col(),
            "expected `flow [dcsa|baseline] [t_c=<secs>s] [seed=<n>]`",
        ));
    }
    Ok(())
}

fn parse_defect_stmt(cur: &mut Cursor<'_>, span: Span) -> Result<DefectDecl, ParseError> {
    let (sub, sub_col) = cur.next_token().ok_or_else(|| {
        cur.err(
            cur.col(),
            "expected `block <x> <y>`, `dead <component>` or `slow <x> <y> <weight>`",
        )
    })?;
    let mut arg = |what: &str| -> Result<u32, ParseError> {
        let (tok, col) = cur
            .next_token()
            .ok_or_else(|| cur.err(cur.col(), format!("expected {what}")))?;
        parse_u32(cur, col, tok, what)
    };
    let decl = match sub {
        "block" => {
            let x = arg("cell x")?;
            let y = arg("cell y")?;
            DefectDecl::Block { x, y, span }
        }
        "dead" => {
            let component = arg("component index")?;
            DefectDecl::Dead { component, span }
        }
        "slow" => {
            let x = arg("cell x")?;
            let y = arg("cell y")?;
            let extra_weight = arg("extra weight")?;
            if extra_weight == 0 {
                return Err(cur.err(sub_col, "slow-cell extra weight must be at least 1"));
            }
            DefectDecl::Slow {
                x,
                y,
                extra_weight,
                span,
            }
        }
        other => {
            return Err(cur.err(
                sub_col,
                format!("expected `block`, `dead` or `slow`, got `{other}`"),
            ));
        }
    };
    cur.expect_end()?;
    Ok(decl)
}

impl AssayAst {
    /// Normalizes the AST into an [`AssayFile`]: builds the validated
    /// sequencing graph (resolving `wash=` specs through the calibrated
    /// model) and the defect map.
    ///
    /// # Errors
    ///
    /// [`ParseError::Graph`] when the edges form a cycle (anchored to an
    /// edge statement inside the cycle); name-resolution errors when the
    /// AST was constructed by hand rather than parsed.
    pub fn lower(&self) -> Result<AssayFile, ParseError> {
        let wash = LogLinearWash::paper_calibrated();
        let mut builder = SequencingGraph::builder();
        builder.name(&self.name);
        let mut ids: HashMap<&str, OpId> = HashMap::new();
        for op in &self.ops {
            if ids.contains_key(op.name.as_str()) {
                return Err(ParseError::DuplicateOp {
                    line: op.span.line,
                    column: op.span.column,
                    name: op.name.clone(),
                    first_line: op.span.line,
                });
            }
            let id = builder.labelled_operation(
                op.kind,
                op.duration,
                op.fluid.coefficient(&wash),
                op.name.clone(),
            );
            ids.insert(&op.name, id);
        }
        for decl in &self.edges {
            for pair in decl.chain.windows(2) {
                let resolve = |n: &str| {
                    ids.get(n).copied().ok_or_else(|| ParseError::UnknownOp {
                        line: decl.span.line,
                        column: decl.span.column,
                        name: n.to_string(),
                    })
                };
                let (p, c) = (resolve(&pair[0])?, resolve(&pair[1])?);
                builder.edge(p, c).map_err(|source| ParseError::Graph {
                    line: decl.span.line,
                    column: decl.span.column,
                    source,
                })?;
            }
        }
        let graph = builder.build().map_err(|source| {
            let (line, column) = self.anchor_for(&source);
            ParseError::Graph {
                line,
                column,
                source,
            }
        })?;

        let mut defects = DefectMap::pristine();
        for d in &self.defects {
            match *d {
                DefectDecl::Block { x, y, .. } => {
                    defects.block_cell(CellPos::new(x, y));
                }
                DefectDecl::Dead { component, .. } => {
                    defects.kill_component(ComponentId::new(component));
                }
                DefectDecl::Slow {
                    x, y, extra_weight, ..
                } => {
                    defects.penalize_cell(CellPos::new(x, y), extra_weight);
                }
            }
        }

        Ok(AssayFile {
            graph,
            allocation: self.allocation,
            version: self.version,
            flow: self.flow,
            defects,
        })
    }

    /// Picks the statement to blame for a build-time graph error: for a
    /// cycle, the last edge statement whose endpoints are both on the
    /// cycle; otherwise the start of the document.
    fn anchor_for(&self, source: &GraphError) -> (usize, usize) {
        if let GraphError::Cycle(ops) = source {
            let on_cycle: Vec<&str> = ops
                .iter()
                .filter_map(|id| self.ops.get(id.index()).map(|o| o.name.as_str()))
                .collect();
            for decl in self.edges.iter().rev() {
                if decl
                    .chain
                    .windows(2)
                    .any(|p| on_cycle.contains(&p[0].as_str()) && on_cycle.contains(&p[1].as_str()))
                {
                    return (decl.span.line, decl.span.column);
                }
            }
        }
        (1, 1)
    }

    /// Reconstructs an AST from an existing graph (and optional
    /// allocation), for serialization. Labels that are not legal names —
    /// or that collide — fall back to `o<index>` deterministically.
    pub fn from_graph(graph: &SequencingGraph, allocation: Option<Allocation>) -> Self {
        use std::collections::HashSet;
        let mut used: HashSet<String> = HashSet::new();
        let mut names: Vec<String> = Vec::with_capacity(graph.len());
        for op in graph.ops() {
            let label = op.label();
            let mut candidate = if is_valid_name(label) && !used.contains(label) {
                label.to_string()
            } else {
                format!("o{}", op.id().index())
            };
            while used.contains(&candidate) {
                candidate.push('_');
            }
            used.insert(candidate.clone());
            names.push(candidate);
        }
        let ops = graph
            .ops()
            .zip(&names)
            .map(|(op, name)| OpDecl {
                name: name.clone(),
                kind: op.kind(),
                duration: op.duration(),
                fluid: FluidSpec::Diffusion(op.output_diffusion()),
                span: Span::default(),
            })
            .collect();
        let edges = graph
            .edges()
            .map(|(p, c)| EdgeDecl {
                chain: vec![names[p.index()].clone(), names[c.index()].clone()],
                span: Span::default(),
            })
            .collect();
        // Control characters (a newline above all) would break the
        // line-oriented format; spaces are the closest printable stand-in.
        let name = graph
            .name()
            .chars()
            .map(|c| if c.is_control() { ' ' } else { c })
            .collect();
        AssayAst {
            version: DSL_VERSION,
            name,
            ops,
            edges,
            flow: FlowDecl::default(),
            defects: Vec::new(),
            allocation,
        }
    }
}

/// Parses `.assay` text and lowers it ([`parse_assay_ast`] +
/// [`AssayAst::lower`]).
///
/// # Errors
///
/// See [`ParseError`].
pub fn parse_assay(text: &str) -> Result<AssayFile, ParseError> {
    parse_assay_ast(text)?.lower()
}

/// Formats an `f64` in its shortest round-tripping decimal form.
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

fn escape_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 2);
    out.push('"');
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serializes an AST into canonical `.assay` text: version pragma first,
/// aligned `op` columns, one statement per line, sections separated by
/// blank lines. Printing is idempotent (`parse(print(ast))` prints back
/// byte-identically), which is what `mfb fmt` relies on.
pub fn write_assay_ast(ast: &AssayAst) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "assay-dsl {}", ast.version);
    if !ast.name.is_empty() {
        let _ = writeln!(s, "assay {}", escape_name(&ast.name));
    }

    let section = |s: &mut String| {
        if !s.is_empty() {
            s.push('\n');
        }
    };

    if !ast.ops.is_empty() {
        section(&mut s);
        let name_w = ast
            .ops
            .iter()
            .map(|o| o.name.chars().count())
            .max()
            .unwrap_or(0);
        let kind_w = ast
            .ops
            .iter()
            .map(|o| o.kind.name().len())
            .max()
            .unwrap_or(0);
        let durs: Vec<String> = ast
            .ops
            .iter()
            .map(|o| format!("{}s", fmt_f64(o.duration.as_secs_f64())))
            .collect();
        let dur_w = durs.iter().map(String::len).max().unwrap_or(0);
        for (op, dur) in ast.ops.iter().zip(&durs) {
            let fluid = match op.fluid {
                FluidSpec::Wash(t) => format!("wash={}s", fmt_f64(t.as_secs_f64())),
                FluidSpec::Diffusion(d) => format!("d={:e}", d.cm2_per_s()),
            };
            let _ = writeln!(
                s,
                "op {:<name_w$} {:<kind_w$} {:>dur_w$} {}",
                op.name,
                op.kind.name(),
                dur,
                fluid
            );
        }
    }

    if !ast.edges.is_empty() {
        section(&mut s);
        for e in &ast.edges {
            let _ = writeln!(s, "edge {}", e.chain.join(" -> "));
        }
    }

    if !ast.flow.is_empty() || !ast.defects.is_empty() {
        section(&mut s);
        if !ast.flow.is_empty() {
            let mut line = "flow".to_string();
            if let Some(kind) = ast.flow.kind {
                let _ = write!(line, " {}", kind.name());
            }
            if let Some(t_c) = ast.flow.t_c {
                let _ = write!(line, " t_c={}s", fmt_f64(t_c.as_secs_f64()));
            }
            if let Some(seed) = ast.flow.seed {
                let _ = write!(line, " seed={seed}");
            }
            let _ = writeln!(s, "{line}");
        }
        for d in &ast.defects {
            match *d {
                DefectDecl::Block { x, y, .. } => {
                    let _ = writeln!(s, "defect block {x} {y}");
                }
                DefectDecl::Dead { component, .. } => {
                    let _ = writeln!(s, "defect dead {component}");
                }
                DefectDecl::Slow {
                    x, y, extra_weight, ..
                } => {
                    let _ = writeln!(s, "defect slow {x} {y} {extra_weight}");
                }
            }
        }
    }

    if let Some(a) = ast.allocation {
        section(&mut s);
        let _ = writeln!(
            s,
            "alloc {} {} {} {}",
            a.count(crate::component::ComponentKind::Mixer),
            a.count(crate::component::ComponentKind::Heater),
            a.count(crate::component::ComponentKind::Filter),
            a.count(crate::component::ComponentKind::Detector),
        );
    }
    s
}

/// Serializes a graph (and optional allocation) into canonical `.assay`
/// text. Operations are written with `d=` coefficients, so the round trip
/// is model-independent.
pub fn write_assay(graph: &SequencingGraph, allocation: Option<Allocation>) -> String {
    write_assay_ast(&AssayAst::from_graph(graph, allocation))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wash::WashModel;

    const SAMPLE: &str = r#"
# three-op chain
assay "demo"
op a mix    5s wash=4s
op b heat   3s d=5e-7
op c detect 4s wash=0.2s
edge a -> b -> c
alloc 1 1 0 1
"#;

    #[test]
    fn parses_sample() {
        let f = parse_assay(SAMPLE).unwrap();
        assert_eq!(f.graph.name(), "demo");
        assert_eq!(f.graph.len(), 3);
        assert_eq!(f.graph.edge_count(), 2);
        assert_eq!(f.allocation, Some(Allocation::new(1, 1, 0, 1)));
        assert_eq!(f.version, DSL_VERSION);
        assert!(f.flow.is_empty());
        assert!(f.defects.is_pristine());
        let wash = LogLinearWash::paper_calibrated();
        let a = f.graph.op(OpId::new(0));
        assert_eq!(a.kind(), OperationKind::Mix);
        assert_eq!(a.duration(), Duration::from_secs(5));
        assert_eq!(wash.wash_time(a.output_diffusion()), Duration::from_secs(4));
        let b = f.graph.op(OpId::new(1));
        assert!((b.output_diffusion().cm2_per_s() - 5e-7).abs() < 1e-20);
    }

    #[test]
    fn parses_version_pragma_and_rejects_unknown_versions() {
        let f = parse_assay("assay-dsl 1\nop a mix 1s wash=1s\n").unwrap();
        assert_eq!(f.version, 1);
        match parse_assay("assay-dsl 2\nop a mix 1s wash=1s\n").unwrap_err() {
            ParseError::UnsupportedVersion { line, version, .. } => {
                assert_eq!(line, 1);
                assert_eq!(version, 2);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // The pragma must come first.
        let err = parse_assay("op a mix 1s wash=1s\nassay-dsl 1\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 2, .. }), "{err}");
    }

    #[test]
    fn parses_flow_and_defect_statements() {
        let text = "\
op a mix 1s wash=1s
flow baseline t_c=3s seed=42
defect block 2 3
defect dead 1
defect slow 4 5 2
";
        let f = parse_assay(text).unwrap();
        assert_eq!(f.flow.kind, Some(FlowKind::Baseline));
        assert_eq!(f.flow.t_c, Some(Duration::from_secs(3)));
        assert_eq!(f.flow.seed, Some(42));
        assert!(f.defects.is_blocked(CellPos::new(2, 3)));
        assert!(f.defects.is_dead(ComponentId::new(1)));
        assert_eq!(f.defects.weight_penalty(CellPos::new(4, 5)), 2);
    }

    #[test]
    fn rejects_duplicate_flow_keys_with_position() {
        let text = "op a mix 1s wash=1s\nflow seed=1\nflow seed=2\n";
        match parse_assay(text).unwrap_err() {
            ParseError::Syntax {
                line,
                column,
                message,
            } => {
                assert_eq!(line, 3);
                assert_eq!(column, 6);
                assert!(message.contains("already set on line 2"), "{message}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn roundtrips_through_writer() {
        let f = parse_assay(SAMPLE).unwrap();
        let text = write_assay(&f.graph, f.allocation);
        let f2 = parse_assay(&text).unwrap();
        assert_eq!(f2.graph.len(), f.graph.len());
        assert_eq!(f2.graph.edge_count(), f.graph.edge_count());
        assert_eq!(f2.allocation, f.allocation);
        for (x, y) in f.graph.ops().zip(f2.graph.ops()) {
            assert_eq!(x.kind(), y.kind());
            assert_eq!(x.duration(), y.duration());
            assert!(
                (x.output_diffusion().cm2_per_s() - y.output_diffusion().cm2_per_s()).abs() < 1e-18
            );
        }
    }

    #[test]
    fn ast_roundtrips_exactly_and_printing_is_idempotent() {
        let text = "\
assay-dsl 1
assay \"full \\\"grammar\\\" demo\"
op a mix 1.5s wash=4s
op b heat 3s d=5e-7
edge a -> b
flow dcsa t_c=2.5s seed=9
defect block 1 2
defect slow 3 4 5
alloc 1 1 0 0
";
        let ast = parse_assay_ast(text).unwrap();
        assert_eq!(ast.name, "full \"grammar\" demo");
        let printed = write_assay_ast(&ast);
        let reparsed = parse_assay_ast(&printed).unwrap();
        // Statement-level equality, spans aside: compare through the printer
        // and the lowering.
        assert_eq!(write_assay_ast(&reparsed), printed);
        assert_eq!(reparsed.lower().unwrap(), ast.lower().unwrap());
    }

    #[test]
    fn reports_unknown_ops_with_line_and_column() {
        let text = "op a mix 5s wash=1s\nedge a -> ghost\n";
        match parse_assay(text).unwrap_err() {
            ParseError::UnknownOp { line, column, name } => {
                assert_eq!(line, 2);
                assert_eq!(column, 11);
                assert_eq!(name, "ghost");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn reports_duplicate_ops_with_both_positions() {
        let text = "op a mix 5s wash=1s\nop a mix 4s wash=1s\n";
        match parse_assay(text).unwrap_err() {
            ParseError::DuplicateOp {
                line,
                column,
                first_line,
                ..
            } => {
                assert_eq!(line, 2);
                assert_eq!(column, 4);
                assert_eq!(first_line, 1);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn reports_syntax_errors() {
        for bad in [
            "op a mixx 5s wash=1s",
            "op a mix 5 wash=1s",
            "op a mix 5s",
            "op a mix 5s wash=1",
            "op a mix 5s d=-3",
            "op a mix 5s wash=1s extra",
            "op a mix 0s wash=1s",
            "op a mix nans wash=1s",
            "op a mix 5s wash=99s",
            "op 3a mix 5s wash=1s",
            "alloc 1 2 3",
            "frobnicate",
            "edge a ->",
            "edge a b",
            "flow",
            "flow warp=9",
            "defect melt 1 2",
            "defect slow 1 2 0",
        ] {
            let err = parse_assay(bad).unwrap_err();
            assert!(
                matches!(err, ParseError::Syntax { .. }),
                "`{bad}` gave {err:?}"
            );
        }
    }

    #[test]
    fn every_error_carries_a_position() {
        for bad in [
            "op a mix 5s wash=1s\nop a mix 4s wash=1s\n",
            "edge a -> b\n",
            "assay-dsl 99\nop a mix 1s wash=1s\n",
            "op a mix 1s wash=1s\nedge a -> b\nedge b -> a\n",
            "",
            "# only a comment\n",
        ] {
            let err = parse_assay(bad).unwrap_err();
            assert!(err.line() >= 1, "`{bad}` gave line 0: {err:?}");
            assert!(err.column() >= 1, "`{bad}` gave column 0: {err:?}");
            let msg = err.to_string();
            assert!(msg.contains("line"), "{msg}");
            assert!(msg.contains("column"), "{msg}");
        }
    }

    #[test]
    fn detects_cycles_via_graph_error_with_edge_position() {
        let text = "op a mix 1s wash=1s\nop b mix 1s wash=1s\nedge a -> b\nedge b -> a\n";
        match parse_assay(text).unwrap_err() {
            ParseError::Graph { line, source, .. } => {
                assert_eq!(line, 4);
                assert!(matches!(source, GraphError::Cycle(_)));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_duplicate_edges_and_self_loops_at_parse_time() {
        let dup = "op a mix 1s wash=1s\nop b mix 1s wash=1s\nedge a -> b\nedge a -> b\n";
        let err = parse_assay(dup).unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 4, .. }), "{err}");
        let lop = "op a mix 1s wash=1s\nedge a -> a\n";
        let err = parse_assay(lop).unwrap_err();
        assert!(err.to_string().contains("self-loop"), "{err}");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# hi\nop a mix 1s wash=1s # trailing\n\n";
        let f = parse_assay(text).unwrap();
        assert_eq!(f.graph.len(), 1);
        assert_eq!(f.allocation, None);
    }

    #[test]
    fn hash_inside_quoted_name_is_not_a_comment() {
        let f = parse_assay("assay \"a#b\"\nop a mix 1s wash=1s\n").unwrap();
        assert_eq!(f.graph.name(), "a#b");
        let printed = write_assay_ast(&AssayAst::from_graph(&f.graph, None));
        let back = parse_assay(&printed).unwrap();
        assert_eq!(back.graph.name(), "a#b");
    }

    #[test]
    fn rejects_duplicate_alloc_and_name_headers() {
        let err = parse_assay("assay \"x\"\nassay \"y\"\nop a mix 1s wash=1s\n").unwrap_err();
        assert!(err.to_string().contains("already set"), "{err}");
        let err = parse_assay("op a mix 1s wash=1s\nalloc 1 0 0 0\nalloc 2 0 0 0\n").unwrap_err();
        assert!(err.to_string().contains("already set"), "{err}");
    }

    #[test]
    fn from_graph_dedupes_colliding_labels() {
        let mut b = SequencingGraph::builder();
        let d = DiffusionCoefficient::PROTEIN;
        b.labelled_operation(OperationKind::Mix, Duration::from_secs(1), d, "same");
        b.labelled_operation(OperationKind::Mix, Duration::from_secs(2), d, "same");
        b.labelled_operation(OperationKind::Mix, Duration::from_secs(3), d, "has space");
        let g = b.build().unwrap();
        let text = write_assay(&g, None);
        let f = parse_assay(&text).unwrap();
        assert_eq!(f.graph.len(), 3);
    }
}
