//! The `.assay` text format: a minimal, diff-friendly way to describe
//! bioassays (and optionally a component allocation) in a file.
//!
//! ```text
//! # Lines starting with '#' are comments.
//! assay "my panel"
//!
//! # op <name> <kind> <duration>s (wash=<secs>s | d=<cm^2/s>)
//! op prepA  mix    5s wash=4s
//! op prepB  mix    5s wash=2s
//! op merge  mix    4s d=5e-8
//! op read   detect 3s wash=0.2s
//!
//! # edge <parent> -> <child> [-> <grandchild> ...]
//! edge prepA -> merge -> read
//! edge prepB -> merge
//!
//! # optional: alloc <mixers> <heaters> <filters> <detectors>
//! alloc 2 0 0 1
//! ```
//!
//! `wash=` values are converted into diffusion coefficients through the
//! paper-calibrated log-linear wash model; `d=` gives the coefficient
//! directly.

use crate::component::Allocation;
use crate::fluid::DiffusionCoefficient;
use crate::graph::{GraphError, SequencingGraph};
use crate::ids::OpId;
use crate::operation::OperationKind;
use crate::time::Duration;
use crate::wash::LogLinearWash;
use std::collections::HashMap;
use std::fmt;

/// A parsed `.assay` file.
#[derive(Debug, Clone, PartialEq)]
pub struct AssayFile {
    /// The bioassay.
    pub graph: SequencingGraph,
    /// The component allocation, if the file declared one.
    pub allocation: Option<Allocation>,
}

/// Errors produced while parsing an `.assay` file.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseError {
    /// A line could not be understood.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// An edge referenced an undefined operation name.
    UnknownOp {
        /// 1-based line number.
        line: usize,
        /// The missing name.
        name: String,
    },
    /// The same operation name was defined twice.
    DuplicateOp {
        /// 1-based line number.
        line: usize,
        /// The re-defined name.
        name: String,
    },
    /// The resulting graph is invalid (cycle, empty, duplicate edge).
    Graph(GraphError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ParseError::UnknownOp { line, name } => {
                write!(f, "line {line}: unknown operation `{name}`")
            }
            ParseError::DuplicateOp { line, name } => {
                write!(f, "line {line}: operation `{name}` defined twice")
            }
            ParseError::Graph(e) => write!(f, "invalid assay graph: {e}"),
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for ParseError {
    fn from(e: GraphError) -> Self {
        ParseError::Graph(e)
    }
}

/// Parses `.assay` text.
///
/// # Errors
///
/// See [`ParseError`].
pub fn parse_assay(text: &str) -> Result<AssayFile, ParseError> {
    let wash = LogLinearWash::paper_calibrated();
    let mut builder = SequencingGraph::builder();
    let mut names: HashMap<String, OpId> = HashMap::new();
    let mut allocation = None;
    let mut pending_edges: Vec<(usize, Vec<String>)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let keyword = tokens.next().expect("non-empty line has a token");
        match keyword {
            "assay" => {
                let rest = line[5..].trim().trim_matches('"');
                builder.name(rest);
            }
            "op" => {
                let (name, kind, dur, diff) = parse_op(line_no, line, &wash)?;
                if names.contains_key(&name) {
                    return Err(ParseError::DuplicateOp {
                        line: line_no,
                        name,
                    });
                }
                let id = builder.labelled_operation(kind, dur, diff, name.clone());
                names.insert(name, id);
            }
            "edge" => {
                let chain: Vec<String> = line[4..]
                    .split("->")
                    .map(|s| s.trim().to_string())
                    .collect();
                if chain.len() < 2 || chain.iter().any(String::is_empty) {
                    return Err(ParseError::Syntax {
                        line: line_no,
                        message: "expected `edge a -> b [-> c ...]`".into(),
                    });
                }
                pending_edges.push((line_no, chain));
            }
            "alloc" => {
                let counts: Vec<u32> =
                    tokens
                        .map(str::parse)
                        .collect::<Result<_, _>>()
                        .map_err(|e| ParseError::Syntax {
                            line: line_no,
                            message: format!("bad allocation count: {e}"),
                        })?;
                if counts.len() != 4 {
                    return Err(ParseError::Syntax {
                        line: line_no,
                        message: "expected `alloc <mixers> <heaters> <filters> <detectors>`".into(),
                    });
                }
                allocation = Some(Allocation::new(counts[0], counts[1], counts[2], counts[3]));
            }
            other => {
                return Err(ParseError::Syntax {
                    line: line_no,
                    message: format!("unknown keyword `{other}`"),
                })
            }
        }
    }

    for (line_no, chain) in pending_edges {
        let ids: Vec<OpId> = chain
            .iter()
            .map(|n| {
                names.get(n).copied().ok_or_else(|| ParseError::UnknownOp {
                    line: line_no,
                    name: n.clone(),
                })
            })
            .collect::<Result<_, _>>()?;
        builder.chain(&ids)?;
    }

    Ok(AssayFile {
        graph: builder.build()?,
        allocation,
    })
}

fn parse_op(
    line_no: usize,
    line: &str,
    wash: &LogLinearWash,
) -> Result<(String, OperationKind, Duration, DiffusionCoefficient), ParseError> {
    let syntax = |message: String| ParseError::Syntax {
        line: line_no,
        message,
    };
    let mut tokens = line.split_whitespace().skip(1);
    let name = tokens
        .next()
        .ok_or_else(|| syntax("missing operation name".into()))?
        .to_string();
    let kind = match tokens.next() {
        Some("mix") => OperationKind::Mix,
        Some("heat") => OperationKind::Heat,
        Some("filter") => OperationKind::Filter,
        Some("detect") => OperationKind::Detect,
        other => {
            return Err(syntax(format!(
                "expected kind mix|heat|filter|detect, got {other:?}"
            )))
        }
    };
    let dur_tok = tokens
        .next()
        .ok_or_else(|| syntax("missing duration (e.g. `5s`)".into()))?;
    let dur_secs: f64 = dur_tok
        .strip_suffix('s')
        .ok_or_else(|| syntax(format!("duration `{dur_tok}` must end in `s`")))?
        .parse()
        .map_err(|e| syntax(format!("bad duration `{dur_tok}`: {e}")))?;
    let dur = Duration::from_secs_f64(dur_secs);

    let fluid_tok = tokens
        .next()
        .ok_or_else(|| syntax("missing fluid spec (`wash=..s` or `d=..`)".into()))?;
    let diff = if let Some(v) = fluid_tok.strip_prefix("wash=") {
        let secs: f64 = v
            .strip_suffix('s')
            .ok_or_else(|| syntax(format!("wash value `{v}` must end in `s`")))?
            .parse()
            .map_err(|e| syntax(format!("bad wash `{v}`: {e}")))?;
        wash.coefficient_for(Duration::from_secs_f64(secs))
    } else if let Some(v) = fluid_tok.strip_prefix("d=") {
        let d: f64 = v
            .parse()
            .map_err(|e| syntax(format!("bad coefficient `{v}`: {e}")))?;
        DiffusionCoefficient::new(d).map_err(|e| syntax(format!("bad coefficient `{v}`: {e}")))?
    } else {
        return Err(syntax(format!(
            "expected `wash=<secs>s` or `d=<coefficient>`, got `{fluid_tok}`"
        )));
    };
    if let Some(extra) = tokens.next() {
        return Err(syntax(format!("unexpected trailing token `{extra}`")));
    }
    Ok((name, kind, dur, diff))
}

/// Serializes a graph (and optional allocation) back into `.assay` text.
/// Operations are written with `d=` coefficients, so the round trip is
/// model-independent.
pub fn write_assay(graph: &SequencingGraph, allocation: Option<Allocation>) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    if !graph.name().is_empty() {
        let _ = writeln!(s, "assay \"{}\"", graph.name());
    }
    let name_of = |id: OpId| -> String {
        let label = graph.op(id).label();
        if label.is_empty() || label.contains(char::is_whitespace) {
            format!("o{}", id.index())
        } else {
            label.to_string()
        }
    };
    for op in graph.ops() {
        let _ = writeln!(
            s,
            "op {} {} {}s d={:e}",
            name_of(op.id()),
            op.kind(),
            op.duration().as_secs_f64(),
            op.output_diffusion().cm2_per_s()
        );
    }
    for (p, c) in graph.edges() {
        let _ = writeln!(s, "edge {} -> {}", name_of(p), name_of(c));
    }
    if let Some(a) = allocation {
        let _ = writeln!(
            s,
            "alloc {} {} {} {}",
            a.count(crate::component::ComponentKind::Mixer),
            a.count(crate::component::ComponentKind::Heater),
            a.count(crate::component::ComponentKind::Filter),
            a.count(crate::component::ComponentKind::Detector),
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wash::WashModel;

    const SAMPLE: &str = r#"
# three-op chain
assay "demo"
op a mix    5s wash=4s
op b heat   3s d=5e-7
op c detect 4s wash=0.2s
edge a -> b -> c
alloc 1 1 0 1
"#;

    #[test]
    fn parses_sample() {
        let f = parse_assay(SAMPLE).unwrap();
        assert_eq!(f.graph.name(), "demo");
        assert_eq!(f.graph.len(), 3);
        assert_eq!(f.graph.edge_count(), 2);
        assert_eq!(f.allocation, Some(Allocation::new(1, 1, 0, 1)));
        let wash = LogLinearWash::paper_calibrated();
        let a = f.graph.op(OpId::new(0));
        assert_eq!(a.kind(), OperationKind::Mix);
        assert_eq!(a.duration(), Duration::from_secs(5));
        assert_eq!(wash.wash_time(a.output_diffusion()), Duration::from_secs(4));
        let b = f.graph.op(OpId::new(1));
        assert!((b.output_diffusion().cm2_per_s() - 5e-7).abs() < 1e-20);
    }

    #[test]
    fn roundtrips_through_writer() {
        let f = parse_assay(SAMPLE).unwrap();
        let text = write_assay(&f.graph, f.allocation);
        let f2 = parse_assay(&text).unwrap();
        assert_eq!(f2.graph.len(), f.graph.len());
        assert_eq!(f2.graph.edge_count(), f.graph.edge_count());
        assert_eq!(f2.allocation, f.allocation);
        for (x, y) in f.graph.ops().zip(f2.graph.ops()) {
            assert_eq!(x.kind(), y.kind());
            assert_eq!(x.duration(), y.duration());
            assert!(
                (x.output_diffusion().cm2_per_s() - y.output_diffusion().cm2_per_s()).abs() < 1e-18
            );
        }
    }

    #[test]
    fn reports_unknown_ops_with_line_numbers() {
        let text = "op a mix 5s wash=1s\nedge a -> ghost\n";
        match parse_assay(text).unwrap_err() {
            ParseError::UnknownOp { line, name } => {
                assert_eq!(line, 2);
                assert_eq!(name, "ghost");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn reports_duplicate_ops() {
        let text = "op a mix 5s wash=1s\nop a mix 4s wash=1s\n";
        assert!(matches!(
            parse_assay(text).unwrap_err(),
            ParseError::DuplicateOp { line: 2, .. }
        ));
    }

    #[test]
    fn reports_syntax_errors() {
        for bad in [
            "op a mixx 5s wash=1s",
            "op a mix 5 wash=1s",
            "op a mix 5s",
            "op a mix 5s wash=1",
            "op a mix 5s d=-3",
            "op a mix 5s wash=1s extra",
            "alloc 1 2 3",
            "frobnicate",
            "edge a ->",
        ] {
            let err = parse_assay(bad).unwrap_err();
            assert!(
                matches!(err, ParseError::Syntax { .. }),
                "`{bad}` gave {err:?}"
            );
        }
    }

    #[test]
    fn detects_cycles_via_graph_error() {
        let text = "op a mix 1s wash=1s\nop b mix 1s wash=1s\nedge a -> b\nedge b -> a\n";
        assert!(matches!(
            parse_assay(text).unwrap_err(),
            ParseError::Graph(_)
        ));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# hi\nop a mix 1s wash=1s # trailing\n\n";
        let f = parse_assay(text).unwrap();
        assert_eq!(f.graph.len(), 1);
        assert_eq!(f.allocation, None);
    }
}
