//! On-chip components: kinds, footprints, allocations and the component set
//! `C` handed to binding, placement and routing.

use crate::ids::ComponentId;
use crate::operation::OperationKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of an on-chip component. Each kind executes exactly one
/// [`OperationKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ComponentKind {
    /// Rotary mixer.
    Mixer,
    /// Heating element.
    Heater,
    /// Filtration unit.
    Filter,
    /// Optical detector.
    Detector,
}

impl ComponentKind {
    /// All component kinds, in the paper's Table-I `(M, H, F, D)` order.
    pub const ALL: [ComponentKind; 4] = [
        ComponentKind::Mixer,
        ComponentKind::Heater,
        ComponentKind::Filter,
        ComponentKind::Detector,
    ];

    /// The component kind able to execute `op`.
    pub const fn for_operation(op: OperationKind) -> ComponentKind {
        match op {
            OperationKind::Mix => ComponentKind::Mixer,
            OperationKind::Heat => ComponentKind::Heater,
            OperationKind::Filter => ComponentKind::Filter,
            OperationKind::Detect => ComponentKind::Detector,
        }
    }

    /// `true` when this component kind can execute operation kind `op`.
    pub const fn executes(self, op: OperationKind) -> bool {
        matches!(
            (self, op),
            (ComponentKind::Mixer, OperationKind::Mix)
                | (ComponentKind::Heater, OperationKind::Heat)
                | (ComponentKind::Filter, OperationKind::Filter)
                | (ComponentKind::Detector, OperationKind::Detect)
        )
    }

    /// Short name (`"mixer"`, `"heater"`, …).
    pub const fn name(self) -> &'static str {
        match self {
            ComponentKind::Mixer => "mixer",
            ComponentKind::Heater => "heater",
            ComponentKind::Filter => "filter",
            ComponentKind::Detector => "detector",
        }
    }
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Rectangular footprint of a component on the placement grid, in cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Footprint {
    /// Width in grid cells (> 0).
    pub width: u32,
    /// Height in grid cells (> 0).
    pub height: u32,
}

impl Footprint {
    /// Creates a footprint.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(
            width > 0 && height > 0,
            "footprint dimensions must be positive"
        );
        Footprint { width, height }
    }

    /// Footprint area in cells.
    #[inline]
    pub const fn area(self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// The footprint rotated by 90°.
    #[inline]
    pub const fn rotated(self) -> Footprint {
        Footprint {
            width: self.height,
            height: self.width,
        }
    }
}

impl fmt::Display for Footprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

/// Physical and geometric parameters of each component kind.
///
/// The default library uses footprints representative of published FBMB
/// layouts: mixers are the largest structures (a rotary loop plus its pump
/// valves), detectors the smallest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComponentLibrary {
    footprints: [Footprint; 4],
}

impl ComponentLibrary {
    /// Creates a library with explicit footprints, indexed in
    /// `(Mixer, Heater, Filter, Detector)` order.
    pub fn new(footprints: [Footprint; 4]) -> Self {
        ComponentLibrary { footprints }
    }

    /// Footprint of components of `kind`.
    #[inline]
    pub fn footprint(&self, kind: ComponentKind) -> Footprint {
        self.footprints[kind as usize]
    }
}

impl Default for ComponentLibrary {
    fn default() -> Self {
        ComponentLibrary {
            footprints: [
                Footprint::new(4, 3), // mixer: rotary loop + pump valves
                Footprint::new(3, 2), // heater
                Footprint::new(3, 2), // filter
                Footprint::new(2, 2), // detector
            ],
        }
    }
}

/// How many components of each kind are allocated for an assay — the paper's
/// Table-I column-3 vector `(Mixers, Heaters, Filters, Detectors)`.
///
/// # Examples
///
/// ```
/// use mfb_model::component::{Allocation, ComponentKind};
///
/// let a = Allocation::new(3, 0, 0, 2); // IVD: 3 mixers, 2 detectors
/// assert_eq!(a.count(ComponentKind::Mixer), 3);
/// assert_eq!(a.total(), 5);
/// assert_eq!(a.to_string(), "(3,0,0,2)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Allocation {
    counts: [u32; 4],
}

impl Allocation {
    /// Creates an allocation from per-kind counts in `(M, H, F, D)` order.
    pub const fn new(mixers: u32, heaters: u32, filters: u32, detectors: u32) -> Self {
        Allocation {
            counts: [mixers, heaters, filters, detectors],
        }
    }

    /// Number of components of `kind`.
    #[inline]
    pub const fn count(&self, kind: ComponentKind) -> u32 {
        self.counts[kind as usize]
    }

    /// Total number of allocated components `|C|`.
    pub fn total(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// Instantiates the allocation into a concrete component set, assigning
    /// dense [`ComponentId`]s kind-major (all mixers first, then heaters, …).
    pub fn instantiate(&self, library: &ComponentLibrary) -> ComponentSet {
        let mut components = Vec::with_capacity(self.total() as usize);
        for kind in ComponentKind::ALL {
            for _ in 0..self.count(kind) {
                let id = ComponentId::new(components.len() as u32);
                components.push(Component {
                    id,
                    kind,
                    footprint: library.footprint(kind),
                });
            }
        }
        ComponentSet { components }
    }
}

impl fmt::Display for Allocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({},{},{},{})",
            self.counts[0], self.counts[1], self.counts[2], self.counts[3]
        )
    }
}

/// One allocated on-chip component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Component {
    id: ComponentId,
    kind: ComponentKind,
    footprint: Footprint,
}

impl Component {
    /// The component's identifier.
    #[inline]
    pub fn id(&self) -> ComponentId {
        self.id
    }

    /// The component's kind.
    #[inline]
    pub fn kind(&self) -> ComponentKind {
        self.kind
    }

    /// The component's placement footprint.
    #[inline]
    pub fn footprint(&self) -> Footprint {
        self.footprint
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.id, self.kind)
    }
}

/// The set `C` of allocated components handed to binding, placement and
/// routing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComponentSet {
    components: Vec<Component>,
}

impl ComponentSet {
    /// Number of components `|C|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// `true` when no components are allocated.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The component with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this set.
    #[inline]
    pub fn component(&self, id: ComponentId) -> &Component {
        &self.components[id.index()]
    }

    /// All components, in id order.
    #[inline]
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &Component> {
        self.components.iter()
    }

    /// All component ids, in id order.
    pub fn ids(&self) -> impl ExactSizeIterator<Item = ComponentId> + '_ {
        (0..self.components.len() as u32).map(ComponentId::new)
    }

    /// Ids of all components of the given kind.
    pub fn of_kind(&self, kind: ComponentKind) -> impl Iterator<Item = ComponentId> + '_ {
        self.components
            .iter()
            .filter(move |c| c.kind == kind)
            .map(|c| c.id)
    }

    /// `true` when the set contains at least one component able to execute
    /// each operation kind in `kinds`.
    pub fn covers(&self, kinds: impl IntoIterator<Item = OperationKind>) -> bool {
        kinds.into_iter().all(|k| {
            self.of_kind(ComponentKind::for_operation(k))
                .next()
                .is_some()
        })
    }
}

impl<'a> IntoIterator for &'a ComponentSet {
    type Item = &'a Component;
    type IntoIter = std::slice::Iter<'a, Component>;
    fn into_iter(self) -> Self::IntoIter {
        self.components.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_operation_mapping() {
        for op in OperationKind::ALL {
            let ck = ComponentKind::for_operation(op);
            assert!(ck.executes(op));
            for other in OperationKind::ALL {
                if other != op {
                    assert!(!ck.executes(other));
                }
            }
        }
    }

    #[test]
    fn footprint_area_and_rotation() {
        let fp = Footprint::new(4, 3);
        assert_eq!(fp.area(), 12);
        assert_eq!(fp.rotated(), Footprint::new(3, 4));
        assert_eq!(fp.rotated().rotated(), fp);
        assert_eq!(fp.to_string(), "4x3");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn footprint_rejects_zero() {
        Footprint::new(0, 2);
    }

    #[test]
    fn allocation_instantiates_kind_major() {
        let alloc = Allocation::new(2, 1, 0, 1);
        assert_eq!(alloc.total(), 4);
        let set = alloc.instantiate(&ComponentLibrary::default());
        assert_eq!(set.len(), 4);
        assert_eq!(
            set.component(ComponentId::new(0)).kind(),
            ComponentKind::Mixer
        );
        assert_eq!(
            set.component(ComponentId::new(1)).kind(),
            ComponentKind::Mixer
        );
        assert_eq!(
            set.component(ComponentId::new(2)).kind(),
            ComponentKind::Heater
        );
        assert_eq!(
            set.component(ComponentId::new(3)).kind(),
            ComponentKind::Detector
        );
        assert_eq!(set.of_kind(ComponentKind::Mixer).count(), 2);
        assert_eq!(set.of_kind(ComponentKind::Filter).count(), 0);
    }

    #[test]
    fn coverage_check() {
        let set = Allocation::new(1, 0, 0, 1).instantiate(&ComponentLibrary::default());
        assert!(set.covers([OperationKind::Mix, OperationKind::Detect]));
        assert!(!set.covers([OperationKind::Heat]));
    }

    #[test]
    fn allocation_display_matches_paper_format() {
        assert_eq!(Allocation::new(8, 0, 0, 2).to_string(), "(8,0,0,2)");
    }

    #[test]
    fn component_set_iteration_orders_by_id() {
        let set = Allocation::new(1, 1, 1, 1).instantiate(&ComponentLibrary::default());
        let ids: Vec<_> = set.ids().collect();
        assert_eq!(ids.len(), 4);
        for (i, c) in set.iter().enumerate() {
            assert_eq!(c.id().index(), i);
        }
        assert_eq!(set.component(ids[0]).to_string(), "c0:mixer");
    }
}
