//! Stable structural content hashing for the stage-result cache.
//!
//! The batch-synthesis layer (`mfb-core`'s stage cache and the `mfb-batch`
//! executor) keys cached schedules, placements and routings by the *content*
//! of their inputs: two structurally identical assay DAGs must hash equal no
//! matter how they were built, and any observable difference — an edge, a
//! duration tick, a defect cell — must change the hash. This module provides
//! that hash:
//!
//! * [`StableHasher`] — FNV-1a 64-bit, byte-order independent of the host,
//!   with explicit `write_*` methods (floats are hashed by IEEE-754 bit
//!   pattern, so `-0.0 != 0.0` but every deterministic computation hashes
//!   deterministically);
//! * [`ContentHash`] — the resulting 64-bit digest, displayed as 16 hex
//!   digits;
//! * [`content_hash`] — hash any `Serialize` type through its canonical
//!   JSON encoding, the same encoding the golden byte-identity tests
//!   compare, so "hash equal" and "serializes equal" coincide;
//! * [`wash_fingerprint`] — a behavioral fingerprint for the non-serializable
//!   `dyn WashModel`: the model sampled at every diffusion coefficient the
//!   assay can present plus the paper's canonical anchors.
//!
//! Stability scope: hashes are stable across runs, thread counts and
//! platforms for one build of the workspace. They are **not** a persistent
//! on-disk format — a change to a type's serde encoding legitimately
//! invalidates every cache entry keyed on it, which is exactly what a
//! content-addressed cache wants.

use crate::fluid::DiffusionCoefficient;
use crate::graph::SequencingGraph;
use crate::wash::WashModel;
use serde::Serialize;
use std::fmt;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit stable content digest. See the [module docs](self) for the
/// stability contract.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct ContentHash(u64);

impl ContentHash {
    /// The digest as a raw 64-bit value (cache-map key form).
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuilds a digest from its raw value.
    #[inline]
    pub const fn from_u64(raw: u64) -> Self {
        ContentHash(raw)
    }

    /// The digest as 16 lowercase hex digits (report / manifest form).
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

impl fmt::Display for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// An explicit FNV-1a 64-bit hasher.
///
/// Deliberately *not* `std::hash::Hasher`: the standard trait's `write`
/// calls are allowed to differ between std versions (and `HashMap`'s
/// `RandomState` is seeded per process), neither of which a content
/// address can tolerate. Every input goes through a typed `write_*`
/// method with a fixed little-endian byte encoding.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    #[inline]
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    #[inline]
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` (little-endian).
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `u32` (little-endian).
    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs an `f64` by IEEE-754 bit pattern.
    #[inline]
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a string, length-prefixed so `("ab","c")` and `("a","bc")`
    /// hash differently.
    #[inline]
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Absorbs a bool.
    #[inline]
    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[u8::from(v)]);
    }

    /// Absorbs another digest.
    #[inline]
    pub fn write_hash(&mut self, h: ContentHash) {
        self.write_u64(h.as_u64());
    }

    /// The final digest.
    #[inline]
    pub fn finish(&self) -> ContentHash {
        ContentHash(self.state)
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

/// Hashes any serializable value through its canonical JSON encoding.
///
/// This ties the cache key directly to the representation the golden
/// byte-identity tests compare: if two values `content_hash` equal they
/// serialize identically (up to 64-bit collision), and any field change
/// that shows up in JSON shows up in the key.
///
/// # Panics
///
/// Panics if the value fails to serialize — every cached stage type in this
/// workspace serializes infallibly, so a failure is a bug, not an input
/// condition.
pub fn content_hash<T: Serialize + ?Sized>(value: &T) -> ContentHash {
    let json = serde_json::to_string(value).expect("content-hashed types serialize infallibly");
    let mut h = StableHasher::new();
    h.write_str(&json);
    h.finish()
}

/// Fingerprints a wash model by its observable behavior on `graph`.
///
/// `dyn WashModel` cannot be serialized, but the synthesis pipeline only
/// ever consults it through [`WashModel::wash_time`], and only at the
/// diffusion coefficients of fluids the assay actually produces. Sampling
/// the model at every distinct `output_diffusion` in the graph — plus the
/// paper's three canonical anchors, so models that differ away from this
/// particular assay still tend to fingerprint apart — captures everything
/// the pipeline can observe. Two models with equal fingerprints over a
/// graph are interchangeable *for that graph*, which is exactly the
/// equivalence a per-run stage cache needs.
pub fn wash_fingerprint(wash: &dyn WashModel, graph: &SequencingGraph) -> ContentHash {
    let mut h = StableHasher::new();
    h.write_str("wash-fingerprint-v1");
    for anchor in [
        DiffusionCoefficient::SMALL_MOLECULE,
        DiffusionCoefficient::PROTEIN,
        DiffusionCoefficient::VIRUS,
    ] {
        h.write_f64(anchor.cm2_per_s());
        h.write_u64(wash.wash_time(anchor).as_ticks());
    }
    // Ops iterate in OpId order, so the sample sequence is stable; repeated
    // coefficients are harmless (same bytes for the same inputs).
    for op in graph.ops() {
        let d = op.output_diffusion();
        h.write_f64(d.cm2_per_s());
        h.write_u64(wash.wash_time(d).as_ticks());
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operation::OperationKind;
    use crate::time::Duration;
    use crate::wash::{LogLinearWash, TableWash};

    fn graph_with(durations: &[u64]) -> SequencingGraph {
        let mut b = SequencingGraph::builder();
        let mut prev = None;
        for &secs in durations {
            let op = b.operation(
                OperationKind::Mix,
                Duration::from_secs(secs),
                DiffusionCoefficient::PROTEIN,
            );
            if let Some(p) = prev {
                b.edge(p, op).unwrap();
            }
            prev = Some(op);
        }
        b.build().unwrap()
    }

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a 64 test vectors.
        let mut h = StableHasher::new();
        h.write_bytes(b"");
        assert_eq!(h.finish().as_u64(), 0xcbf2_9ce4_8422_2325);
        let mut h = StableHasher::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish().as_u64(), 0xaf63_dc4c_8601_ec8c);
        let mut h = StableHasher::new();
        h.write_bytes(b"foobar");
        assert_eq!(h.finish().as_u64(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn structural_equality_hashes_equal() {
        // Two separately built but structurally identical graphs.
        assert_eq!(
            content_hash(&graph_with(&[5, 4, 3])),
            content_hash(&graph_with(&[5, 4, 3]))
        );
        // Any observable difference changes the hash.
        assert_ne!(
            content_hash(&graph_with(&[5, 4, 3])),
            content_hash(&graph_with(&[5, 4, 2]))
        );
    }

    #[test]
    fn str_hash_is_length_prefixed() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_form_is_16_digits() {
        let h = ContentHash::from_u64(0xabc);
        assert_eq!(h.to_hex(), "0000000000000abc");
        assert_eq!(h.to_string(), h.to_hex());
        assert_eq!(ContentHash::from_u64(h.as_u64()), h);
    }

    #[test]
    fn wash_fingerprint_separates_models() {
        let g = graph_with(&[5, 3]);
        let a = wash_fingerprint(&LogLinearWash::paper_calibrated(), &g);
        let b = wash_fingerprint(&LogLinearWash::paper_calibrated(), &g);
        assert_eq!(a, b, "identical models fingerprint identically");
        let table = TableWash::new(
            vec![(DiffusionCoefficient::SMALL_MOLECULE, Duration::from_secs(9))],
            Duration::from_secs(9),
        );
        assert_ne!(
            a,
            wash_fingerprint(&table, &g),
            "behaviorally different models fingerprint apart"
        );
    }
}
