//! Property-based tests for the core model invariants.

use mfb_model::prelude::*;
use proptest::prelude::*;

fn arb_duration() -> impl Strategy<Value = Duration> {
    (0u64..100_000).prop_map(Duration::from_ticks)
}

fn arb_instant() -> impl Strategy<Value = Instant> {
    (0u64..100_000).prop_map(Instant::from_ticks)
}

fn arb_diffusion() -> impl Strategy<Value = DiffusionCoefficient> {
    // Log-uniform across the biologically plausible range.
    (-9.0f64..-4.0).prop_map(|e| DiffusionCoefficient::new(10f64.powf(e)).unwrap())
}

proptest! {
    #[test]
    fn duration_add_commutes(a in arb_duration(), b in arb_duration()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn duration_sub_inverts_add(a in arb_duration(), b in arb_duration()) {
        prop_assert_eq!((a + b) - b, a);
    }

    #[test]
    fn duration_secs_roundtrip(a in arb_duration()) {
        prop_assert_eq!(Duration::from_secs_f64(a.as_secs_f64()), a);
    }

    #[test]
    fn instant_duration_since_inverts_add(t in arb_instant(), d in arb_duration()) {
        prop_assert_eq!((t + d).duration_since(t), d);
    }

    #[test]
    fn interval_overlap_is_symmetric(
        s1 in arb_instant(), l1 in arb_duration(),
        s2 in arb_instant(), l2 in arb_duration(),
    ) {
        let a = Interval::new(s1, s1 + l1);
        let b = Interval::new(s2, s2 + l2);
        prop_assert_eq!(a.overlaps(b), b.overlaps(a));
    }

    #[test]
    fn interval_hull_covers_both(
        s1 in arb_instant(), l1 in arb_duration(),
        s2 in arb_instant(), l2 in arb_duration(),
    ) {
        let a = Interval::new(s1, s1 + l1);
        let b = Interval::new(s2, s2 + l2);
        let h = a.hull(b);
        prop_assert!(h.start <= a.start && h.start <= b.start);
        prop_assert!(h.end >= a.end && h.end >= b.end);
    }

    #[test]
    fn nonoverlap_means_ordered(
        s1 in arb_instant(), l1 in (1u64..1000).prop_map(Duration::from_ticks),
        s2 in arb_instant(), l2 in (1u64..1000).prop_map(Duration::from_ticks),
    ) {
        let a = Interval::new(s1, s1 + l1);
        let b = Interval::new(s2, s2 + l2);
        if !a.overlaps(b) {
            prop_assert!(a.end <= b.start || b.end <= a.start);
        }
    }

    #[test]
    fn wash_model_is_monotone(d1 in arb_diffusion(), d2 in arb_diffusion()) {
        let m = LogLinearWash::paper_calibrated();
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        // Slower diffusion (smaller coefficient) never washes faster.
        prop_assert!(m.wash_time(lo) >= m.wash_time(hi));
    }

    #[test]
    fn wash_time_is_bounded(d in arb_diffusion()) {
        let m = LogLinearWash::paper_calibrated();
        let w = m.wash_time(d);
        prop_assert!(w <= Duration::from_secs(10));
    }

    #[test]
    fn manhattan_is_a_metric(
        x1 in 0u32..100, y1 in 0u32..100,
        x2 in 0u32..100, y2 in 0u32..100,
        x3 in 0u32..100, y3 in 0u32..100,
    ) {
        let a = CellPos::new(x1, y1);
        let b = CellPos::new(x2, y2);
        let c = CellPos::new(x3, y3);
        prop_assert_eq!(a.manhattan(b), b.manhattan(a));
        prop_assert_eq!(a.manhattan(a), 0);
        prop_assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
    }

    #[test]
    fn rect_intersects_iff_shares_cell(
        x1 in 0u32..12, y1 in 0u32..12, w1 in 1u32..5, h1 in 1u32..5,
        x2 in 0u32..12, y2 in 0u32..12, w2 in 1u32..5, h2 in 1u32..5,
    ) {
        let a = CellRect::new(CellPos::new(x1, y1), w1, h1);
        let b = CellRect::new(CellPos::new(x2, y2), w2, h2);
        let shares = a.cells().any(|c| b.contains(c));
        prop_assert_eq!(a.intersects(b), shares);
    }

    #[test]
    fn random_dag_builds_and_topo_is_consistent(
        n in 1usize..40,
        extra_edges in proptest::collection::vec((0usize..40, 0usize..40), 0..80),
    ) {
        let mut b = SequencingGraph::builder();
        let d = DiffusionCoefficient::PROTEIN;
        let ids: Vec<OpId> = (0..n)
            .map(|_| b.operation(OperationKind::Mix, Duration::from_secs(1), d))
            .collect();
        // Only forward edges (i < j) are inserted, so the graph is acyclic
        // by construction and build() must succeed.
        for (i, j) in extra_edges {
            if i < j && j < n {
                let _ = b.edge(ids[i], ids[j]); // duplicates rejected, fine
            }
        }
        let g = b.build().unwrap();
        let mut pos = vec![0usize; g.len()];
        for (k, &o) in g.topological_order().iter().enumerate() {
            pos[o.index()] = k;
        }
        for (p, c) in g.edges() {
            prop_assert!(pos[p.index()] < pos[c.index()]);
        }
        // Priority of any parent strictly exceeds each child's priority.
        let prio = g.priority_values(Duration::from_secs(2));
        for (p, c) in g.edges() {
            prop_assert!(prio[p.index()] > prio[c.index()]);
        }
    }
}
