//! Property-based tests for the `.assay` DSL: arbitrary graphs survive a
//! write→parse round trip, generated ASTs survive parse→print→parse with
//! an idempotent printer, and the parser never panics on garbage.

use mfb_model::prelude::*;
use mfb_model::text::{DefectDecl, EdgeDecl, FluidSpec, OpDecl, DSL_VERSION};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = OperationKind> {
    prop_oneof![
        Just(OperationKind::Mix),
        Just(OperationKind::Heat),
        Just(OperationKind::Filter),
        Just(OperationKind::Detect),
    ]
}

fn arb_fluid() -> impl Strategy<Value = FluidSpec> {
    prop_oneof![
        // Wash times on the tick lattice, within the calibrated clamp.
        (0u64..=100).prop_map(|t| FluidSpec::Wash(Duration::from_ticks(t))),
        (-9.0f64..-4.0).prop_map(|e| {
            FluidSpec::Diffusion(DiffusionCoefficient::new(10f64.powf(e)).unwrap())
        }),
    ]
}

fn arb_flow() -> impl Strategy<Value = FlowDecl> {
    (
        proptest::option::of(prop_oneof![Just(FlowKind::Dcsa), Just(FlowKind::Baseline)]),
        proptest::option::of(1u64..100),
        proptest::option::of(proptest::prelude::any::<u64>()),
    )
        .prop_map(|(kind, t_c, seed)| FlowDecl {
            kind,
            t_c: t_c.map(Duration::from_ticks),
            seed,
        })
}

fn arb_defects() -> impl Strategy<Value = Vec<DefectDecl>> {
    proptest::collection::vec(
        prop_oneof![
            (0u32..30, 0u32..30).prop_map(|(x, y)| DefectDecl::Block {
                x,
                y,
                span: Span::default()
            }),
            (0u32..8).prop_map(|component| DefectDecl::Dead {
                component,
                span: Span::default()
            }),
            (0u32..30, 0u32..30, 1u32..9).prop_map(|(x, y, extra_weight)| DefectDecl::Slow {
                x,
                y,
                extra_weight,
                span: Span::default()
            }),
        ],
        0..6,
    )
}

/// A structurally valid AST: unique op names, forward-only deduplicated
/// edges, everything else drawn freely from the grammar.
fn arb_ast() -> impl Strategy<Value = AssayAst> {
    (
        proptest::collection::vec((arb_kind(), 1u64..300, arb_fluid()), 1..16),
        proptest::collection::vec((0usize..16, 0usize..16), 0..24),
        arb_flow(),
        arb_defects(),
        proptest::option::of(
            (1u32..5, 0u32..4, 0u32..4, 0u32..4)
                .prop_map(|(m, h, f, d)| Allocation::new(m, h, f, d)),
        ),
        "[a-z][a-z0-9_.-]{0,10}",
    )
        .prop_map(|(ops, raw_edges, flow, defects, allocation, name)| {
            let n = ops.len();
            let ops: Vec<OpDecl> = ops
                .into_iter()
                .enumerate()
                .map(|(i, (kind, ticks, fluid))| OpDecl {
                    name: format!("op{i}"),
                    kind,
                    duration: Duration::from_ticks(ticks),
                    fluid,
                    span: Span::default(),
                })
                .collect();
            let mut seen = std::collections::HashSet::new();
            let edges: Vec<EdgeDecl> = raw_edges
                .into_iter()
                .filter(|&(i, j)| i < j && j < n && seen.insert((i, j)))
                .map(|(i, j)| EdgeDecl {
                    chain: vec![format!("op{i}"), format!("op{j}")],
                    span: Span::default(),
                })
                .collect();
            AssayAst {
                version: DSL_VERSION,
                name,
                ops,
                edges,
                flow,
                defects,
                allocation,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole round-trip property: print a generated AST, parse it
    /// back, and the statements (modulo spans), the lowered graph, flow
    /// constraints and defect map all survive — and printing the reparsed
    /// AST reproduces the text byte for byte (canonical form is a fixed
    /// point).
    #[test]
    fn parse_print_parse_roundtrip(ast in arb_ast()) {
        let printed = mfb_model::text::write_assay_ast(&ast);
        let reparsed = parse_assay_ast(&printed)
            .unwrap_or_else(|e| panic!("{e}\n---\n{printed}"));
        prop_assert_eq!(&reparsed.name, &ast.name);
        prop_assert_eq!(reparsed.ops.len(), ast.ops.len());
        for (a, b) in ast.ops.iter().zip(&reparsed.ops) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.kind, b.kind);
            prop_assert_eq!(a.duration, b.duration);
            prop_assert_eq!(a.fluid, b.fluid);
        }
        prop_assert_eq!(
            ast.edges.iter().map(|e| e.chain.clone()).collect::<Vec<_>>(),
            reparsed.edges.iter().map(|e| e.chain.clone()).collect::<Vec<_>>()
        );
        prop_assert_eq!(ast.flow, reparsed.flow);
        prop_assert_eq!(ast.allocation, reparsed.allocation);

        let lowered = ast.lower().unwrap();
        let relowered = reparsed.lower().unwrap();
        prop_assert_eq!(&lowered, &relowered);

        // Printing is idempotent: format-of-format is a no-op.
        prop_assert_eq!(mfb_model::text::write_assay_ast(&reparsed), printed);
    }

    #[test]
    fn write_parse_roundtrip(
        kinds in proptest::collection::vec(arb_kind(), 1..20),
        durations in proptest::collection::vec(1u64..30, 1..20),
        exponents in proptest::collection::vec(-9.0f64..-4.0, 1..20),
        edges in proptest::collection::vec((0usize..20, 0usize..20), 0..30),
        alloc in proptest::option::of(
            (1u32..5, 0u32..4, 0u32..4, 0u32..4)
                .prop_map(|(m, h, f, d)| Allocation::new(m, h, f, d))
        ),
    ) {
        let n = kinds.len().min(durations.len()).min(exponents.len());
        prop_assume!(n > 0);
        let mut b = SequencingGraph::builder();
        b.name("roundtrip");
        let ids: Vec<OpId> = (0..n)
            .map(|i| {
                b.operation(
                    kinds[i],
                    Duration::from_secs(durations[i]),
                    DiffusionCoefficient::new(10f64.powf(exponents[i])).unwrap(),
                )
            })
            .collect();
        for (i, j) in edges {
            if i < j && j < n {
                let _ = b.edge(ids[i], ids[j]);
            }
        }
        let g = b.build().unwrap();

        let text = write_assay(&g, alloc);
        let parsed = parse_assay(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));

        prop_assert_eq!(parsed.graph.len(), g.len());
        prop_assert_eq!(parsed.graph.edge_count(), g.edge_count());
        prop_assert_eq!(parsed.allocation, alloc);
        prop_assert_eq!(parsed.graph.name(), g.name());
        for (x, y) in g.ops().zip(parsed.graph.ops()) {
            prop_assert_eq!(x.kind(), y.kind());
            prop_assert_eq!(x.duration(), y.duration());
            let dx = x.output_diffusion().cm2_per_s();
            let dy = y.output_diffusion().cm2_per_s();
            prop_assert!(((dx - dy) / dx).abs() < 1e-9, "{} vs {}", dx, dy);
        }
        // Topology preserved edge by edge.
        let e1: Vec<_> = g.edges().collect();
        let e2: Vec<_> = parsed.graph.edges().collect();
        prop_assert_eq!(e1, e2);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_text(text in "\\PC{0,200}") {
        // Errors are fine; panics are not. Every error must carry a
        // 1-based position.
        if let Err(e) = parse_assay(&text) {
            prop_assert!(e.line() >= 1);
            prop_assert!(e.column() >= 1);
        }
    }

    #[test]
    fn parser_never_panics_on_structured_garbage(
        lines in proptest::collection::vec(
            prop_oneof![
                Just("op a mix 5s wash=1s".to_string()),
                Just("edge a -> b".to_string()),
                Just("alloc 1 2 3 4".to_string()),
                Just("assay \"x\"".to_string()),
                Just("assay-dsl 1".to_string()),
                Just("flow dcsa t_c=2s seed=7".to_string()),
                Just("defect block 1 2".to_string()),
                Just("defect slow 3 4 5".to_string()),
                "\\PC{0,40}",
            ],
            0..20
        )
    ) {
        let _ = parse_assay(&lines.join("\n"));
    }
}
