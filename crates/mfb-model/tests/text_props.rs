//! Property-based tests for the `.assay` text format: arbitrary graphs
//! survive a write→parse round trip.

use mfb_model::prelude::*;
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = OperationKind> {
    prop_oneof![
        Just(OperationKind::Mix),
        Just(OperationKind::Heat),
        Just(OperationKind::Filter),
        Just(OperationKind::Detect),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn write_parse_roundtrip(
        kinds in proptest::collection::vec(arb_kind(), 1..20),
        durations in proptest::collection::vec(1u64..30, 1..20),
        exponents in proptest::collection::vec(-9.0f64..-4.0, 1..20),
        edges in proptest::collection::vec((0usize..20, 0usize..20), 0..30),
        alloc in proptest::option::of(
            (1u32..5, 0u32..4, 0u32..4, 0u32..4)
                .prop_map(|(m, h, f, d)| Allocation::new(m, h, f, d))
        ),
    ) {
        let n = kinds.len().min(durations.len()).min(exponents.len());
        prop_assume!(n > 0);
        let mut b = SequencingGraph::builder();
        b.name("roundtrip");
        let ids: Vec<OpId> = (0..n)
            .map(|i| {
                b.operation(
                    kinds[i],
                    Duration::from_secs(durations[i]),
                    DiffusionCoefficient::new(10f64.powf(exponents[i])).unwrap(),
                )
            })
            .collect();
        for (i, j) in edges {
            if i < j && j < n {
                let _ = b.edge(ids[i], ids[j]);
            }
        }
        let g = b.build().unwrap();

        let text = write_assay(&g, alloc);
        let parsed = parse_assay(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));

        prop_assert_eq!(parsed.graph.len(), g.len());
        prop_assert_eq!(parsed.graph.edge_count(), g.edge_count());
        prop_assert_eq!(parsed.allocation, alloc);
        prop_assert_eq!(parsed.graph.name(), g.name());
        for (x, y) in g.ops().zip(parsed.graph.ops()) {
            prop_assert_eq!(x.kind(), y.kind());
            prop_assert_eq!(x.duration(), y.duration());
            let dx = x.output_diffusion().cm2_per_s();
            let dy = y.output_diffusion().cm2_per_s();
            prop_assert!(((dx - dy) / dx).abs() < 1e-9, "{} vs {}", dx, dy);
        }
        // Topology preserved edge by edge.
        let e1: Vec<_> = g.edges().collect();
        let e2: Vec<_> = parsed.graph.edges().collect();
        prop_assert_eq!(e1, e2);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_text(text in "\\PC{0,200}") {
        // Errors are fine; panics are not.
        let _ = parse_assay(&text);
    }

    #[test]
    fn parser_never_panics_on_structured_garbage(
        lines in proptest::collection::vec(
            prop_oneof![
                Just("op a mix 5s wash=1s".to_string()),
                Just("edge a -> b".to_string()),
                Just("alloc 1 2 3 4".to_string()),
                Just("assay \"x\"".to_string()),
                "\\PC{0,40}",
            ],
            0..20
        )
    ) {
        let _ = parse_assay(&lines.join("\n"));
    }
}
