//! Golden-equivalence suite: the incremental move/undo annealer must be
//! bitwise identical to the frozen pre-optimization reference
//! (`mfb_place::reference`) for every Table-I benchmark and several seeds.
//!
//! Equality of `Placement` (every rectangle, via `PartialEq`) is exactly
//! "byte-identical placement": a single diverging accept/reject decision
//! anywhere in the ~16 k-proposal run would cascade into different rects.

use mfb_bench_suite::table1_benchmarks;
use mfb_model::prelude::*;
use mfb_place::prelude::*;
use mfb_place::reference::{place_sa_reference, place_sa_reference_with_defects};
use mfb_sched::list::{schedule, SchedulerConfig};

const SEEDS: [u64; 3] = [0xD1CE, 7, 0xBEEF_CAFE];

fn netlist_for(b: &mfb_bench_suite::Benchmark) -> (ComponentSet, NetList) {
    let lib = ComponentLibrary::default();
    let comps = b.components(&lib);
    let wash = LogLinearWash::paper_calibrated();
    let s = schedule(&b.graph, &comps, &wash, &SchedulerConfig::paper_dcsa()).unwrap();
    let nets = NetList::build(&s, &b.graph, &wash, 0.6, 0.4);
    (comps, nets)
}

#[test]
fn optimized_sa_matches_reference_on_all_table1_benchmarks() {
    for b in table1_benchmarks() {
        let (comps, nets) = netlist_for(&b);
        let grid = auto_grid(&comps);
        for seed in SEEDS {
            let cfg = SaConfig::paper().with_seed(seed);
            let fast = place_sa(&comps, &nets, grid, &cfg).unwrap();
            let slow = place_sa_reference(&comps, &nets, grid, &cfg).unwrap();
            assert_eq!(fast, slow, "{} diverged at seed {seed:#x}", b.name);
        }
    }
}

#[test]
fn optimized_sa_matches_reference_with_spacing_off() {
    // The plain Eq. (3) energy exercises the no-pair-terms path.
    for b in table1_benchmarks().into_iter().take(3) {
        let (comps, nets) = netlist_for(&b);
        let grid = auto_grid(&comps);
        let mut cfg = SaConfig::paper().with_seed(41);
        cfg.spacing = SpacingParams::off();
        let fast = place_sa(&comps, &nets, grid, &cfg).unwrap();
        let slow = place_sa_reference(&comps, &nets, grid, &cfg).unwrap();
        assert_eq!(fast, slow, "{} diverged with spacing off", b.name);
    }
}

#[test]
fn optimized_sa_matches_reference_under_defects() {
    let b = table1_benchmarks().swap_remove(2); // CPA: 10 components
    let (comps, nets) = netlist_for(&b);
    let grid = auto_grid(&comps);
    let mut defects = DefectMap::pristine();
    for i in 0..grid.width.min(grid.height) / 2 {
        defects.block_cell(CellPos::new(2 * i, i));
    }
    defects.kill_component(ComponentId::new(1));
    for seed in SEEDS {
        let cfg = SaConfig::paper().with_seed(seed);
        let fast = place_sa_with_defects(&comps, &nets, grid, &cfg, &defects).unwrap();
        let slow = place_sa_reference_with_defects(&comps, &nets, grid, &cfg, &defects).unwrap();
        assert_eq!(fast, slow, "defect run diverged at seed {seed:#x}");
    }
}

#[test]
fn stats_account_for_every_proposal() {
    let b = table1_benchmarks().swap_remove(6); // Synthetic4, the largest
    let (comps, nets) = netlist_for(&b);
    let grid = auto_grid(&comps);
    let cfg = SaConfig::paper();
    let (p, stats) = place_sa_with_stats(&comps, &nets, grid, &cfg).unwrap();
    assert!(p.is_legal());
    // I_max proposals per temperature step, T_0 → T_min at factor α.
    let steps = {
        let mut t = cfg.t0;
        let mut n = 0u64;
        while t > cfg.t_min {
            n += 1;
            t *= cfg.alpha;
        }
        n
    };
    assert_eq!(stats.proposals, steps * u64::from(cfg.i_max));
    assert!(stats.accepted <= stats.evaluated);
    assert!(stats.evaluated <= stats.proposals);
    assert!(stats.evaluated > 0);
}
