//! Property-based tests for the placers.

use mfb_model::prelude::*;
use mfb_place::prelude::*;
use mfb_sched::prelude::*;
use proptest::prelude::*;

fn arb_alloc() -> impl Strategy<Value = Allocation> {
    (1u32..4, 0u32..3, 0u32..3, 0u32..3).prop_map(|(m, h, f, d)| Allocation::new(m, h, f, d))
}

/// A random schedule-derived netlist over the allocation's components.
fn netlist_for(alloc: Allocation, seed: u64) -> (ComponentSet, NetList) {
    let comps = alloc.instantiate(&ComponentLibrary::default());
    let g = mfb_bench_suite::synth::SyntheticSpec::new(12, seed).generate();
    let wash = LogLinearWash::paper_calibrated();
    // The synthetic graph may use kinds the allocation lacks; fall back to
    // a mixes-only graph in that case.
    let g = if comps.covers(g.ops().map(|o| o.kind())) {
        g
    } else {
        mfb_bench_suite::synth::SyntheticSpec::new(12, seed)
            .kind_weights([1, 0, 0, 0])
            .generate()
    };
    let s = schedule(&g, &comps, &wash, &SchedulerConfig::paper_dcsa()).unwrap();
    let nets = NetList::build(&s, &g, &wash, 0.6, 0.4);
    (comps, nets)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_three_placers_produce_legal_placements(
        alloc in arb_alloc(),
        seed in any::<u64>(),
    ) {
        let (comps, nets) = netlist_for(alloc, seed);
        let grid = auto_grid(&comps);

        let sa = place_sa(&comps, &nets, grid, &SaConfig::paper()).unwrap();
        prop_assert!(sa.is_legal(), "SA illegal: {:?}", sa.legality_violation());

        let con = place_constructive(&comps, &nets, grid).unwrap();
        prop_assert!(con.is_legal(), "constructive illegal");

        let fd = place_force_directed(&comps, &nets, grid).unwrap();
        prop_assert!(fd.is_legal(), "force-directed illegal");
    }

    #[test]
    fn ports_are_always_routable_positions(
        alloc in arb_alloc(),
        seed in any::<u64>(),
    ) {
        let (comps, nets) = netlist_for(alloc, seed);
        let p = place_sa(&comps, &nets, auto_grid(&comps), &SaConfig::paper()).unwrap();
        for c in comps.ids() {
            let port = p.port(c);
            prop_assert!(p.grid().contains(port));
            prop_assert!(!p.rect(c).contains(port), "port inside own rect");
            // The port must not be inside any other component either.
            for other in comps.ids() {
                prop_assert!(!p.rect(other).contains(port));
            }
        }
    }

    #[test]
    fn rect_gap_is_symmetric_and_zero_iff_touching(
        x1 in 0u32..20, y1 in 0u32..20, w1 in 1u32..5, h1 in 1u32..5,
        x2 in 0u32..20, y2 in 0u32..20, w2 in 1u32..5, h2 in 1u32..5,
    ) {
        let a = CellRect::new(CellPos::new(x1, y1), w1, h1);
        let b = CellRect::new(CellPos::new(x2, y2), w2, h2);
        prop_assert_eq!(rect_gap(a, b), rect_gap(b, a));
        if a.intersects(b) {
            prop_assert_eq!(rect_gap(a, b), 0);
        }
        // Gap 0 means the 1-inflated rects intersect (adjacent or closer).
        if rect_gap(a, b) == 0 {
            prop_assert!(a.inflated(1).intersects(b) || a.intersects(b));
        }
    }

    #[test]
    fn spacing_penalty_is_monotone_in_weight(
        alloc in arb_alloc(),
        seed in any::<u64>(),
    ) {
        let (comps, nets) = netlist_for(alloc, seed);
        let p = place_sa(&comps, &nets, auto_grid(&comps), &SaConfig::paper()).unwrap();
        let none = energy_with_spacing(&p, &nets, SpacingParams::off());
        let some = energy_with_spacing(
            &p,
            &nets,
            SpacingParams { min_gap: 6, weight: 5.0 },
        );
        prop_assert!((none - energy(&p, &nets)).abs() < 1e-9);
        prop_assert!(some >= none);
    }

    #[test]
    fn energy_is_translation_insensitive_for_rigid_shifts(
        alloc in arb_alloc(),
        seed in any::<u64>(),
        dx in 0u32..3, dy in 0u32..3,
    ) {
        // Shifting the entire placement rigidly must not change Eq. (3).
        let (comps, nets) = netlist_for(alloc, seed);
        let grid = GridSpec::square(auto_grid(&comps).width + 4);
        let p = place_sa(&comps, &nets, auto_grid(&comps), &SaConfig::paper()).unwrap();
        // Ports flip sides at the grid boundary; keep everything interior
        // so the rigid shift preserves port geometry.
        prop_assume!(p.rects().iter().all(|r| r.origin.y >= 1));
        let shifted = Placement::new(
            grid,
            p.rects()
                .iter()
                .map(|r| CellRect::new(CellPos::new(r.origin.x + dx, r.origin.y + dy), r.width, r.height))
                .collect(),
        );
        // Keep the same grid dims relationship: both must be legal.
        prop_assume!(shifted.is_legal());
        let e1 = {
            let moved = Placement::new(grid, p.rects().to_vec());
            energy(&moved, &nets)
        };
        let e2 = energy(&shifted, &nets);
        prop_assert!((e1 - e2).abs() < 1e-9, "{e1} vs {e2}");
    }
}
