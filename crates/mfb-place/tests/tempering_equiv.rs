//! Golden-equivalence suite for the parallel-tempering annealer.
//!
//! Pins three properties:
//!
//! 1. the multi-chain optimized loop (`place_sa_tempered_budgeted`) is
//!    bitwise identical to the serial clone-per-proposal
//!    [`mfb_place::reference::place_sa_tempered_reference`] — so the
//!    `mfb bench` multi-thread row times a pure hot-path/parallelism
//!    speedup, not an algorithm change;
//! 2. `chains == 1` is exactly the plain single-chain annealer;
//! 3. the tempered result is byte-identical across `MFB_THREADS` values
//!    (the whole point of the super-round + schedule-positioned-exchange
//!    design).
//!
//! The thread-count check lives in a single `#[test]` because
//! `MFB_THREADS` is process-global state.

use mfb_bench_suite::table1_benchmarks;
use mfb_model::prelude::*;
use mfb_place::prelude::*;
use mfb_place::reference::place_sa_tempered_reference;
use mfb_sched::list::{schedule, SchedulerConfig};

const SEEDS: [u64; 2] = [0xD1CE, 0xBEEF_CAFE];

fn netlist_for(b: &mfb_bench_suite::Benchmark) -> (ComponentSet, NetList) {
    let lib = ComponentLibrary::default();
    let comps = b.components(&lib);
    let wash = LogLinearWash::paper_calibrated();
    let s = schedule(&b.graph, &comps, &wash, &SchedulerConfig::paper_dcsa()).unwrap();
    let nets = NetList::build(&s, &b.graph, &wash, 0.6, 0.4);
    (comps, nets)
}

#[test]
fn tempered_matches_reference_on_table1_benchmarks() {
    // PCR (smallest), CPA (most components), Synthetic4 (flagship).
    for b in [0usize, 2, 6].map(|i| table1_benchmarks().swap_remove(i)) {
        let (comps, nets) = netlist_for(&b);
        let grid = auto_grid(&comps);
        for seed in SEEDS {
            for chains in [2u32, 4] {
                let cfg = SaConfig::paper().with_seed(seed).with_chains(chains);
                let fast =
                    place_sa_tempered(&comps, &nets, grid, &cfg, &DefectMap::pristine()).unwrap();
                let slow =
                    place_sa_tempered_reference(&comps, &nets, grid, &cfg, &DefectMap::pristine())
                        .unwrap();
                assert_eq!(
                    fast, slow,
                    "{} diverged at seed {seed:#x}, {chains} chains",
                    b.name
                );
            }
        }
    }
}

#[test]
fn one_chain_is_the_plain_annealer() {
    let b = table1_benchmarks().swap_remove(3); // Synthetic1
    let (comps, nets) = netlist_for(&b);
    let grid = auto_grid(&comps);
    let cfg = SaConfig::paper();
    assert_eq!(cfg.chains, 1);
    let tempered = place_sa_tempered(&comps, &nets, grid, &cfg, &DefectMap::pristine()).unwrap();
    let plain = place_sa(&comps, &nets, grid, &cfg).unwrap();
    assert_eq!(tempered, plain);
}

#[test]
fn tempered_under_defects_matches_reference() {
    let b = table1_benchmarks().swap_remove(2); // CPA
    let (comps, nets) = netlist_for(&b);
    let grid = auto_grid(&comps);
    let mut defects = DefectMap::pristine();
    for i in 0..grid.width.min(grid.height) / 2 {
        defects.block_cell(CellPos::new(2 * i, i));
    }
    let cfg = SaConfig::paper().with_chains(3);
    let fast = place_sa_tempered(&comps, &nets, grid, &cfg, &defects).unwrap();
    let slow = place_sa_tempered_reference(&comps, &nets, grid, &cfg, &defects).unwrap();
    assert_eq!(fast, slow);
}

/// One test, not several: `MFB_THREADS` is process-global, so the
/// comparisons must run on one thread of the harness.
#[test]
fn tempered_is_byte_identical_across_thread_counts() {
    let run = |threads: &str| {
        std::env::set_var("MFB_THREADS", threads);
        let b = table1_benchmarks().swap_remove(6); // Synthetic4
        let (comps, nets) = netlist_for(&b);
        let grid = auto_grid(&comps);
        let cfg = SaConfig::paper().with_chains(8);
        place_sa_tempered(&comps, &nets, grid, &cfg, &DefectMap::pristine()).unwrap()
    };
    let serial = run("1");
    let two = run("2");
    let eight = run("8");
    std::env::remove_var("MFB_THREADS");
    assert_eq!(serial, two, "MFB_THREADS=2 changed the tempered placement");
    assert_eq!(
        serial, eight,
        "MFB_THREADS=8 changed the tempered placement"
    );
}
