//! Component placement for DCSA-based biochips.
//!
//! Implements the placement half of the paper's **Algorithm 2**: simulated
//! annealing ([`sa`]) over component rectangles on the chip grid, guided by
//! the energy of Eq. (3) — Manhattan distance weighted by the *connection
//! priorities* of Eq. (4), which pull together components whose transports
//! run concurrently with many others or leave slow-washing residues. The
//! baseline's greedy constructive placer lives in [`baseline`].
//!
//! # Quick start
//!
//! ```
//! use mfb_model::prelude::*;
//! use mfb_sched::prelude::*;
//! use mfb_place::prelude::*;
//!
//! // Schedule a tiny assay, derive nets, place.
//! let mut b = SequencingGraph::builder();
//! let d = DiffusionCoefficient::PROTEIN;
//! let m = b.operation(OperationKind::Mix, Duration::from_secs(5), d);
//! let h = b.operation(OperationKind::Heat, Duration::from_secs(3), d);
//! b.edge(m, h).unwrap();
//! let g = b.build().unwrap();
//! let comps = Allocation::new(1, 1, 0, 0).instantiate(&ComponentLibrary::default());
//! let wash = LogLinearWash::paper_calibrated();
//! let sched = schedule(&g, &comps, &wash, &SchedulerConfig::paper_dcsa()).unwrap();
//!
//! let nets = NetList::build(&sched, &g, &wash, 0.6, 0.4);
//! let placement = place_sa_auto(&comps, &nets, &SaConfig::paper()).unwrap();
//! assert!(placement.is_legal());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod baseline;
pub mod error;
pub mod floorplan;
pub mod force;
pub mod nets;
pub mod reference;
pub mod sa;
pub mod tempering;

/// One-stop import of the placement API.
pub mod prelude {
    pub use crate::baseline::{
        place_constructive, place_constructive_spaced, place_constructive_with_defects,
    };
    pub use crate::error::PlaceError;
    pub use crate::floorplan::{
        auto_grid, rect_avoids_defects, rect_gap, Placement, PlacementViolation, CLEARANCE,
    };
    pub use crate::force::{place_force_directed, place_force_directed_with_defects};
    pub use crate::nets::{energy, energy_with_spacing, Net, NetList, SpacingParams};
    pub use crate::sa::{
        place_sa, place_sa_auto, place_sa_budgeted, place_sa_with_defects, place_sa_with_stats,
        place_sa_with_stats_and_defects, Move, SaConfig, SaStats,
    };
    pub use crate::tempering::{place_sa_tempered, place_sa_tempered_budgeted};
}
