//! Force-directed placement: a deterministic, annealing-free alternative.
//!
//! Classic Quinn/Breuer-style iteration adapted to the DCSA energy: each
//! component is repeatedly moved to the legal position closest to the
//! **priority-weighted centroid** of its net neighbours (the same
//! `cp(i, j)` weights that drive the SA energy of Eq. (3)), until no move
//! lowers the energy. Deterministic, no seed, usually within a few percent
//! of the annealer on these problem sizes — and a useful second opinion in
//! tests: if SA ever loses badly to this, the annealing schedule broke.

use crate::error::PlaceError;
use crate::floorplan::{
    packed_placement, packed_placement_avoiding, rect_avoids_defects, Placement,
};
use crate::nets::{energy, NetList};
use mfb_model::prelude::*;

/// Maximum sweeps over all components before giving up on convergence.
const MAX_SWEEPS: usize = 40;

/// Places `components` by iterated weighted-centroid moves (see module
/// docs).
///
/// # Errors
///
/// Returns [`PlaceError::GridTooSmall`] when the deterministic initial
/// packing does not fit.
pub fn place_force_directed(
    components: &ComponentSet,
    nets: &NetList,
    grid: GridSpec,
) -> Result<Placement, PlaceError> {
    place_force_directed_with_defects(components, nets, grid, &DefectMap::pristine())
}

/// [`place_force_directed`] on a damaged chip: the initial packing and
/// every centroid move avoid blocked cells, and dead components are pinned
/// where the packing put them. With a pristine map this is exactly the
/// plain force-directed placer.
///
/// # Errors
///
/// [`PlaceError::GridTooSmall`] when the initial packing does not fit;
/// [`PlaceError::DefectBlocked`] when only the defect map prevents it.
pub fn place_force_directed_with_defects(
    components: &ComponentSet,
    nets: &NetList,
    grid: GridSpec,
    defects: &DefectMap,
) -> Result<Placement, PlaceError> {
    let mut placement = if defects.is_pristine() {
        packed_placement(components, grid)?
    } else {
        packed_placement_avoiding(components, grid, defects)?
    };

    // Accumulated pull per component: (neighbour id, weight).
    let pulls: Vec<Vec<(ComponentId, f64)>> = {
        let mut p = vec![Vec::new(); components.len()];
        for n in nets.nets() {
            p[n.a.index()].push((n.b, n.priority.max(1e-6)));
            p[n.b.index()].push((n.a, n.priority.max(1e-6)));
        }
        p
    };

    let mut current = energy(&placement, nets);
    for _sweep in 0..MAX_SWEEPS {
        let mut moved = false;
        for c in components.ids() {
            if pulls[c.index()].is_empty() || defects.is_dead(c) {
                continue;
            }
            // Weighted centroid of neighbours' ports.
            let (mut sx, mut sy, mut sw) = (0.0f64, 0.0f64, 0.0f64);
            for &(nb, w) in &pulls[c.index()] {
                let p = placement.port(nb);
                sx += f64::from(p.x) * w;
                sy += f64::from(p.y) * w;
                sw += w;
            }
            let target = CellPos::new(
                (sx / sw).round().clamp(0.0, f64::from(grid.width - 1)) as u32,
                (sy / sw).round().clamp(0.0, f64::from(grid.height - 1)) as u32,
            );

            if let Some(rect) = nearest_legal(&placement, c, target, defects) {
                let old = placement.rect(c);
                if rect != old {
                    placement.set_rect(c, rect);
                    let candidate = energy(&placement, nets);
                    if candidate < current {
                        current = candidate;
                        moved = true;
                    } else {
                        placement.set_rect(c, old);
                    }
                }
            }
        }
        if !moved {
            break;
        }
    }
    debug_assert!(placement.is_legal());
    Ok(placement)
}

/// The legal rectangle for `c` whose centre is nearest `target`, found by
/// ring search outward from the target (bounded by the grid diameter).
fn nearest_legal(
    placement: &Placement,
    c: ComponentId,
    target: CellPos,
    defects: &DefectMap,
) -> Option<CellRect> {
    let grid = placement.grid();
    let r = placement.rect(c);
    let (w, h) = (r.width, r.height);
    let max_x = grid.width.checked_sub(w)?;
    let max_y = grid.height.checked_sub(h)?;
    // Desired origin so the rect centres on the target.
    let ox = target.x.saturating_sub(w / 2).min(max_x);
    let oy = target.y.saturating_sub(h / 2).min(max_y);

    let radius_cap = grid.width.max(grid.height);
    for radius in 0..=radius_cap {
        let mut best: Option<(u32, CellRect)> = None;
        let lo_x = ox.saturating_sub(radius);
        let hi_x = (ox + radius).min(max_x);
        let lo_y = oy.saturating_sub(radius);
        let hi_y = (oy + radius).min(max_y);
        for yy in lo_y..=hi_y {
            for xx in lo_x..=hi_x {
                // Only the ring at this radius; interior was covered.
                let on_ring = xx == lo_x || xx == hi_x || yy == lo_y || yy == hi_y;
                if radius > 0 && !on_ring {
                    continue;
                }
                let rect = CellRect::new(CellPos::new(xx, yy), w, h);
                if rect_avoids_defects(rect, defects) && placement.fits(c, rect) {
                    let d = rect.center().manhattan(target);
                    match best {
                        Some((bd, _)) if bd <= d => {}
                        _ => best = Some((d, rect)),
                    }
                }
            }
        }
        if best.is_some() {
            return best.map(|(_, rect)| rect);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::auto_grid;
    use mfb_sched::list::{schedule, SchedulerConfig};

    fn d() -> DiffusionCoefficient {
        DiffusionCoefficient::PROTEIN
    }

    fn workload() -> (ComponentSet, NetList, GridSpec) {
        let mut b = SequencingGraph::builder();
        let m0 = b.operation(OperationKind::Mix, Duration::from_secs(5), d());
        let m1 = b.operation(OperationKind::Mix, Duration::from_secs(5), d());
        let h = b.operation(OperationKind::Heat, Duration::from_secs(3), d());
        let f = b.operation(OperationKind::Filter, Duration::from_secs(3), d());
        let dt = b.operation(OperationKind::Detect, Duration::from_secs(3), d());
        b.edge(m0, h).unwrap();
        b.edge(m1, h).unwrap();
        b.edge(h, f).unwrap();
        b.edge(f, dt).unwrap();
        let g = b.build().unwrap();
        let comps = Allocation::new(2, 1, 1, 1).instantiate(&ComponentLibrary::default());
        let wash = LogLinearWash::paper_calibrated();
        let s = schedule(&g, &comps, &wash, &SchedulerConfig::paper_baseline()).unwrap();
        let nets = NetList::build(&s, &g, &wash, 0.6, 0.4);
        let grid = auto_grid(&comps);
        (comps, nets, grid)
    }

    #[test]
    fn produces_legal_deterministic_placement() {
        let (comps, nets, grid) = workload();
        let a = place_force_directed(&comps, &nets, grid).unwrap();
        let b = place_force_directed(&comps, &nets, grid).unwrap();
        assert!(a.is_legal());
        assert_eq!(a, b);
    }

    #[test]
    fn improves_on_packed_start() {
        let (comps, nets, grid) = workload();
        let packed = packed_placement(&comps, grid).unwrap();
        let forced = place_force_directed(&comps, &nets, grid).unwrap();
        assert!(
            energy(&forced, &nets) <= energy(&packed, &nets),
            "centroid moves must not worsen the packing"
        );
    }

    #[test]
    fn stays_in_the_same_league_as_sa() {
        let (comps, nets, grid) = workload();
        let forced = place_force_directed(&comps, &nets, grid).unwrap();
        let annealed =
            crate::sa::place_sa(&comps, &nets, grid, &crate::sa::SaConfig::paper()).unwrap();
        let ef = energy(&forced, &nets);
        let ea = energy(&annealed, &nets);
        assert!(
            ef <= ea * 3.0 + 10.0,
            "force-directed ({ef:.1}) should stay within 3x of SA ({ea:.1})"
        );
    }

    #[test]
    fn tiny_grid_is_rejected() {
        let (comps, nets, _) = workload();
        let err = place_force_directed(&comps, &nets, GridSpec::square(4));
        assert!(matches!(err, Err(PlaceError::GridTooSmall { .. })));
    }
}
