//! Routing nets and the paper's connection priorities (Eq. (4)).
//!
//! After scheduling, every pair of components that exchanges at least one
//! fluid becomes a *net*. The paper weights each net by a **connection
//! priority** `cp(i,j) = Σ_k (β·nt_k + γ·wt_k)`: nets whose transports run
//! concurrently with many others (`nt_k`) and whose residues wash slowly
//! (`wt_k`) pull their endpoints together during placement, which shortens
//! exactly the channels where conflicts and long washes would hurt most.

use mfb_model::prelude::*;
use mfb_sched::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One routing net: an unordered component pair with its aggregated
/// connection priority and the transport tasks it carries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Net {
    /// Net identifier (dense).
    pub id: NetId,
    /// Lower-id endpoint.
    pub a: ComponentId,
    /// Higher-id endpoint.
    pub b: ComponentId,
    /// The paper's `cp(i, j)`.
    pub priority: f64,
    /// Transport tasks carried by this net, in schedule order.
    pub tasks: Vec<TaskId>,
}

impl fmt::Display for Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}<->{} cp={:.2} ({} tasks)",
            self.id,
            self.a,
            self.b,
            self.priority,
            self.tasks.len()
        )
    }
}

/// The nets of a schedule, plus the weighting parameters they were built
/// with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetList {
    /// The weighting factor β of Eq. (4) (concurrency term).
    pub beta: f64,
    /// The weighting factor γ of Eq. (4) (wash-time term).
    pub gamma: f64,
    nets: Vec<Net>,
}

impl NetList {
    /// Builds the netlist of `schedule`, weighting per the paper's Eq. (4)
    /// with factors `beta` (concurrency) and `gamma` (wash time, seconds).
    ///
    /// Transports that start and end at the same component (a fluid evicted
    /// into channel storage and later returned) carry no placement
    /// information and are skipped.
    pub fn build(
        schedule: &Schedule,
        graph: &SequencingGraph,
        wash: &dyn WashModel,
        beta: f64,
        gamma: f64,
    ) -> Self {
        let transports: Vec<&TransportTask> = schedule.transports().collect();
        let mut by_pair: BTreeMap<(ComponentId, ComponentId), (f64, Vec<TaskId>)> = BTreeMap::new();
        for t in &transports {
            if t.src == t.dst {
                continue;
            }
            let key = if t.src < t.dst {
                (t.src, t.dst)
            } else {
                (t.dst, t.src)
            };
            // nt_k: tasks whose channel occupancy overlaps this one's.
            let nt = transports
                .iter()
                .filter(|o| o.id != t.id && o.parallel_with(t))
                .count() as f64;
            // wt_k: wash time of the residue this task leaves in channels.
            let wt = wash
                .wash_time(graph.op(t.fluid).output_diffusion())
                .as_secs_f64();
            let entry = by_pair.entry(key).or_insert((0.0, Vec::new()));
            entry.0 += beta * nt + gamma * wt;
            entry.1.push(t.id);
        }
        let nets = by_pair
            .into_iter()
            .enumerate()
            .map(|(i, ((a, b), (priority, tasks)))| Net {
                id: NetId::new(i as u32),
                a,
                b,
                priority,
                tasks,
            })
            .collect();
        NetList { beta, gamma, nets }
    }

    /// All nets, ordered by endpoint pair.
    #[inline]
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// Number of nets.
    #[inline]
    pub fn len(&self) -> usize {
        self.nets.len()
    }

    /// `true` when the schedule produced no inter-component transports.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nets.is_empty()
    }

    /// Net indices incident to each of `n_components` components, built
    /// once so the incremental annealer can re-evaluate only the nets a
    /// move touched. Indices are in net order within each bucket.
    pub fn component_index(&self, n_components: usize) -> Vec<Vec<u32>> {
        let mut by_comp = vec![Vec::new(); n_components];
        for (i, net) in self.nets.iter().enumerate() {
            by_comp[net.a.index()].push(i as u32);
            by_comp[net.b.index()].push(i as u32);
        }
        by_comp
    }
}

/// The paper's placement energy, Eq. (3):
/// `Energy(P) = Σ_{n_{i,j}} mdis(i,j) · cp(i,j)`.
pub fn energy(placement: &crate::floorplan::Placement, nets: &NetList) -> f64 {
    nets.nets()
        .iter()
        .map(|n| f64::from(placement.port_distance(n.a, n.b)) * n.priority)
        .sum()
}

/// Congestion-aware extension of the energy (see [`energy_with_spacing`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpacingParams {
    /// Target free gap between any two component rectangles, in cells.
    /// Pairs closer than this pay the penalty.
    pub min_gap: u32,
    /// Penalty per squared cell of gap deficit.
    pub weight: f64,
}

impl SpacingParams {
    /// Defaults tuned on the Table-I suite: a 4-cell corridor target keeps
    /// a dozen concurrent transports routable without visibly moving the
    /// wirelength optimum.
    pub fn default_routing() -> Self {
        SpacingParams {
            min_gap: 4,
            weight: 3.0,
        }
    }

    /// Disables the spacing term (the paper's plain Eq. (3)).
    pub fn off() -> Self {
        SpacingParams {
            min_gap: 0,
            weight: 0.0,
        }
    }
}

/// Eq. (3) plus a congestion guard: every component pair closer than
/// `spacing.min_gap` adds `weight · deficit²`.
///
/// The paper's energy alone pulls heavily-connected components into one
/// dense cluster; with a dozen concurrent transports the 1–2-cell
/// corridors that leaves are unroutable even on a mostly-empty chip. The
/// spacing term keeps corridors open while the `cp` weights still decide
/// the neighbourhood structure.
pub fn energy_with_spacing(
    placement: &crate::floorplan::Placement,
    nets: &NetList,
    spacing: SpacingParams,
) -> f64 {
    let mut total = energy(placement, nets);
    if spacing.weight > 0.0 && spacing.min_gap > 0 {
        let rects = placement.rects();
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                let gap = crate::floorplan::rect_gap(rects[i], rects[j]);
                if gap < spacing.min_gap {
                    let deficit = f64::from(spacing.min_gap - gap);
                    total += spacing.weight * deficit * deficit;
                }
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Placement;
    use mfb_sched::list::{schedule, SchedulerConfig};

    fn d_wash(secs: f64) -> DiffusionCoefficient {
        LogLinearWash::paper_calibrated().coefficient_for(Duration::from_secs_f64(secs))
    }

    /// Two parallel mix->heat chains: transports overlap in time.
    fn workload() -> (SequencingGraph, ComponentSet, Schedule) {
        let mut b = SequencingGraph::builder();
        let m0 = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(6.0));
        let h0 = b.operation(OperationKind::Heat, Duration::from_secs(3), d_wash(0.2));
        let m1 = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(2.0));
        let h1 = b.operation(OperationKind::Heat, Duration::from_secs(3), d_wash(0.2));
        b.edge(m0, h0).unwrap();
        b.edge(m1, h1).unwrap();
        let g = b.build().unwrap();
        let comps = Allocation::new(2, 2, 0, 0).instantiate(&ComponentLibrary::default());
        let s = schedule(
            &g,
            &comps,
            &LogLinearWash::paper_calibrated(),
            &SchedulerConfig::paper_dcsa(),
        )
        .unwrap();
        (g, comps, s)
    }

    #[test]
    fn netlist_aggregates_pairs() {
        let (g, _comps, s) = workload();
        let nets = NetList::build(&s, &g, &LogLinearWash::paper_calibrated(), 0.6, 0.4);
        // Two transports (mix->heat twice) between distinct pairs.
        assert_eq!(nets.len(), 2);
        for n in nets.nets() {
            assert!(n.a < n.b);
            assert_eq!(n.tasks.len(), 1);
            assert!(n.priority > 0.0);
        }
    }

    #[test]
    fn concurrency_raises_priority() {
        let (g, _comps, s) = workload();
        // Both transports occupy overlapping windows, so each sees nt = 1:
        // cp = 0.6*1 + 0.4*wash. The hard-wash chain (6 s) outweighs the
        // easy one (2 s).
        let nets = NetList::build(&s, &g, &LogLinearWash::paper_calibrated(), 0.6, 0.4);
        let mut prios: Vec<f64> = nets.nets().iter().map(|n| n.priority).collect();
        prios.sort_by(f64::total_cmp);
        assert!((prios[0] - (0.6 + 0.4 * 2.0)).abs() < 1e-9, "{prios:?}");
        assert!((prios[1] - (0.6 + 0.4 * 6.0)).abs() < 1e-9, "{prios:?}");
    }

    #[test]
    fn zero_weights_zero_priority() {
        let (g, _comps, s) = workload();
        let nets = NetList::build(&s, &g, &LogLinearWash::paper_calibrated(), 0.0, 0.0);
        assert!(nets.nets().iter().all(|n| n.priority == 0.0));
    }

    #[test]
    fn energy_scales_with_distance() {
        let (g, _comps, s) = workload();
        let nets = NetList::build(&s, &g, &LogLinearWash::paper_calibrated(), 0.6, 0.4);
        let grid = GridSpec::square(24);
        let lib = ComponentLibrary::default();
        let fp = |k: ComponentKind| lib.footprint(k);
        let mixer = fp(ComponentKind::Mixer);
        let heater = fp(ComponentKind::Heater);
        // Close placement.
        let close = Placement::new(
            grid,
            vec![
                CellRect::new(CellPos::new(1, 1), mixer.width, mixer.height),
                CellRect::new(CellPos::new(1, 6), mixer.width, mixer.height),
                CellRect::new(CellPos::new(7, 1), heater.width, heater.height),
                CellRect::new(CellPos::new(7, 6), heater.width, heater.height),
            ],
        );
        // Same but heaters pushed to the far corner.
        let far = Placement::new(
            grid,
            vec![
                CellRect::new(CellPos::new(1, 1), mixer.width, mixer.height),
                CellRect::new(CellPos::new(1, 6), mixer.width, mixer.height),
                CellRect::new(CellPos::new(19, 19), heater.width, heater.height),
                CellRect::new(CellPos::new(12, 19), heater.width, heater.height),
            ],
        );
        assert!(close.is_legal() && far.is_legal());
        assert!(energy(&close, &nets) < energy(&far, &nets));
    }

    #[test]
    fn self_transports_are_skipped() {
        // One mixer: o0, o1 independent; o1 evicts o0's fluid, and o0's
        // child o2 returns it to the same mixer -> src == dst transport.
        let mut b = SequencingGraph::builder();
        let o0 = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(2.0));
        let _o1 = b.operation(OperationKind::Mix, Duration::from_secs(4), d_wash(2.0));
        let o2 = b.operation(OperationKind::Mix, Duration::from_secs(3), d_wash(2.0));
        b.edge(o0, o2).unwrap();
        let g = b.build().unwrap();
        let comps = Allocation::new(1, 0, 0, 0).instantiate(&ComponentLibrary::default());
        let s = schedule(
            &g,
            &comps,
            &LogLinearWash::paper_calibrated(),
            &SchedulerConfig::paper_dcsa(),
        )
        .unwrap();
        let nets = NetList::build(&s, &g, &LogLinearWash::paper_calibrated(), 0.6, 0.4);
        for n in nets.nets() {
            assert_ne!(n.a, n.b);
        }
    }
}
