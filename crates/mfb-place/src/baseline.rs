//! The baseline constructive placer.
//!
//! The paper's baseline (BA) builds its physical design by *construction by
//! correction*: it first constructs a placement greedily, one component at a
//! time, without any conflict- or wash-awareness, and leaves the fixing of
//! whatever problems arise to the routing stage. This module implements the
//! construction half: components are placed in id order, each at the legal
//! position minimising the plain (unweighted) Manhattan distance to its
//! already-placed net neighbours — classic wirelength-greedy placement with
//! none of Eq. (4)'s priorities.

use crate::error::PlaceError;
use crate::floorplan::{rect_avoids_defects, rect_gap, Placement, CLEARANCE};
use crate::nets::{NetList, SpacingParams};
use mfb_model::prelude::*;

/// Places `components` one at a time, greedily minimising unweighted
/// wirelength to already-placed neighbours. The first component goes to the
/// grid centre; unconnected components fill in towards the centre.
///
/// # Errors
///
/// Returns [`PlaceError::GridTooSmall`] when some component cannot be placed
/// legally.
pub fn place_constructive(
    components: &ComponentSet,
    nets: &NetList,
    grid: GridSpec,
) -> Result<Placement, PlaceError> {
    place_constructive_spaced(components, nets, grid, SpacingParams::default_routing())
}

/// [`place_constructive`] with an explicit congestion guard: candidate
/// positions closer than `spacing.min_gap` to an already-placed component
/// pay the same quadratic penalty the annealer uses, so both flows leave
/// comparable routing corridors.
pub fn place_constructive_spaced(
    components: &ComponentSet,
    nets: &NetList,
    grid: GridSpec,
    spacing: SpacingParams,
) -> Result<Placement, PlaceError> {
    place_constructive_with_defects(components, nets, grid, spacing, &DefectMap::pristine())
}

/// [`place_constructive_spaced`] on a damaged chip: candidate positions
/// covering a blocked cell of `defects` are skipped. With a pristine map
/// this is exactly the plain constructive placer.
///
/// # Errors
///
/// [`PlaceError::GridTooSmall`] when some component cannot be placed
/// legally at all; [`PlaceError::DefectBlocked`] when only the defect map
/// stands in the way.
pub fn place_constructive_with_defects(
    components: &ComponentSet,
    nets: &NetList,
    grid: GridSpec,
    spacing: SpacingParams,
    defects: &DefectMap,
) -> Result<Placement, PlaceError> {
    let mut placement = Placement::new(
        grid,
        components
            .iter()
            .map(|c| {
                CellRect::new(
                    CellPos::new(0, 0),
                    c.footprint().width,
                    c.footprint().height,
                )
            })
            .collect(),
    );
    let mut placed: Vec<ComponentId> = Vec::new();

    for c in components.iter() {
        let fp = c.footprint();
        let (Some(max_x), Some(max_y)) = (
            grid.width.checked_sub(fp.width),
            grid.height.checked_sub(fp.height),
        ) else {
            return Err(PlaceError::GridTooSmall { grid });
        };

        // Neighbours of `c` among already-placed components.
        let neighbours: Vec<ComponentId> = nets
            .nets()
            .iter()
            .filter_map(|n| {
                if n.a == c.id() && placed.contains(&n.b) {
                    Some(n.b)
                } else if n.b == c.id() && placed.contains(&n.a) {
                    Some(n.a)
                } else {
                    None
                }
            })
            .collect();

        let centre = CellPos::new(grid.width / 2, grid.height / 2);
        let mut best: Option<(u64, CellRect)> = None;
        for y in 0..=max_y {
            for x in 0..=max_x {
                let rect = CellRect::new(CellPos::new(x, y), fp.width, fp.height);
                if !rect_avoids_defects(rect, defects) {
                    continue;
                }
                let legal = placed
                    .iter()
                    .all(|&p| !rect.inflated(CLEARANCE).intersects(placement.rect(p)));
                if !legal {
                    continue;
                }
                let mut cost = if neighbours.is_empty() {
                    // Unconnected (or first): pull towards the centre.
                    u64::from(rect.center().manhattan(centre))
                } else {
                    neighbours
                        .iter()
                        .map(|&nb| u64::from(rect.center().manhattan(placement.rect(nb).center())))
                        .sum()
                };
                if spacing.weight > 0.0 && spacing.min_gap > 0 {
                    for &p in &placed {
                        let gap = rect_gap(rect, placement.rect(p));
                        if gap < spacing.min_gap {
                            // Same quadratic penalty as the annealer
                            // (rounded into this placer's integer cost).
                            let deficit = f64::from(spacing.min_gap - gap);
                            cost += (spacing.weight * deficit * deficit).round() as u64;
                        }
                    }
                }
                match best {
                    Some((b, _)) if b <= cost => {}
                    _ => best = Some((cost, rect)),
                }
            }
        }
        let Some((_, rect)) = best else {
            return Err(if defects.is_pristine() {
                PlaceError::GridTooSmall { grid }
            } else {
                PlaceError::DefectBlocked { grid }
            });
        };
        placement.set_rect(c.id(), rect);
        placed.push(c.id());
    }

    debug_assert!(placement.is_legal());
    Ok(placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::auto_grid;
    use crate::nets::energy;
    use mfb_sched::list::{schedule, SchedulerConfig};

    fn d() -> DiffusionCoefficient {
        DiffusionCoefficient::PROTEIN
    }

    fn workload() -> (SequencingGraph, ComponentSet, NetList) {
        let mut b = SequencingGraph::builder();
        let m0 = b.operation(OperationKind::Mix, Duration::from_secs(5), d());
        let m1 = b.operation(OperationKind::Mix, Duration::from_secs(5), d());
        let h = b.operation(OperationKind::Heat, Duration::from_secs(3), d());
        let dt = b.operation(OperationKind::Detect, Duration::from_secs(3), d());
        b.edge(m0, h).unwrap();
        b.edge(m1, h).unwrap();
        b.edge(h, dt).unwrap();
        let g = b.build().unwrap();
        let comps = Allocation::new(2, 1, 0, 1).instantiate(&ComponentLibrary::default());
        let s = schedule(
            &g,
            &comps,
            &LogLinearWash::paper_calibrated(),
            &SchedulerConfig::paper_baseline(),
        )
        .unwrap();
        let nets = NetList::build(&s, &g, &LogLinearWash::paper_calibrated(), 0.6, 0.4);
        (g, comps, nets)
    }

    #[test]
    fn constructive_placement_is_legal_and_deterministic() {
        let (_g, comps, nets) = workload();
        let grid = auto_grid(&comps);
        let a = place_constructive(&comps, &nets, grid).unwrap();
        let b = place_constructive(&comps, &nets, grid).unwrap();
        assert!(a.is_legal());
        assert_eq!(a, b);
    }

    #[test]
    fn connected_components_end_up_near_each_other() {
        let (_g, comps, nets) = workload();
        let grid = auto_grid(&comps);
        let p = place_constructive(&comps, &nets, grid).unwrap();
        // Every net's endpoints should be well under the grid diameter apart.
        let diameter = u64::from(grid.width + grid.height);
        for n in nets.nets() {
            let dist = u64::from(p.port_distance(n.a, n.b));
            assert!(
                dist * 2 < diameter,
                "net {n} stretched across the chip ({dist} cells)"
            );
        }
        assert!(energy(&p, &nets).is_finite());
    }

    #[test]
    fn too_small_grid_errors() {
        let (_g, comps, nets) = workload();
        let err = place_constructive(&comps, &nets, GridSpec::square(5));
        assert!(matches!(err, Err(PlaceError::GridTooSmall { .. })));
    }
}
