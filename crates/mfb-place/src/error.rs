//! Placement errors.

use mfb_model::prelude::*;
use std::fmt;

/// Errors produced by the placers.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum PlaceError {
    /// The chip grid cannot hold all components with routing clearance.
    GridTooSmall {
        /// The grid that was attempted.
        grid: GridSpec,
    },
    /// The grid could hold the components, but every arrangement collides
    /// with blocked cells of the defect map.
    DefectBlocked {
        /// The grid that was attempted.
        grid: GridSpec,
    },
    /// The annealer stopped at a budget checkpoint before converging: the
    /// deadline passed or the job was cancelled. Not a property of the
    /// inputs — retrying with a fresh budget may succeed.
    Interrupted(BudgetExceeded),
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::GridTooSmall { grid } => {
                write!(f, "grid {grid} is too small for a legal placement")
            }
            PlaceError::DefectBlocked { grid } => {
                write!(
                    f,
                    "no defect-free placement exists on grid {grid} with the given defect map"
                )
            }
            PlaceError::Interrupted(why) => write!(f, "placement interrupted: {why}"),
        }
    }
}

impl std::error::Error for PlaceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_grid() {
        let e = PlaceError::GridTooSmall {
            grid: GridSpec::square(12),
        };
        assert!(e.to_string().contains("12x12"));
    }
}
