//! Placements: where each component sits on the chip grid.

use mfb_model::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Minimum free ring around every component, in cells, so flow channels can
/// reach all sides.
pub const CLEARANCE: u32 = 2;

/// A complete placement: one rectangle per component on a [`GridSpec`].
///
/// Use [`Placement::is_legal`] (or build through the placers in this crate,
/// which only produce legal placements) before handing a placement to the
/// router.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    grid: GridSpec,
    rects: Vec<CellRect>,
}

impl Placement {
    /// Creates a placement from raw rectangles, indexed by `ComponentId`.
    /// No legality check is performed; see [`Placement::is_legal`].
    pub fn new(grid: GridSpec, rects: Vec<CellRect>) -> Self {
        Placement { grid, rects }
    }

    /// The chip grid.
    #[inline]
    pub fn grid(&self) -> GridSpec {
        self.grid
    }

    /// Number of placed components.
    #[inline]
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// `true` when nothing is placed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// The rectangle of component `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[inline]
    pub fn rect(&self, c: ComponentId) -> CellRect {
        self.rects[c.index()]
    }

    /// All rectangles, indexed by component id.
    #[inline]
    pub fn rects(&self) -> &[CellRect] {
        &self.rects
    }

    /// Replaces the rectangle of component `c` (used by placer moves).
    pub fn set_rect(&mut self, c: ComponentId, rect: CellRect) {
        self.rects[c.index()] = rect;
    }

    /// The flow port of component `c`: the routable cell adjacent to the
    /// rectangle's boundary through which channels connect. Chosen as the
    /// first free direction below / above / left / right of the rectangle's
    /// centre column/row that stays on the grid.
    pub fn port(&self, c: ComponentId) -> CellPos {
        let r = self.rect(c);
        let cx = r.origin.x + r.width / 2;
        let cy = r.origin.y + r.height / 2;
        let (x2, y2) = r.upper_right();
        if r.origin.y > 0 {
            CellPos::new(cx, r.origin.y - 1)
        } else if y2 < self.grid.height {
            CellPos::new(cx, y2)
        } else if r.origin.x > 0 {
            CellPos::new(r.origin.x - 1, cy)
        } else {
            debug_assert!(x2 < self.grid.width, "component fills the whole grid");
            CellPos::new(x2, cy)
        }
    }

    /// Manhattan distance between the ports of two components, in cells —
    /// the `mdis(i, j)` of the paper's energy function.
    pub fn port_distance(&self, a: ComponentId, b: ComponentId) -> u32 {
        self.port(a).manhattan(self.port(b))
    }

    /// Checks placement legality: every rectangle on the grid, and no two
    /// rectangles closer than [`CLEARANCE`].
    pub fn is_legal(&self) -> bool {
        self.legality_violation().is_none()
    }

    /// The first legality violation, if any.
    pub fn legality_violation(&self) -> Option<PlacementViolation> {
        for (i, &r) in self.rects.iter().enumerate() {
            if !self.grid.contains_rect(r) {
                return Some(PlacementViolation::OutOfBounds {
                    component: ComponentId::new(i as u32),
                });
            }
        }
        for i in 0..self.rects.len() {
            for j in (i + 1)..self.rects.len() {
                if self.rects[i].inflated(CLEARANCE).intersects(self.rects[j]) {
                    return Some(PlacementViolation::TooClose {
                        a: ComponentId::new(i as u32),
                        b: ComponentId::new(j as u32),
                    });
                }
            }
        }
        None
    }

    /// `true` when `rect` could replace component `c`'s rectangle legally.
    pub fn fits(&self, c: ComponentId, rect: CellRect) -> bool {
        if !self.grid.contains_rect(rect) {
            return false;
        }
        let inf = rect.inflated(CLEARANCE);
        let ci = c.index();
        let hit = |other: &CellRect| inf.intersects(*other);
        !(self.rects[..ci].iter().any(hit) || self.rects[ci + 1..].iter().any(hit))
    }

    /// The first component whose rectangle covers a blocked cell of
    /// `defects`, if any. Defect-aware placers only produce placements for
    /// which this is `None`.
    pub fn defect_overlap(&self, defects: &DefectMap) -> Option<ComponentId> {
        self.rects.iter().enumerate().find_map(|(i, &r)| {
            defects
                .blocked_cells()
                .iter()
                .any(|&cell| r.contains(cell))
                .then(|| ComponentId::new(i as u32))
        })
    }
}

/// `true` when `rect` covers no blocked cell of `defects`. Costs
/// `O(|blocked|)`, which is far cheaper than scanning the rectangle for the
/// sparse maps real chips have.
pub fn rect_avoids_defects(rect: CellRect, defects: &DefectMap) -> bool {
    defects.blocked_cells().iter().all(|&c| !rect.contains(c))
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "placement of {} components on {}", self.len(), self.grid)
    }
}

/// A placement legality violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementViolation {
    /// A component rectangle leaves the grid.
    OutOfBounds {
        /// The offending component.
        component: ComponentId,
    },
    /// Two components overlap or violate the routing clearance.
    TooClose {
        /// First component.
        a: ComponentId,
        /// Second component.
        b: ComponentId,
    },
}

impl fmt::Display for PlacementViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementViolation::OutOfBounds { component } => {
                write!(f, "component {component} leaves the chip")
            }
            PlacementViolation::TooClose { a, b } => {
                write!(f, "components {a} and {b} violate clearance")
            }
        }
    }
}

impl std::error::Error for PlacementViolation {}

/// Free gap between two rectangles, in cells: the Chebyshev-style distance
/// `max(horizontal gap, 0) + max(vertical gap, 0)`. Zero when the
/// rectangles touch or overlap.
pub fn rect_gap(a: CellRect, b: CellRect) -> u32 {
    let (ax2, ay2) = a.upper_right();
    let (bx2, by2) = b.upper_right();
    // Per axis, at most one of the two saturating differences is non-zero
    // (`a` entirely below `b`, or entirely above), so the sum selects the
    // separation without the data-dependent branch a min/else chain costs
    // in the annealer's pair loop.
    let hgap = b.origin.x.saturating_sub(ax2) + a.origin.x.saturating_sub(bx2);
    let vgap = b.origin.y.saturating_sub(ay2) + a.origin.y.saturating_sub(by2);
    hgap + vgap
}

/// Deterministic left-to-right, bottom-to-top row packing with clearance —
/// the shared fallback start for the annealer and the force-directed
/// placer.
pub(crate) fn packed_placement(
    components: &ComponentSet,
    grid: GridSpec,
) -> Result<Placement, crate::error::PlaceError> {
    let mut rects = Vec::with_capacity(components.len());
    let (mut x, mut y, mut row_h) = (0u32, 0u32, 0u32);
    for c in components.iter() {
        let fp = c.footprint();
        let (w, h) = (fp.width + CLEARANCE, fp.height + CLEARANCE);
        if x + w > grid.width {
            x = 0;
            y += row_h;
            row_h = 0;
        }
        if x + fp.width > grid.width || y + fp.height > grid.height {
            return Err(crate::error::PlaceError::GridTooSmall { grid });
        }
        rects.push(CellRect::new(CellPos::new(x, y), fp.width, fp.height));
        x += w;
        row_h = row_h.max(h);
    }
    let placement = Placement::new(grid, rects);
    if placement.is_legal() {
        Ok(placement)
    } else {
        Err(crate::error::PlaceError::GridTooSmall { grid })
    }
}

/// Deterministic greedy scan placement that also avoids blocked defect
/// cells: each component goes to the first origin (bottom-to-top,
/// left-to-right) that is in bounds, keeps [`CLEARANCE`] to everything
/// already placed, and covers no blocked cell. The defect-aware fallback
/// counterpart of [`packed_placement`].
pub(crate) fn packed_placement_avoiding(
    components: &ComponentSet,
    grid: GridSpec,
    defects: &DefectMap,
) -> Result<Placement, crate::error::PlaceError> {
    let mut rects: Vec<CellRect> = Vec::with_capacity(components.len());
    for c in components.iter() {
        let fp = c.footprint();
        let (Some(max_x), Some(max_y)) = (
            grid.width.checked_sub(fp.width),
            grid.height.checked_sub(fp.height),
        ) else {
            return Err(crate::error::PlaceError::GridTooSmall { grid });
        };
        let mut chosen = None;
        'scan: for y in 0..=max_y {
            for x in 0..=max_x {
                let rect = CellRect::new(CellPos::new(x, y), fp.width, fp.height);
                let clear = rects
                    .iter()
                    .all(|&o| !rect.inflated(CLEARANCE).intersects(o));
                if clear && rect_avoids_defects(rect, defects) {
                    chosen = Some(rect);
                    break 'scan;
                }
            }
        }
        let Some(rect) = chosen else {
            return Err(crate::error::PlaceError::DefectBlocked { grid });
        };
        rects.push(rect);
    }
    let placement = Placement::new(grid, rects);
    debug_assert!(placement.is_legal());
    Ok(placement)
}

/// Picks a chip grid large enough to place `components` comfortably:
/// a square whose area is several times the summed (clearance-inflated)
/// component areas, with the default physical pitch.
pub fn auto_grid(components: &ComponentSet) -> GridSpec {
    let corridor = crate::nets::SpacingParams::default_routing().min_gap;
    let occupied: u64 = components
        .iter()
        .map(|c| {
            let fp = c.footprint();
            // Components want a corridor of the placers' spacing target on
            // each side; half of it is attributed to each of the two
            // neighbours sharing it.
            u64::from(fp.width + corridor) * u64::from(fp.height + corridor)
        })
        .sum();
    // 2.5x slack on top for routing and parking; minimum 12 cells a side.
    let side = ((occupied * 5 / 2) as f64).sqrt().ceil() as u32;
    GridSpec::square(side.max(12))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> GridSpec {
        GridSpec::square(16)
    }

    #[test]
    fn legality_detects_overlap_and_clearance() {
        let a = CellRect::new(CellPos::new(1, 1), 4, 3);
        let b = CellRect::new(CellPos::new(7, 1), 3, 2); // CLEARANCE-cell gap: legal
        let p = Placement::new(grid(), vec![a, b]);
        assert!(p.is_legal());

        let too_close = CellRect::new(CellPos::new(6, 1), 3, 2); // 1-cell gap
        let p2 = Placement::new(grid(), vec![a, too_close]);
        assert_eq!(
            p2.legality_violation(),
            Some(PlacementViolation::TooClose {
                a: ComponentId::new(0),
                b: ComponentId::new(1)
            })
        );
    }

    #[test]
    fn legality_detects_out_of_bounds() {
        let r = CellRect::new(CellPos::new(14, 14), 4, 3);
        let p = Placement::new(grid(), vec![r]);
        assert_eq!(
            p.legality_violation(),
            Some(PlacementViolation::OutOfBounds {
                component: ComponentId::new(0)
            })
        );
    }

    #[test]
    fn port_is_adjacent_and_on_grid() {
        let r = CellRect::new(CellPos::new(3, 3), 4, 3);
        let p = Placement::new(grid(), vec![r]);
        let port = p.port(ComponentId::new(0));
        assert_eq!(port, CellPos::new(5, 2));
        assert!(!r.contains(port));
        assert!(p.grid().contains(port));
    }

    #[test]
    fn port_falls_back_when_at_bottom_edge() {
        let r = CellRect::new(CellPos::new(3, 0), 4, 3);
        let p = Placement::new(grid(), vec![r]);
        let port = p.port(ComponentId::new(0));
        assert_eq!(port, CellPos::new(5, 3)); // above the rect
    }

    #[test]
    fn port_distance_is_symmetric() {
        let a = CellRect::new(CellPos::new(1, 1), 4, 3);
        let b = CellRect::new(CellPos::new(9, 8), 3, 2);
        let p = Placement::new(grid(), vec![a, b]);
        assert_eq!(
            p.port_distance(ComponentId::new(0), ComponentId::new(1)),
            p.port_distance(ComponentId::new(1), ComponentId::new(0))
        );
        assert!(p.port_distance(ComponentId::new(0), ComponentId::new(1)) > 0);
    }

    #[test]
    fn fits_respects_other_components() {
        let a = CellRect::new(CellPos::new(1, 1), 4, 3);
        let b = CellRect::new(CellPos::new(9, 8), 3, 2);
        let p = Placement::new(grid(), vec![a, b]);
        let c0 = ComponentId::new(0);
        assert!(p.fits(c0, CellRect::new(CellPos::new(1, 8), 4, 3)));
        // Overlapping b: rejected.
        assert!(!p.fits(c0, CellRect::new(CellPos::new(8, 7), 4, 3)));
        // Moving onto itself is always fine.
        assert!(p.fits(c0, a));
    }

    #[test]
    fn auto_grid_scales_with_allocation() {
        let small = Allocation::new(2, 0, 0, 0).instantiate(&ComponentLibrary::default());
        let large = Allocation::new(8, 4, 4, 3).instantiate(&ComponentLibrary::default());
        let gs = auto_grid(&small);
        let gl = auto_grid(&large);
        assert!(gl.cell_count() > gs.cell_count());
        assert!(gs.width >= 12);
    }
}
