//! Simulated-annealing placement (paper Algorithm 2, lines 1–8).
//!
//! Starts from a random legal placement and anneals with the classic
//! Kirkpatrick schedule: at each temperature, `i_max` random transformation
//! operations (translate / rotate / swap) are proposed and accepted when
//! they lower the energy of Eq. (3) or with Metropolis probability
//! `e^(-Δ/T)` otherwise; the temperature then cools by the factor `α`.

use crate::error::PlaceError;
use crate::floorplan::{
    auto_grid, packed_placement, packed_placement_avoiding, rect_avoids_defects, Placement,
    CLEARANCE,
};
use crate::nets::{energy_with_spacing, NetList, SpacingParams};
use mfb_model::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Simulated-annealing parameters. [`SaConfig::paper`] reproduces the
/// paper's reported settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaConfig {
    /// Initial temperature `T_0`.
    pub t0: f64,
    /// Termination temperature `T_min`.
    pub t_min: f64,
    /// Cooling factor `α` per temperature step.
    pub alpha: f64,
    /// Proposals per temperature step, `I_max`.
    pub i_max: u32,
    /// RNG seed; same seed, same placement.
    pub seed: u64,
    /// Congestion guard added to Eq. (3); see
    /// [`SpacingParams`]. Use [`SpacingParams::off`] for the paper's plain
    /// energy.
    pub spacing: SpacingParams,
}

impl SaConfig {
    /// The paper's parameters: `T_0 = 10000`, `T_min = 1.0`, `α = 0.9`,
    /// `I_max = 150`.
    pub fn paper() -> Self {
        SaConfig {
            t0: 10_000.0,
            t_min: 1.0,
            alpha: 0.9,
            i_max: 150,
            seed: 0xD1CE,
            spacing: SpacingParams::default_routing(),
        }
    }

    /// Same schedule, different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig::paper()
    }
}

/// Places `components` on `grid` (use [`auto_grid`] when in doubt),
/// minimising the net-weighted wirelength of Eq. (3).
///
/// # Errors
///
/// Returns [`PlaceError::GridTooSmall`] when no legal initial placement
/// exists on the grid.
pub fn place_sa(
    components: &ComponentSet,
    nets: &NetList,
    grid: GridSpec,
    config: &SaConfig,
) -> Result<Placement, PlaceError> {
    place_sa_with_defects(components, nets, grid, config, &DefectMap::pristine())
}

/// [`place_sa`] on a damaged chip: no component rectangle may cover a
/// blocked cell of `defects`, and components marked dead are pinned — the
/// annealer never proposes moving, rotating or swapping them. With a
/// pristine map this is exactly `place_sa` (bit-identical placements).
///
/// # Errors
///
/// [`PlaceError::GridTooSmall`] when the grid cannot hold the components at
/// all; [`PlaceError::DefectBlocked`] when it could, but every arrangement
/// collides with blocked cells.
pub fn place_sa_with_defects(
    components: &ComponentSet,
    nets: &NetList,
    grid: GridSpec,
    config: &SaConfig,
    defects: &DefectMap,
) -> Result<Placement, PlaceError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut placement = initial_placement(components, grid, &mut rng, defects)?;
    if components.len() < 2 {
        return Ok(placement); // nothing to optimise
    }

    let cost = |p: &Placement| energy_with_spacing(p, nets, config.spacing);
    let mut current = cost(&placement);
    let mut best = placement.clone();
    let mut best_energy = current;
    let mut t = config.t0;
    while t > config.t_min {
        for _ in 0..config.i_max {
            let saved = placement.clone();
            if !propose(&mut placement, components, &mut rng, defects) {
                continue;
            }
            let candidate = cost(&placement);
            let delta = candidate - current;
            if delta < 0.0 || rng.gen::<f64>() < (-delta / t).exp() {
                current = candidate;
                if current < best_energy {
                    best_energy = current;
                    best = placement.clone();
                }
            } else {
                placement = saved;
            }
        }
        t *= config.alpha;
    }
    debug_assert!(best.is_legal());
    Ok(best)
}

/// Convenience: places on an automatically sized grid.
pub fn place_sa_auto(
    components: &ComponentSet,
    nets: &NetList,
    config: &SaConfig,
) -> Result<Placement, PlaceError> {
    place_sa(components, nets, auto_grid(components), config)
}

/// Builds a random legal placement by rejection sampling, falling back to a
/// deterministic row packing when the grid is crowded.
pub(crate) fn initial_placement(
    components: &ComponentSet,
    grid: GridSpec,
    rng: &mut StdRng,
    defects: &DefectMap,
) -> Result<Placement, PlaceError> {
    let mut placement = Placement::new(
        grid,
        components
            .iter()
            .map(|c| {
                CellRect::new(
                    CellPos::new(0, 0),
                    c.footprint().width,
                    c.footprint().height,
                )
            })
            .collect(),
    );
    'components: for c in components.iter() {
        let fp = c.footprint();
        for _ in 0..256 {
            let max_x = grid.width.checked_sub(fp.width);
            let max_y = grid.height.checked_sub(fp.height);
            let (Some(max_x), Some(max_y)) = (max_x, max_y) else {
                return Err(PlaceError::GridTooSmall { grid });
            };
            let origin = CellPos::new(rng.gen_range(0..=max_x), rng.gen_range(0..=max_y));
            let rect = CellRect::new(origin, fp.width, fp.height);
            // Only check against components placed so far.
            let ok = grid.contains_rect(rect)
                && rect_avoids_defects(rect, defects)
                && components
                    .iter()
                    .take(c.id().index())
                    .all(|o| !rect.inflated(CLEARANCE).intersects(placement.rect(o.id())));
            if ok {
                placement.set_rect(c.id(), rect);
                continue 'components;
            }
        }
        // Rejection failed: deterministic packing for everything (the
        // row packer on pristine chips, the defect-avoiding scan otherwise).
        return if defects.is_pristine() {
            packed_placement(components, grid)
        } else {
            packed_placement_avoiding(components, grid, defects)
        };
    }
    debug_assert!(placement.is_legal());
    Ok(placement)
}

/// Applies one random transformation operation; returns `false` when the
/// proposal was illegal (placement left untouched). Dead components are
/// pinned and rectangles covering blocked cells are rejected; the RNG draw
/// sequence is independent of the defect map, so a pristine map reproduces
/// the historical placements exactly.
fn propose(
    placement: &mut Placement,
    components: &ComponentSet,
    rng: &mut StdRng,
    defects: &DefectMap,
) -> bool {
    let grid = placement.grid();
    let n = components.len() as u32;
    match rng.gen_range(0..3u8) {
        // Translate a component to a random position.
        0 => {
            let c = ComponentId::new(rng.gen_range(0..n));
            let r = placement.rect(c);
            let (Some(max_x), Some(max_y)) = (
                grid.width.checked_sub(r.width),
                grid.height.checked_sub(r.height),
            ) else {
                return false;
            };
            let rect = CellRect::new(
                CellPos::new(rng.gen_range(0..=max_x), rng.gen_range(0..=max_y)),
                r.width,
                r.height,
            );
            if !defects.is_dead(c) && rect_avoids_defects(rect, defects) && placement.fits(c, rect)
            {
                placement.set_rect(c, rect);
                true
            } else {
                false
            }
        }
        // Rotate a component in place.
        1 => {
            let c = ComponentId::new(rng.gen_range(0..n));
            let r = placement.rect(c);
            let rect = CellRect::new(r.origin, r.height, r.width);
            if !defects.is_dead(c) && rect_avoids_defects(rect, defects) && placement.fits(c, rect)
            {
                placement.set_rect(c, rect);
                true
            } else {
                false
            }
        }
        // Swap the origins of two components.
        _ => {
            if n < 2 {
                return false;
            }
            let a = ComponentId::new(rng.gen_range(0..n));
            let b = ComponentId::new(rng.gen_range(0..n));
            if a == b || defects.is_dead(a) || defects.is_dead(b) {
                return false;
            }
            let ra = placement.rect(a);
            let rb = placement.rect(b);
            let na = CellRect::new(rb.origin, ra.width, ra.height);
            let nb = CellRect::new(ra.origin, rb.width, rb.height);
            if !rect_avoids_defects(na, defects) || !rect_avoids_defects(nb, defects) {
                return false;
            }
            let saved = placement.clone();
            placement.set_rect(a, na);
            placement.set_rect(b, nb);
            if placement.grid().contains_rect(na)
                && placement.grid().contains_rect(nb)
                && placement.is_legal()
            {
                true
            } else {
                *placement = saved;
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfb_sched::list::{schedule, SchedulerConfig};
    use mfb_sched::prelude::Schedule;

    fn d() -> DiffusionCoefficient {
        DiffusionCoefficient::PROTEIN
    }

    fn chain_workload() -> (SequencingGraph, ComponentSet, Schedule) {
        let mut b = SequencingGraph::builder();
        let m = b.operation(OperationKind::Mix, Duration::from_secs(5), d());
        let h = b.operation(OperationKind::Heat, Duration::from_secs(3), d());
        let f = b.operation(OperationKind::Filter, Duration::from_secs(3), d());
        let dt = b.operation(OperationKind::Detect, Duration::from_secs(4), d());
        b.chain(&[m, h, f, dt]).unwrap();
        let g = b.build().unwrap();
        let comps = Allocation::new(1, 1, 1, 1).instantiate(&ComponentLibrary::default());
        let s = schedule(
            &g,
            &comps,
            &LogLinearWash::paper_calibrated(),
            &SchedulerConfig::paper_dcsa(),
        )
        .unwrap();
        (g, comps, s)
    }

    #[test]
    fn sa_produces_legal_placement() {
        let (g, comps, s) = chain_workload();
        let nets = NetList::build(&s, &g, &LogLinearWash::paper_calibrated(), 0.6, 0.4);
        let p = place_sa_auto(&comps, &nets, &SaConfig::paper()).unwrap();
        assert!(p.is_legal());
        assert_eq!(p.len(), comps.len());
    }

    #[test]
    fn sa_is_deterministic_per_seed() {
        let (g, comps, s) = chain_workload();
        let nets = NetList::build(&s, &g, &LogLinearWash::paper_calibrated(), 0.6, 0.4);
        let cfg = SaConfig::paper().with_seed(7);
        let a = place_sa_auto(&comps, &nets, &cfg).unwrap();
        let b = place_sa_auto(&comps, &nets, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sa_beats_random_start() {
        let (g, comps, s) = chain_workload();
        let nets = NetList::build(&s, &g, &LogLinearWash::paper_calibrated(), 0.6, 0.4);
        let grid = auto_grid(&comps);
        let mut rng = StdRng::seed_from_u64(SaConfig::paper().seed);
        let start = initial_placement(&comps, grid, &mut rng, &DefectMap::pristine()).unwrap();
        let cfg = SaConfig::paper();
        let optimised = place_sa(&comps, &nets, grid, &cfg).unwrap();
        assert!(
            energy_with_spacing(&optimised, &nets, cfg.spacing)
                <= energy_with_spacing(&start, &nets, cfg.spacing),
            "SA must not worsen the start"
        );
    }

    #[test]
    fn tiny_grid_is_rejected() {
        let comps = Allocation::new(4, 2, 2, 2).instantiate(&ComponentLibrary::default());
        let nets = empty_netlist();
        let err = place_sa(&comps, &nets, GridSpec::square(4), &SaConfig::paper());
        assert!(matches!(err, Err(PlaceError::GridTooSmall { .. })));
    }

    fn empty_netlist() -> NetList {
        let mut b = SequencingGraph::builder();
        b.operation(OperationKind::Mix, Duration::from_secs(1), d());
        let g = b.build().unwrap();
        let comps = Allocation::new(1, 0, 0, 0).instantiate(&ComponentLibrary::default());
        let s = schedule(
            &g,
            &comps,
            &LogLinearWash::paper_calibrated(),
            &SchedulerConfig::paper_dcsa(),
        )
        .unwrap();
        NetList::build(&s, &g, &LogLinearWash::paper_calibrated(), 0.6, 0.4)
    }

    #[test]
    fn single_component_placement() {
        let comps = Allocation::new(1, 0, 0, 0).instantiate(&ComponentLibrary::default());
        let nets = empty_netlist();
        let p = place_sa_auto(&comps, &nets, &SaConfig::paper()).unwrap();
        assert!(p.is_legal());
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn defect_aware_placement_avoids_blocked_cells_and_pins_dead() {
        let (g, comps, s) = chain_workload();
        let nets = NetList::build(&s, &g, &LogLinearWash::paper_calibrated(), 0.6, 0.4);
        let grid = auto_grid(&comps);
        let mut defects = DefectMap::pristine();
        // Block a diagonal band through the middle of the grid.
        for i in 0..grid.width.min(grid.height) {
            defects.block_cell(CellPos::new(i, i));
        }
        defects.kill_component(ComponentId::new(2));
        let p = place_sa_with_defects(&comps, &nets, grid, &SaConfig::paper(), &defects).unwrap();
        assert!(p.is_legal());
        assert_eq!(p.defect_overlap(&defects), None);
    }

    #[test]
    fn pristine_defects_reproduce_plain_sa() {
        let (g, comps, s) = chain_workload();
        let nets = NetList::build(&s, &g, &LogLinearWash::paper_calibrated(), 0.6, 0.4);
        let grid = auto_grid(&comps);
        let cfg = SaConfig::paper().with_seed(11);
        let plain = place_sa(&comps, &nets, grid, &cfg).unwrap();
        let with =
            place_sa_with_defects(&comps, &nets, grid, &cfg, &DefectMap::pristine()).unwrap();
        assert_eq!(plain, with);
    }

    #[test]
    fn fully_blocked_grid_is_a_defect_error() {
        let comps = Allocation::new(1, 0, 0, 0).instantiate(&ComponentLibrary::default());
        let nets = empty_netlist();
        let grid = GridSpec::square(12);
        let mut defects = DefectMap::pristine();
        for y in 0..grid.height {
            for x in 0..grid.width {
                defects.block_cell(CellPos::new(x, y));
            }
        }
        let err = place_sa_with_defects(&comps, &nets, grid, &SaConfig::paper(), &defects);
        assert!(matches!(err, Err(PlaceError::DefectBlocked { .. })));
    }

    #[test]
    fn packing_fallback_handles_crowded_grids() {
        // A grid just big enough that rejection sampling may fail but
        // packing succeeds.
        let comps = Allocation::new(3, 1, 0, 0).instantiate(&ComponentLibrary::default());
        let nets = empty_netlist();
        let p = place_sa(&comps, &nets, GridSpec::square(12), &SaConfig::paper()).unwrap();
        assert!(p.is_legal());
    }
}
