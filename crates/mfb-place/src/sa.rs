//! Simulated-annealing placement (paper Algorithm 2, lines 1–8).
//!
//! Starts from a random legal placement and anneals with the classic
//! Kirkpatrick schedule: at each temperature, `i_max` random transformation
//! operations (translate / rotate / swap) are proposed and accepted when
//! they lower the energy of Eq. (3) or with Metropolis probability
//! `e^(-Δ/T)` otherwise; the temperature then cools by the factor `α`.

use crate::error::PlaceError;
use crate::floorplan::{
    auto_grid, packed_placement, packed_placement_avoiding, rect_avoids_defects, rect_gap,
    Placement, CLEARANCE,
};
use crate::nets::{energy_with_spacing, NetList, SpacingParams};
use mfb_model::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Simulated-annealing parameters. [`SaConfig::paper`] reproduces the
/// paper's reported settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaConfig {
    /// Initial temperature `T_0`.
    pub t0: f64,
    /// Termination temperature `T_min`.
    pub t_min: f64,
    /// Cooling factor `α` per temperature step.
    pub alpha: f64,
    /// Proposals per temperature step, `I_max`.
    pub i_max: u32,
    /// RNG seed; same seed, same placement.
    pub seed: u64,
    /// Congestion guard added to Eq. (3); see
    /// [`SpacingParams`]. Use [`SpacingParams::off`] for the paper's plain
    /// energy.
    pub spacing: SpacingParams,
    /// Parallel-tempering chain count (see [`crate::tempering`]). `1` (the
    /// paper's single-chain anneal) runs the plain loop below; `K > 1` runs
    /// `K` temperature-laddered replicas with deterministic exchange.
    pub chains: u32,
    /// Temperature ratio between adjacent tempering chains: chain `i` runs
    /// at `T · ladder^i`. Ignored when `chains <= 1`.
    pub ladder: f64,
}

impl SaConfig {
    /// The paper's parameters: `T_0 = 10000`, `T_min = 1.0`, `α = 0.9`,
    /// `I_max = 150` — single chain, the published algorithm.
    pub fn paper() -> Self {
        SaConfig {
            t0: 10_000.0,
            t_min: 1.0,
            alpha: 0.9,
            i_max: 150,
            seed: 0xD1CE,
            spacing: SpacingParams::default_routing(),
            chains: 1,
            ladder: 1.6,
        }
    }

    /// Same schedule, different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Same schedule, `chains` tempering replicas.
    pub fn with_chains(mut self, chains: u32) -> Self {
        self.chains = chains;
        self
    }
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig::paper()
    }
}

/// Places `components` on `grid` (use [`auto_grid`] when in doubt),
/// minimising the net-weighted wirelength of Eq. (3).
///
/// # Errors
///
/// Returns [`PlaceError::GridTooSmall`] when no legal initial placement
/// exists on the grid.
pub fn place_sa(
    components: &ComponentSet,
    nets: &NetList,
    grid: GridSpec,
    config: &SaConfig,
) -> Result<Placement, PlaceError> {
    place_sa_with_defects(components, nets, grid, config, &DefectMap::pristine())
}

/// [`place_sa`] on a damaged chip: no component rectangle may cover a
/// blocked cell of `defects`, and components marked dead are pinned — the
/// annealer never proposes moving, rotating or swapping them. With a
/// pristine map this is exactly `place_sa` (bit-identical placements).
///
/// # Errors
///
/// [`PlaceError::GridTooSmall`] when the grid cannot hold the components at
/// all; [`PlaceError::DefectBlocked`] when it could, but every arrangement
/// collides with blocked cells.
pub fn place_sa_with_defects(
    components: &ComponentSet,
    nets: &NetList,
    grid: GridSpec,
    config: &SaConfig,
    defects: &DefectMap,
) -> Result<Placement, PlaceError> {
    place_sa_with_stats_and_defects(components, nets, grid, config, defects).map(|(p, _)| p)
}

/// Counters from one annealing run, for the perf baseline (`mfb bench`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SaStats {
    /// Inner-loop iterations (`I_max` × temperature steps).
    pub proposals: u64,
    /// Proposals that passed legality and were energy-evaluated.
    pub evaluated: u64,
    /// Evaluated proposals accepted by the Metropolis criterion.
    pub accepted: u64,
}

/// [`place_sa`] returning the proposal counters alongside the placement.
///
/// # Errors
///
/// Same as [`place_sa`].
pub fn place_sa_with_stats(
    components: &ComponentSet,
    nets: &NetList,
    grid: GridSpec,
    config: &SaConfig,
) -> Result<(Placement, SaStats), PlaceError> {
    place_sa_with_stats_and_defects(components, nets, grid, config, &DefectMap::pristine())
}

/// The annealing loop shared by every `place_sa*` entry point.
///
/// Hot-path shape: a proposal is applied **in place** as a typed [`Move`]
/// and reverted on rejection, and the Eq. (3)+spacing energy is maintained
/// incrementally — only terms incident to the moved component(s) are
/// re-evaluated, then the cached terms are re-summed in the exact order of
/// the full recompute so accepted energies stay bitwise identical to
/// [`crate::reference::place_sa_reference`] (debug builds cross-check every
/// evaluation against the full recompute).
pub fn place_sa_with_stats_and_defects(
    components: &ComponentSet,
    nets: &NetList,
    grid: GridSpec,
    config: &SaConfig,
    defects: &DefectMap,
) -> Result<(Placement, SaStats), PlaceError> {
    place_sa_budgeted(
        components,
        nets,
        grid,
        config,
        defects,
        &Budget::unlimited(),
    )
}

/// [`place_sa_with_stats_and_defects`] under an execution [`Budget`]: the
/// budget is polled **once per temperature epoch** (every `i_max` proposals,
/// outside the bitwise-pinned proposal path), so an unlimited budget leaves
/// the annealer bit-identical to the frozen reference while a tripped one
/// stops within a single epoch.
///
/// # Errors
///
/// Same as [`place_sa`], plus [`PlaceError::Interrupted`] when the deadline
/// passes or the cancellation token fires mid-anneal.
pub fn place_sa_budgeted(
    components: &ComponentSet,
    nets: &NetList,
    grid: GridSpec,
    config: &SaConfig,
    defects: &DefectMap,
    budget: &Budget,
) -> Result<(Placement, SaStats), PlaceError> {
    // Probes sit outside the annealing loop: the per-proposal path is
    // pinned bitwise to the frozen reference and stays untouched; epoch
    // and accept/reject telemetry is emitted once, after the loop, from
    // the counters the loop already maintains.
    let _span = mfb_obs::obs_span!(
        "place.sa",
        seed = config.seed,
        components = components.len() as u64,
    );
    budget.check().map_err(PlaceError::Interrupted)?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut placement = initial_placement(components, grid, &mut rng, defects)?;
    let mut stats = SaStats::default();
    if components.len() < 2 {
        return Ok((placement, stats)); // nothing to optimise
    }

    let mut energy = IncrementalEnergy::new(&placement, nets, config.spacing);
    let mut current = energy.total();
    let mut best = placement.clone();
    let mut best_energy = current;
    let mut t = config.t0;
    let mut epochs = 0u64;
    while t > config.t_min {
        budget.check().map_err(PlaceError::Interrupted)?;
        for _ in 0..config.i_max {
            stats.proposals += 1;
            let Some(mv) = propose_move(&mut placement, components, &mut rng, defects) else {
                continue;
            };
            stats.evaluated += 1;
            energy.apply_move(&placement, &mv);
            let candidate = energy.total();
            debug_assert!(
                candidate == energy_with_spacing(&placement, nets, config.spacing),
                "incremental energy diverged from full recompute"
            );
            let delta = candidate - current;
            if delta < 0.0 || rng.gen::<f64>() < (-delta / t).exp() {
                stats.accepted += 1;
                current = candidate;
                if current < best_energy {
                    best_energy = current;
                    best = placement.clone();
                }
            } else {
                mv.undo(&mut placement);
                energy.revert();
            }
        }
        t *= config.alpha;
        epochs += 1;
    }
    mfb_obs::obs_counter!("sa.epochs", epochs);
    mfb_obs::obs_counter!("sa.proposals", stats.proposals);
    mfb_obs::obs_counter!("sa.evaluated", stats.evaluated);
    mfb_obs::obs_counter!("sa.accepted", stats.accepted);
    mfb_obs::obs_counter!("sa.rejected", stats.evaluated - stats.accepted);
    debug_assert!(best.is_legal());
    Ok((best, stats))
}

/// Convenience: places on an automatically sized grid.
pub fn place_sa_auto(
    components: &ComponentSet,
    nets: &NetList,
    config: &SaConfig,
) -> Result<Placement, PlaceError> {
    place_sa(components, nets, auto_grid(components), config)
}

/// Builds a random legal placement by rejection sampling, falling back to a
/// deterministic row packing when the grid is crowded.
pub(crate) fn initial_placement(
    components: &ComponentSet,
    grid: GridSpec,
    rng: &mut StdRng,
    defects: &DefectMap,
) -> Result<Placement, PlaceError> {
    let mut placement = Placement::new(
        grid,
        components
            .iter()
            .map(|c| {
                CellRect::new(
                    CellPos::new(0, 0),
                    c.footprint().width,
                    c.footprint().height,
                )
            })
            .collect(),
    );
    'components: for c in components.iter() {
        let fp = c.footprint();
        for _ in 0..256 {
            let max_x = grid.width.checked_sub(fp.width);
            let max_y = grid.height.checked_sub(fp.height);
            let (Some(max_x), Some(max_y)) = (max_x, max_y) else {
                return Err(PlaceError::GridTooSmall { grid });
            };
            let origin = CellPos::new(rng.gen_range(0..=max_x), rng.gen_range(0..=max_y));
            let rect = CellRect::new(origin, fp.width, fp.height);
            // Only check against components placed so far.
            let ok = grid.contains_rect(rect)
                && rect_avoids_defects(rect, defects)
                && components
                    .iter()
                    .take(c.id().index())
                    .all(|o| !rect.inflated(CLEARANCE).intersects(placement.rect(o.id())));
            if ok {
                placement.set_rect(c.id(), rect);
                continue 'components;
            }
        }
        // Rejection failed: deterministic packing for everything (the
        // row packer on pristine chips, the defect-avoiding scan otherwise).
        return if defects.is_pristine() {
            packed_placement(components, grid)
        } else {
            packed_placement_avoiding(components, grid, defects)
        };
    }
    debug_assert!(placement.is_legal());
    Ok(placement)
}

/// One applied annealing move, carrying enough state to undo itself.
///
/// [`propose_move`] mutates the placement in place and hands back the move;
/// a rejected proposal calls [`Move::undo`] instead of restoring a saved
/// clone, so the rejection path allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Move {
    /// Translate or rotate: component `c` moved from `old` to its current
    /// rectangle.
    Single {
        /// The moved component.
        c: ComponentId,
        /// Its rectangle before the move.
        old: CellRect,
    },
    /// Origin swap of two components.
    Swap {
        /// Lower-drawn component.
        a: ComponentId,
        /// Higher-drawn component.
        b: ComponentId,
        /// `a`'s rectangle before the swap.
        old_a: CellRect,
        /// `b`'s rectangle before the swap.
        old_b: CellRect,
    },
}

impl Move {
    /// Restores the placement to its pre-move state.
    pub fn undo(&self, placement: &mut Placement) {
        match *self {
            Move::Single { c, old } => placement.set_rect(c, old),
            Move::Swap { a, b, old_a, old_b } => {
                placement.set_rect(a, old_a);
                placement.set_rect(b, old_b);
            }
        }
    }

    /// The components whose rectangle changed (second slot for swaps).
    fn touched(&self) -> (ComponentId, Option<ComponentId>) {
        match *self {
            Move::Single { c, .. } => (c, None),
            Move::Swap { a, b, .. } => (a, Some(b)),
        }
    }
}

/// Applies one random transformation operation in place; returns the
/// applied [`Move`], or `None` when the proposal was illegal (placement
/// left untouched). Dead components are pinned and rectangles covering
/// blocked cells are rejected; the RNG draw sequence is independent of the
/// defect map, so a pristine map reproduces the historical placements
/// exactly. The draw sequence and accept/reject decisions match the
/// clone-based [`crate::reference`] proposer bit for bit.
pub(crate) fn propose_move(
    placement: &mut Placement,
    components: &ComponentSet,
    rng: &mut StdRng,
    defects: &DefectMap,
) -> Option<Move> {
    let grid = placement.grid();
    let n = components.len() as u32;
    match rng.gen_range(0..3u8) {
        // Translate a component to a random position.
        0 => {
            let c = ComponentId::new(rng.gen_range(0..n));
            let r = placement.rect(c);
            let (Some(max_x), Some(max_y)) = (
                grid.width.checked_sub(r.width),
                grid.height.checked_sub(r.height),
            ) else {
                return None;
            };
            let rect = CellRect::new(
                CellPos::new(rng.gen_range(0..=max_x), rng.gen_range(0..=max_y)),
                r.width,
                r.height,
            );
            if !defects.is_dead(c) && rect_avoids_defects(rect, defects) && placement.fits(c, rect)
            {
                placement.set_rect(c, rect);
                Some(Move::Single { c, old: r })
            } else {
                None
            }
        }
        // Rotate a component in place.
        1 => {
            let c = ComponentId::new(rng.gen_range(0..n));
            let r = placement.rect(c);
            let rect = CellRect::new(r.origin, r.height, r.width);
            if !defects.is_dead(c) && rect_avoids_defects(rect, defects) && placement.fits(c, rect)
            {
                placement.set_rect(c, rect);
                Some(Move::Single { c, old: r })
            } else {
                None
            }
        }
        // Swap the origins of two components.
        _ => {
            if n < 2 {
                return None;
            }
            let a = ComponentId::new(rng.gen_range(0..n));
            let b = ComponentId::new(rng.gen_range(0..n));
            if a == b || defects.is_dead(a) || defects.is_dead(b) {
                return None;
            }
            let ra = placement.rect(a);
            let rb = placement.rect(b);
            let na = CellRect::new(rb.origin, ra.width, ra.height);
            let nb = CellRect::new(ra.origin, rb.width, rb.height);
            if !rect_avoids_defects(na, defects) || !rect_avoids_defects(nb, defects) {
                return None;
            }
            if grid.contains_rect(na)
                && grid.contains_rect(nb)
                && swap_stays_legal(placement, a, b, na, nb)
            {
                placement.set_rect(a, na);
                placement.set_rect(b, nb);
                Some(Move::Swap {
                    a,
                    b,
                    old_a: ra,
                    old_b: rb,
                })
            } else {
                None
            }
        }
    }
}

/// Would swapping `a`/`b` into `na`/`nb` keep the placement legal?
///
/// The placement is legal before every proposal (loop invariant), so only
/// pairs involving `a` or `b` can newly violate [`CLEARANCE`]. Checking
/// just those pairs — in the same lower-index-inflated orientation as
/// `Placement::legality_violation` — is boolean-equivalent to the full
/// `is_legal()` scan the clone-based proposer ran, in O(n) instead of
/// O(n²).
fn swap_stays_legal(
    placement: &Placement,
    a: ComponentId,
    b: ComponentId,
    na: CellRect,
    nb: CellRect,
) -> bool {
    let rects = placement.rects();
    let (ai, bi) = (a.index(), b.index());
    let na_inf = na.inflated(CLEARANCE);
    let nb_inf = nb.inflated(CLEARANCE);
    // The swapped pair itself, lower index inflated.
    if ai < bi {
        if na_inf.intersects(nb) {
            return false;
        }
    } else if nb_inf.intersects(na) {
        return false;
    }
    for (j, &r) in rects.iter().enumerate() {
        if j == ai || j == bi {
            continue;
        }
        let r_inf = r.inflated(CLEARANCE);
        let a_hit = if ai < j {
            na_inf.intersects(r)
        } else {
            r_inf.intersects(na)
        };
        let b_hit = if bi < j {
            nb_inf.intersects(r)
        } else {
            r_inf.intersects(nb)
        };
        if a_hit || b_hit {
            return false;
        }
    }
    true
}

/// Incrementally maintained Eq. (3)+spacing energy.
///
/// Caches one `f64` term per net (`mdis · cp`) and one per component pair
/// (the spacing penalty, `0.0` when the pair is not penalised). A move
/// re-evaluates only the terms incident to the component(s) it touched;
/// [`IncrementalEnergy::total`] then re-sums the cached terms **in the
/// exact order of the full recompute** (nets first, then pairs in
/// `(i, j)` lexicographic order, skipping zero penalties), which makes the
/// result bitwise identical to [`energy_with_spacing`] — floating-point
/// addition is order-sensitive, so a running delta would drift and change
/// Metropolis decisions.
///
/// `Clone` is derived so [`crate::tempering`] can step a snapshot of each
/// chain inside the `Fn`-bounded parallel map.
#[derive(Clone)]
pub(crate) struct IncrementalEnergy<'a> {
    nets: &'a NetList,
    spacing: SpacingParams,
    spacing_on: bool,
    n: usize,
    /// Per-net `mdis(a, b) · cp(a, b)`, in net order.
    net_terms: Vec<f64>,
    /// `net_prefix[i]` is the naive left-to-right sum of the first `i` net
    /// terms — exactly the partial sums the full recompute's accumulator
    /// passes through — so [`IncrementalEnergy::total`] only re-adds the
    /// suffix behind the lowest term touched since the last evaluation.
    net_prefix: Vec<f64>,
    /// Lowest net index whose term changed since `net_prefix` was last
    /// rebuilt (`net_terms.len()` when clean).
    prefix_from: usize,
    /// Row-major `n × n` upper triangle of spacing penalties (slot `i*n+j`
    /// for `i < j`); `0.0` marks an unpenalised pair.
    pair_terms: Vec<f64>,
    /// Bitset over `pair_terms` slots marking the non-zero entries.
    /// Iterating set bits word-by-word visits ascending slots — **the**
    /// `(i, j)` lexicographic order of the full recompute — so
    /// [`IncrementalEnergy::total`] sums just the penalised pairs, and a
    /// membership flip is one XOR instead of a sorted-vec edit.
    nonzero_bits: Vec<u64>,
    /// Net indices incident to each component, built once and stored CSR:
    /// component `c`'s nets are `by_comp_idx[by_comp_off[c]..by_comp_off[c + 1]]`.
    by_comp_off: Vec<u32>,
    by_comp_idx: Vec<u32>,
    /// Cached flow-port cell per component — `port()` is a pure function of
    /// the rectangle, so refreshing it only for moved components keeps net
    /// terms value-identical to recomputing both ports per evaluation.
    ports: Vec<CellPos>,
    /// Undo log of the terms overwritten by the last `apply_move`.
    saved_nets: Vec<(u32, f64)>,
    saved_pairs: Vec<(u32, f64)>,
    saved_ports: Vec<(u32, CellPos)>,
}

impl<'a> IncrementalEnergy<'a> {
    pub(crate) fn new(placement: &Placement, nets: &'a NetList, spacing: SpacingParams) -> Self {
        let n = placement.len();
        let spacing_on = spacing.weight > 0.0 && spacing.min_gap > 0;
        let ports: Vec<CellPos> = (0..n)
            .map(|i| placement.port(ComponentId::new(i as u32)))
            .collect();
        let net_terms: Vec<f64> = nets
            .nets()
            .iter()
            .map(|net| f64::from(placement.port_distance(net.a, net.b)) * net.priority)
            .collect();
        let mut net_prefix = vec![0.0; net_terms.len() + 1];
        for (i, &term) in net_terms.iter().enumerate() {
            net_prefix[i + 1] = net_prefix[i] + term;
        }
        let prefix_from = net_terms.len();
        let mut pair_terms = vec![0.0; if spacing_on { n * n } else { 0 }];
        let mut nonzero_bits = vec![0u64; pair_terms.len().div_ceil(64)];
        if spacing_on {
            let rects = placement.rects();
            for i in 0..n {
                for j in (i + 1)..n {
                    let term = pair_penalty(rects[i], rects[j], spacing);
                    if term != 0.0 {
                        let idx = i * n + j;
                        pair_terms[idx] = term;
                        nonzero_bits[idx / 64] |= 1u64 << (idx % 64);
                    }
                }
            }
        }
        let by_comp = nets.component_index(n);
        let mut by_comp_off = Vec::with_capacity(n + 1);
        let mut by_comp_idx = Vec::new();
        by_comp_off.push(0);
        for list in &by_comp {
            by_comp_idx.extend_from_slice(list);
            by_comp_off.push(by_comp_idx.len() as u32);
        }
        IncrementalEnergy {
            nets,
            spacing,
            spacing_on,
            n,
            net_terms,
            net_prefix,
            prefix_from,
            pair_terms,
            nonzero_bits,
            by_comp_off,
            by_comp_idx,
            ports,
            saved_nets: Vec::with_capacity(nets.nets().len()),
            saved_pairs: Vec::with_capacity(2 * n),
            saved_ports: Vec::with_capacity(2),
        }
    }

    /// The spacing parameters this energy was built with (for the
    /// tempering loop's debug cross-check).
    pub(crate) fn spacing(&self) -> SpacingParams {
        self.spacing
    }

    /// Flips slot `idx`'s non-zero bit when its value crossed zero.
    #[inline]
    fn reindex_pair(&mut self, idx: u32, old: f64, new: f64) {
        if (old != 0.0) != (new != 0.0) {
            self.nonzero_bits[idx as usize / 64] ^= 1u64 << (idx % 64);
        }
    }

    /// Re-evaluates the terms incident to the move's component(s), logging
    /// the overwritten values for [`IncrementalEnergy::revert`]. Call with
    /// the placement already mutated by the move.
    pub(crate) fn apply_move(&mut self, placement: &Placement, mv: &Move) {
        self.saved_nets.clear();
        self.saved_pairs.clear();
        self.saved_ports.clear();
        let (first, second) = mv.touched();
        // Refresh every touched port before any net term is read: a net
        // between swap partners must see both new ports.
        self.refresh_port(placement, first);
        if let Some(b) = second {
            self.refresh_port(placement, b);
        }
        self.refresh_component(placement, first, None);
        if let Some(b) = second {
            self.refresh_component(placement, b, Some(first));
        }
    }

    fn refresh_port(&mut self, placement: &Placement, c: ComponentId) {
        let ci = c.index();
        self.saved_ports.push((ci as u32, self.ports[ci]));
        self.ports[ci] = placement.port(c);
    }

    /// Recomputes every term incident to `c`, skipping terms already
    /// refreshed for `done` (the swap partner handled first).
    fn refresh_component(
        &mut self,
        placement: &Placement,
        c: ComponentId,
        done: Option<ComponentId>,
    ) {
        let ci = c.index();
        // `usize::MAX` never matches a component index, so the common
        // single-component move pays no `Option` unwrapping per term.
        let skip = done.map_or(usize::MAX, ComponentId::index);
        let nets = self.nets.nets();
        let (lo, hi) = (
            self.by_comp_off[ci] as usize,
            self.by_comp_off[ci + 1] as usize,
        );
        for k in lo..hi {
            let ni = self.by_comp_idx[k];
            let net = &nets[ni as usize];
            let (ai, bi) = (net.a.index(), net.b.index());
            if ai == skip || bi == skip {
                continue; // already refreshed via the partner
            }
            let term = f64::from(self.ports[ai].manhattan(self.ports[bi])) * net.priority;
            self.saved_nets.push((ni, self.net_terms[ni as usize]));
            self.net_terms[ni as usize] = term;
            self.prefix_from = self.prefix_from.min(ni as usize);
        }
        if !self.spacing_on {
            return;
        }
        let rects = placement.rects();
        let rc = rects[ci];
        // `done` already refreshed its pairs, including (c, done). The loop
        // is split at `ci` so the row-major slot index needs no per-pair
        // (lo, hi) select.
        for (j, &rj) in rects.iter().enumerate().take(ci) {
            if j != skip {
                self.update_pair(j * self.n + ci, rj, rc);
            }
        }
        for (j, &rj) in rects.iter().enumerate().skip(ci + 1) {
            if j != skip {
                self.update_pair(ci * self.n + j, rc, rj);
            }
        }
    }

    /// Re-evaluates one pair slot; touches the undo log and the non-zero
    /// index only when the term actually changed (most pairs are far apart
    /// and stay at 0.0).
    #[inline]
    fn update_pair(&mut self, idx: usize, a: CellRect, b: CellRect) {
        let old = self.pair_terms[idx];
        let new = pair_penalty(a, b, self.spacing);
        if new != old {
            self.saved_pairs.push((idx as u32, old));
            self.pair_terms[idx] = new;
            self.reindex_pair(idx as u32, old, new);
        }
    }

    /// Restores the terms overwritten by the last `apply_move`.
    pub(crate) fn revert(&mut self) {
        for &(ni, old) in self.saved_nets.iter().rev() {
            self.net_terms[ni as usize] = old;
            self.prefix_from = self.prefix_from.min(ni as usize);
        }
        for i in (0..self.saved_pairs.len()).rev() {
            let (idx, old) = self.saved_pairs[i];
            let new = self.pair_terms[idx as usize];
            self.pair_terms[idx as usize] = old;
            self.reindex_pair(idx, new, old);
        }
        for &(ci, old) in self.saved_ports.iter().rev() {
            self.ports[ci as usize] = old;
        }
        self.saved_nets.clear();
        self.saved_pairs.clear();
        self.saved_ports.clear();
    }

    /// Sums the cached terms in the full recompute's order: the rebuilt
    /// suffix of the naive net-term prefix sums, then every penalised pair.
    pub(crate) fn total(&mut self) -> f64 {
        let len = self.net_terms.len();
        for i in self.prefix_from..len {
            self.net_prefix[i + 1] = self.net_prefix[i] + self.net_terms[i];
        }
        self.prefix_from = len;
        let mut total = self.net_prefix[len];
        // A penalised pair's term is strictly positive (weight > 0, deficit
        // ≥ 1), so the set bits mark exactly the pairs the full recompute
        // adds, visited here in its (i, j) lexicographic order.
        for (wi, &word) in self.nonzero_bits.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let idx = wi * 64 + w.trailing_zeros() as usize;
                total += self.pair_terms[idx];
                w &= w - 1;
            }
        }
        total
    }
}

/// The spacing penalty of one pair, exactly as [`energy_with_spacing`]
/// computes it; `0.0` when the gap meets the target.
#[inline]
fn pair_penalty(a: CellRect, b: CellRect, spacing: SpacingParams) -> f64 {
    let gap = rect_gap(a, b);
    if gap < spacing.min_gap {
        let deficit = f64::from(spacing.min_gap - gap);
        spacing.weight * deficit * deficit
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfb_sched::list::{schedule, SchedulerConfig};
    use mfb_sched::prelude::Schedule;

    fn d() -> DiffusionCoefficient {
        DiffusionCoefficient::PROTEIN
    }

    fn chain_workload() -> (SequencingGraph, ComponentSet, Schedule) {
        let mut b = SequencingGraph::builder();
        let m = b.operation(OperationKind::Mix, Duration::from_secs(5), d());
        let h = b.operation(OperationKind::Heat, Duration::from_secs(3), d());
        let f = b.operation(OperationKind::Filter, Duration::from_secs(3), d());
        let dt = b.operation(OperationKind::Detect, Duration::from_secs(4), d());
        b.chain(&[m, h, f, dt]).unwrap();
        let g = b.build().unwrap();
        let comps = Allocation::new(1, 1, 1, 1).instantiate(&ComponentLibrary::default());
        let s = schedule(
            &g,
            &comps,
            &LogLinearWash::paper_calibrated(),
            &SchedulerConfig::paper_dcsa(),
        )
        .unwrap();
        (g, comps, s)
    }

    #[test]
    fn sa_produces_legal_placement() {
        let (g, comps, s) = chain_workload();
        let nets = NetList::build(&s, &g, &LogLinearWash::paper_calibrated(), 0.6, 0.4);
        let p = place_sa_auto(&comps, &nets, &SaConfig::paper()).unwrap();
        assert!(p.is_legal());
        assert_eq!(p.len(), comps.len());
    }

    #[test]
    fn sa_is_deterministic_per_seed() {
        let (g, comps, s) = chain_workload();
        let nets = NetList::build(&s, &g, &LogLinearWash::paper_calibrated(), 0.6, 0.4);
        let cfg = SaConfig::paper().with_seed(7);
        let a = place_sa_auto(&comps, &nets, &cfg).unwrap();
        let b = place_sa_auto(&comps, &nets, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sa_beats_random_start() {
        let (g, comps, s) = chain_workload();
        let nets = NetList::build(&s, &g, &LogLinearWash::paper_calibrated(), 0.6, 0.4);
        let grid = auto_grid(&comps);
        let mut rng = StdRng::seed_from_u64(SaConfig::paper().seed);
        let start = initial_placement(&comps, grid, &mut rng, &DefectMap::pristine()).unwrap();
        let cfg = SaConfig::paper();
        let optimised = place_sa(&comps, &nets, grid, &cfg).unwrap();
        assert!(
            energy_with_spacing(&optimised, &nets, cfg.spacing)
                <= energy_with_spacing(&start, &nets, cfg.spacing),
            "SA must not worsen the start"
        );
    }

    #[test]
    fn tiny_grid_is_rejected() {
        let comps = Allocation::new(4, 2, 2, 2).instantiate(&ComponentLibrary::default());
        let nets = empty_netlist();
        let err = place_sa(&comps, &nets, GridSpec::square(4), &SaConfig::paper());
        assert!(matches!(err, Err(PlaceError::GridTooSmall { .. })));
    }

    fn empty_netlist() -> NetList {
        let mut b = SequencingGraph::builder();
        b.operation(OperationKind::Mix, Duration::from_secs(1), d());
        let g = b.build().unwrap();
        let comps = Allocation::new(1, 0, 0, 0).instantiate(&ComponentLibrary::default());
        let s = schedule(
            &g,
            &comps,
            &LogLinearWash::paper_calibrated(),
            &SchedulerConfig::paper_dcsa(),
        )
        .unwrap();
        NetList::build(&s, &g, &LogLinearWash::paper_calibrated(), 0.6, 0.4)
    }

    #[test]
    fn single_component_placement() {
        let comps = Allocation::new(1, 0, 0, 0).instantiate(&ComponentLibrary::default());
        let nets = empty_netlist();
        let p = place_sa_auto(&comps, &nets, &SaConfig::paper()).unwrap();
        assert!(p.is_legal());
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn defect_aware_placement_avoids_blocked_cells_and_pins_dead() {
        let (g, comps, s) = chain_workload();
        let nets = NetList::build(&s, &g, &LogLinearWash::paper_calibrated(), 0.6, 0.4);
        let grid = auto_grid(&comps);
        let mut defects = DefectMap::pristine();
        // Block a diagonal band through the middle of the grid.
        for i in 0..grid.width.min(grid.height) {
            defects.block_cell(CellPos::new(i, i));
        }
        defects.kill_component(ComponentId::new(2));
        let p = place_sa_with_defects(&comps, &nets, grid, &SaConfig::paper(), &defects).unwrap();
        assert!(p.is_legal());
        assert_eq!(p.defect_overlap(&defects), None);
    }

    #[test]
    fn pristine_defects_reproduce_plain_sa() {
        let (g, comps, s) = chain_workload();
        let nets = NetList::build(&s, &g, &LogLinearWash::paper_calibrated(), 0.6, 0.4);
        let grid = auto_grid(&comps);
        let cfg = SaConfig::paper().with_seed(11);
        let plain = place_sa(&comps, &nets, grid, &cfg).unwrap();
        let with =
            place_sa_with_defects(&comps, &nets, grid, &cfg, &DefectMap::pristine()).unwrap();
        assert_eq!(plain, with);
    }

    #[test]
    fn fully_blocked_grid_is_a_defect_error() {
        let comps = Allocation::new(1, 0, 0, 0).instantiate(&ComponentLibrary::default());
        let nets = empty_netlist();
        let grid = GridSpec::square(12);
        let mut defects = DefectMap::pristine();
        for y in 0..grid.height {
            for x in 0..grid.width {
                defects.block_cell(CellPos::new(x, y));
            }
        }
        let err = place_sa_with_defects(&comps, &nets, grid, &SaConfig::paper(), &defects);
        assert!(matches!(err, Err(PlaceError::DefectBlocked { .. })));
    }

    #[test]
    fn packing_fallback_handles_crowded_grids() {
        // A grid just big enough that rejection sampling may fail but
        // packing succeeds.
        let comps = Allocation::new(3, 1, 0, 0).instantiate(&ComponentLibrary::default());
        let nets = empty_netlist();
        let p = place_sa(&comps, &nets, GridSpec::square(12), &SaConfig::paper()).unwrap();
        assert!(p.is_legal());
    }
}
