//! Deterministic parallel-tempering (replica-exchange) annealing.
//!
//! Runs `K = SaConfig::chains` replicas of the paper's annealer at a
//! geometric ladder of temperatures — chain `i` at `T · ladder^i`, chain 0
//! on the nominal published schedule — and lets configurations migrate
//! between temperature slots through Metropolis replica exchange. Hot
//! chains explore, cold chains refine, and the exchange moves give the
//! cold chain access to basins the single-chain anneal would need many
//! restarts to find.
//!
//! # Determinism
//!
//! The result is **bit-identical for any `MFB_THREADS` value**, which is
//! what lets the golden suites pin it and the stage cache key it:
//!
//! * each chain owns an RNG seeded only by `(config.seed, chain index)` and
//!   steps it exclusively inside its own super-round epoch, which is a pure
//!   function of the chain's state at the round start;
//! * chains advance in fixed-size super-rounds (one temperature epoch of
//!   `i_max` proposals) through [`mfb_model::par::par_map_ordered`], which
//!   returns results in input order no matter the worker count;
//! * replica exchange runs serially between super-rounds and draws from a
//!   dedicated RNG seeded by `config.seed` alone. Exactly **one uniform is
//!   drawn per considered pair**, pairs are enumerated by schedule position
//!   (even-indexed adjacent pairs on even rounds, odd on odd rounds), so
//!   the draw sequence is a function of the schedule, never of which swaps
//!   were accepted.
//!
//! With `chains == 1` every entry point delegates to the plain
//! [`crate::sa::place_sa_budgeted`] loop, bit for bit. The serial
//! [`crate::reference::place_sa_tempered_reference`] replays the same
//! algorithm over the frozen clone-per-proposal proposer and full energy
//! recompute; `tests/tempering_equiv.rs` pins the two bitwise-equal, which
//! makes the `mfb bench` multi-thread speedup row a pure wall-clock ratio.

use crate::error::PlaceError;
use crate::floorplan::Placement;
use crate::nets::{energy_with_spacing, NetList};
use crate::sa::{initial_placement, propose_move, IncrementalEnergy, SaConfig, SaStats};
use mfb_model::par::par_map_ordered;
use mfb_model::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Weyl-sequence stride decorrelating per-chain RNG seeds.
pub(crate) const CHAIN_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Domain-separation constant for the replica-exchange RNG, so the
/// exchange stream never collides with a chain stream.
pub(crate) const EXCHANGE_SEED_XOR: u64 = 0x5EED_0E8C_4A6E_D0E5;

/// The RNG seed of tempering chain `i` under base seed `seed`.
#[inline]
#[must_use]
pub(crate) fn chain_seed(seed: u64, i: u32) -> u64 {
    seed.wrapping_add(CHAIN_SEED_STRIDE.wrapping_mul(u64::from(i)))
}

/// One tempering replica: a full annealer state pinned to a temperature
/// slot. Cloned at each super-round boundary so the parallel map's `Fn`
/// closure can step a snapshot.
#[derive(Clone)]
struct Chain<'a> {
    placement: Placement,
    energy: IncrementalEnergy<'a>,
    rng: StdRng,
    current: f64,
    best: Placement,
    best_energy: f64,
    stats: SaStats,
}

impl<'a> Chain<'a> {
    /// Runs one temperature epoch (`i_max` proposals) at temperature `t` —
    /// the exact inner loop of [`crate::sa::place_sa_budgeted`].
    fn epoch(
        &mut self,
        components: &ComponentSet,
        nets: &NetList,
        defects: &DefectMap,
        t: f64,
        i_max: u32,
    ) {
        for _ in 0..i_max {
            self.stats.proposals += 1;
            let Some(mv) = propose_move(&mut self.placement, components, &mut self.rng, defects)
            else {
                continue;
            };
            self.stats.evaluated += 1;
            self.energy.apply_move(&self.placement, &mv);
            let candidate = self.energy.total();
            debug_assert!(
                candidate == energy_with_spacing(&self.placement, nets, self.energy.spacing()),
                "incremental energy diverged from full recompute"
            );
            let delta = candidate - self.current;
            if delta < 0.0 || self.rng.gen::<f64>() < (-delta / t).exp() {
                self.stats.accepted += 1;
                self.current = candidate;
                if self.current < self.best_energy {
                    self.best_energy = self.current;
                    self.best = self.placement.clone();
                }
            } else {
                mv.undo(&mut self.placement);
                self.energy.revert();
            }
        }
    }
}

/// [`crate::sa::place_sa_with_defects`] with parallel tempering when
/// `config.chains > 1`.
///
/// # Errors
///
/// Same as [`crate::sa::place_sa_with_defects`].
pub fn place_sa_tempered(
    components: &ComponentSet,
    nets: &NetList,
    grid: GridSpec,
    config: &SaConfig,
    defects: &DefectMap,
) -> Result<Placement, PlaceError> {
    place_sa_tempered_budgeted(
        components,
        nets,
        grid,
        config,
        defects,
        &Budget::unlimited(),
    )
    .map(|(p, _)| p)
}

/// The tempered annealer under an execution [`Budget`]: `config.chains`
/// replicas stepped in super-rounds, budget polled once per round.
///
/// With `config.chains <= 1` (or fewer than two components) this **is**
/// [`crate::sa::place_sa_budgeted`] — same code path, bit-identical result —
/// so the paper configuration never pays for the machinery.
///
/// # Errors
///
/// Same as [`crate::sa::place_sa_budgeted`].
pub fn place_sa_tempered_budgeted(
    components: &ComponentSet,
    nets: &NetList,
    grid: GridSpec,
    config: &SaConfig,
    defects: &DefectMap,
    budget: &Budget,
) -> Result<(Placement, SaStats), PlaceError> {
    if config.chains <= 1 || components.len() < 2 {
        return crate::sa::place_sa_budgeted(components, nets, grid, config, defects, budget);
    }
    let k = config.chains as usize;
    let _span = mfb_obs::obs_span!(
        "place.sa.tempered",
        seed = config.seed,
        chains = config.chains as u64,
        components = components.len() as u64,
    );
    budget.check().map_err(PlaceError::Interrupted)?;

    // Every chain draws its own initial placement from its own stream, so
    // replicas start decorrelated even on crowded grids.
    let mut chains: Vec<Chain<'_>> = Vec::with_capacity(k);
    for i in 0..config.chains {
        let mut rng = StdRng::seed_from_u64(chain_seed(config.seed, i));
        let placement = initial_placement(components, grid, &mut rng, defects)?;
        let mut energy = IncrementalEnergy::new(&placement, nets, config.spacing);
        let current = energy.total();
        chains.push(Chain {
            best: placement.clone(),
            placement,
            energy,
            rng,
            current,
            best_energy: current,
            stats: SaStats::default(),
        });
    }

    let mut xrng = StdRng::seed_from_u64(config.seed ^ EXCHANGE_SEED_XOR);
    let mut t = config.t0;
    let mut rounds = 0u64;
    let mut exchange_attempts = 0u64;
    let mut exchange_accepted = 0u64;
    while t > config.t_min {
        budget.check().map_err(PlaceError::Interrupted)?;
        // Super-round: every chain runs one epoch at its slot temperature.
        // Chains are snapshotted and stepped through the ordered parallel
        // map; reassembling in input order keeps the round a pure function
        // of the round-start state for any worker count.
        let base = t;
        chains = par_map_ordered(k, |i| {
            let mut c = chains[i].clone();
            let t_i = base * config.ladder.powi(i as i32);
            c.epoch(components, nets, defects, t_i, config.i_max);
            c
        });
        // Replica exchange between adjacent temperature slots. The pair
        // schedule alternates with round parity and one uniform is drawn
        // per considered pair regardless of the outcome, so the exchange
        // RNG stream is position-determined.
        let start = (rounds % 2) as usize;
        for i in (start..k.saturating_sub(1)).step_by(2) {
            exchange_attempts += 1;
            let u: f64 = xrng.gen();
            let (t_i, t_j) = (
                base * config.ladder.powi(i as i32),
                base * config.ladder.powi(i as i32 + 1),
            );
            let (e_i, e_j) = (chains[i].current, chains[i + 1].current);
            // Metropolis replica exchange: accept with probability
            // min(1, exp((1/T_i - 1/T_j) · (E_i - E_j))).
            let log_accept = (1.0 / t_i - 1.0 / t_j) * (e_i - e_j);
            if log_accept >= 0.0 || u < log_accept.exp() {
                exchange_accepted += 1;
                // Swap the configurations between the slots; each slot
                // keeps its RNG stream and proposal counters.
                let (a, b) = chains.split_at_mut(i + 1);
                let (ci, cj) = (&mut a[i], &mut b[0]);
                std::mem::swap(&mut ci.placement, &mut cj.placement);
                std::mem::swap(&mut ci.energy, &mut cj.energy);
                std::mem::swap(&mut ci.current, &mut cj.current);
            }
        }
        t *= config.alpha;
        rounds += 1;
    }

    // Winner: the lowest best-energy over all slots, first slot on ties.
    let mut stats = SaStats::default();
    let mut winner = 0usize;
    for (i, c) in chains.iter().enumerate() {
        stats.proposals += c.stats.proposals;
        stats.evaluated += c.stats.evaluated;
        stats.accepted += c.stats.accepted;
        if c.best_energy < chains[winner].best_energy {
            winner = i;
        }
    }
    mfb_obs::obs_counter!("sa.chains", config.chains as u64);
    mfb_obs::obs_counter!("sa.epochs", rounds);
    mfb_obs::obs_counter!("sa.proposals", stats.proposals);
    mfb_obs::obs_counter!("sa.evaluated", stats.evaluated);
    mfb_obs::obs_counter!("sa.accepted", stats.accepted);
    mfb_obs::obs_counter!("sa.rejected", stats.evaluated - stats.accepted);
    mfb_obs::obs_counter!("sa.exchange.attempts", exchange_attempts);
    mfb_obs::obs_counter!("sa.exchange.accepted", exchange_accepted);
    let best = chains.swap_remove(winner).best;
    debug_assert!(best.is_legal());
    Ok((best, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::auto_grid;
    use mfb_sched::list::{schedule, SchedulerConfig};

    fn workload() -> (ComponentSet, NetList) {
        let mut b = SequencingGraph::builder();
        let d = DiffusionCoefficient::PROTEIN;
        let m = b.operation(OperationKind::Mix, Duration::from_secs(5), d);
        let h = b.operation(OperationKind::Heat, Duration::from_secs(3), d);
        let f = b.operation(OperationKind::Filter, Duration::from_secs(3), d);
        let dt = b.operation(OperationKind::Detect, Duration::from_secs(4), d);
        b.chain(&[m, h, f, dt]).unwrap();
        let g = b.build().unwrap();
        let comps = Allocation::new(1, 1, 1, 1).instantiate(&ComponentLibrary::default());
        let wash = LogLinearWash::paper_calibrated();
        let s = schedule(&g, &comps, &wash, &SchedulerConfig::paper_dcsa()).unwrap();
        let nets = NetList::build(&s, &g, &wash, 0.6, 0.4);
        (comps, nets)
    }

    #[test]
    fn single_chain_is_plain_sa() {
        let (comps, nets) = workload();
        let grid = auto_grid(&comps);
        let cfg = SaConfig::paper();
        assert_eq!(cfg.chains, 1);
        let tempered = place_sa_tempered(&comps, &nets, grid, &cfg, &DefectMap::pristine());
        let plain = crate::sa::place_sa(&comps, &nets, grid, &cfg);
        assert_eq!(tempered.unwrap(), plain.unwrap());
    }

    #[test]
    fn tempered_is_deterministic_and_legal() {
        let (comps, nets) = workload();
        let grid = auto_grid(&comps);
        let cfg = SaConfig::paper().with_chains(4);
        let a = place_sa_tempered(&comps, &nets, grid, &cfg, &DefectMap::pristine()).unwrap();
        let b = place_sa_tempered(&comps, &nets, grid, &cfg, &DefectMap::pristine()).unwrap();
        assert_eq!(a, b);
        assert!(a.is_legal());
    }

    #[test]
    fn tempered_never_loses_to_its_own_cold_chain_start() {
        // The winner is picked by best energy across chains, so the multi-
        // chain result can only match or beat the single-chain anneal with
        // the same base seed.
        let (comps, nets) = workload();
        let grid = auto_grid(&comps);
        let cfg = SaConfig::paper();
        let single = crate::sa::place_sa(&comps, &nets, grid, &cfg).unwrap();
        let multi = place_sa_tempered(
            &comps,
            &nets,
            grid,
            &cfg.with_chains(4),
            &DefectMap::pristine(),
        )
        .unwrap();
        let e = |p: &Placement| energy_with_spacing(p, &nets, cfg.spacing);
        // Not a strict invariant (exchange perturbs the cold chain's path),
        // but both must at least be legal placements of every component.
        assert_eq!(single.len(), multi.len());
        assert!(e(&multi).is_finite());
    }

    #[test]
    fn exchange_stream_is_schedule_determined() {
        // Two configs differing only in spacing produce different accept
        // patterns, yet the chain seeds and exchange seed depend only on
        // the base seed — the decorrelation constants are fixed.
        assert_eq!(chain_seed(7, 0), 7);
        assert_ne!(chain_seed(7, 1), chain_seed(7, 2));
    }

    #[test]
    fn budget_interrupts_between_rounds() {
        let (comps, nets) = workload();
        let grid = auto_grid(&comps);
        let cfg = SaConfig::paper().with_chains(3);
        let token = CancelToken::new();
        token.cancel();
        let budget = Budget::unlimited().with_cancel(token);
        let err =
            place_sa_tempered_budgeted(&comps, &nets, grid, &cfg, &DefectMap::pristine(), &budget);
        assert!(matches!(err, Err(PlaceError::Interrupted(_))));
    }
}
