//! Pre-optimization reference placer, kept verbatim for golden-equivalence
//! tests and live speedup measurement.
//!
//! [`place_sa_reference`] is the clone-per-proposal, full-recompute
//! annealing loop this crate shipped before the incremental hot path
//! landed. The optimized [`crate::sa::place_sa`] must produce a bitwise
//! identical placement for every `(workload, seed)` — the
//! `tests/perf_equiv.rs` suite asserts exactly that across the Table-I
//! benchmarks, and `mfb bench --json` times the two side by side to record
//! the SA speedup in `BENCH_synthesis.json`. Do not "improve" this module:
//! its value is being the frozen baseline.

use crate::error::PlaceError;
use crate::floorplan::{rect_avoids_defects, Placement};
use crate::nets::{energy, NetList, SpacingParams};
use crate::sa::{initial_placement, SaConfig};
use crate::tempering::{chain_seed, EXCHANGE_SEED_XOR};
use mfb_model::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The historical [`crate::sa::place_sa`]: clones the whole placement
/// before every proposal and recomputes the full Eq. (3)+spacing energy
/// after it.
///
/// # Errors
///
/// Same as [`crate::sa::place_sa`].
pub fn place_sa_reference(
    components: &ComponentSet,
    nets: &NetList,
    grid: GridSpec,
    config: &SaConfig,
) -> Result<Placement, PlaceError> {
    place_sa_reference_with_defects(components, nets, grid, config, &DefectMap::pristine())
}

/// Defect-aware variant of [`place_sa_reference`].
///
/// # Errors
///
/// Same as [`crate::sa::place_sa_with_defects`].
pub fn place_sa_reference_with_defects(
    components: &ComponentSet,
    nets: &NetList,
    grid: GridSpec,
    config: &SaConfig,
    defects: &DefectMap,
) -> Result<Placement, PlaceError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut placement = initial_placement(components, grid, &mut rng, defects)?;
    if components.len() < 2 {
        return Ok(placement); // nothing to optimise
    }

    let cost = |p: &Placement| energy_with_spacing_reference(p, nets, config.spacing);
    let mut current = cost(&placement);
    let mut best = placement.clone();
    let mut best_energy = current;
    let mut t = config.t0;
    while t > config.t_min {
        for _ in 0..config.i_max {
            let saved = placement.clone();
            if !propose(&mut placement, components, &mut rng, defects) {
                continue;
            }
            let candidate = cost(&placement);
            let delta = candidate - current;
            if delta < 0.0 || rng.gen::<f64>() < (-delta / t).exp() {
                current = candidate;
                if current < best_energy {
                    best_energy = current;
                    best = placement.clone();
                }
            } else {
                placement = saved;
            }
        }
        t *= config.alpha;
    }
    debug_assert!(best.is_legal());
    Ok(best)
}

/// Serial clone-per-proposal parallel tempering: the same replica-exchange
/// algorithm as [`crate::tempering::place_sa_tempered_budgeted`], executed
/// one chain after another over this module's frozen proposer and full
/// energy recompute. The optimized tempering loop must stay bitwise equal
/// to this function (`tests/tempering_equiv.rs`), and `mfb bench` times the
/// two side by side for the multi-thread speedup row. Do not "improve" it.
///
/// # Errors
///
/// Same as [`place_sa_reference`].
pub fn place_sa_tempered_reference(
    components: &ComponentSet,
    nets: &NetList,
    grid: GridSpec,
    config: &SaConfig,
    defects: &DefectMap,
) -> Result<Placement, PlaceError> {
    if config.chains <= 1 || components.len() < 2 {
        return place_sa_reference_with_defects(components, nets, grid, config, defects);
    }
    let k = config.chains as usize;
    let cost = |p: &Placement| energy_with_spacing_reference(p, nets, config.spacing);

    struct RefChain {
        placement: Placement,
        rng: StdRng,
        current: f64,
        best: Placement,
        best_energy: f64,
    }
    let mut chains: Vec<RefChain> = Vec::with_capacity(k);
    for i in 0..config.chains {
        let mut rng = StdRng::seed_from_u64(chain_seed(config.seed, i));
        let placement = initial_placement(components, grid, &mut rng, defects)?;
        let current = cost(&placement);
        chains.push(RefChain {
            best: placement.clone(),
            placement,
            rng,
            current,
            best_energy: current,
        });
    }

    let mut xrng = StdRng::seed_from_u64(config.seed ^ EXCHANGE_SEED_XOR);
    let mut t = config.t0;
    let mut rounds = 0u64;
    while t > config.t_min {
        for (i, c) in chains.iter_mut().enumerate() {
            let t_i = t * config.ladder.powi(i as i32);
            for _ in 0..config.i_max {
                let saved = c.placement.clone();
                if !propose(&mut c.placement, components, &mut c.rng, defects) {
                    continue;
                }
                let candidate = cost(&c.placement);
                let delta = candidate - c.current;
                if delta < 0.0 || c.rng.gen::<f64>() < (-delta / t_i).exp() {
                    c.current = candidate;
                    if c.current < c.best_energy {
                        c.best_energy = c.current;
                        c.best = c.placement.clone();
                    }
                } else {
                    c.placement = saved;
                }
            }
        }
        let start = (rounds % 2) as usize;
        for i in (start..k.saturating_sub(1)).step_by(2) {
            let u: f64 = xrng.gen();
            let t_i = t * config.ladder.powi(i as i32);
            let t_j = t * config.ladder.powi(i as i32 + 1);
            let log_accept = (1.0 / t_i - 1.0 / t_j) * (chains[i].current - chains[i + 1].current);
            if log_accept >= 0.0 || u < log_accept.exp() {
                let (a, b) = chains.split_at_mut(i + 1);
                std::mem::swap(&mut a[i].placement, &mut b[0].placement);
                std::mem::swap(&mut a[i].current, &mut b[0].current);
            }
        }
        t *= config.alpha;
        rounds += 1;
    }

    let mut winner = 0usize;
    for i in 1..k {
        if chains[i].best_energy < chains[winner].best_energy {
            winner = i;
        }
    }
    let best = chains.swap_remove(winner).best;
    debug_assert!(best.is_legal());
    Ok(best)
}

/// The historical clone-based proposer: applies one random transformation
/// operation and returns `false` when it was illegal. Draw-for-draw
/// identical to the optimized `propose_move`.
fn propose(
    placement: &mut Placement,
    components: &ComponentSet,
    rng: &mut StdRng,
    defects: &DefectMap,
) -> bool {
    let grid = placement.grid();
    let n = components.len() as u32;
    match rng.gen_range(0..3u8) {
        // Translate a component to a random position.
        0 => {
            let c = ComponentId::new(rng.gen_range(0..n));
            let r = placement.rect(c);
            let (Some(max_x), Some(max_y)) = (
                grid.width.checked_sub(r.width),
                grid.height.checked_sub(r.height),
            ) else {
                return false;
            };
            let rect = CellRect::new(
                CellPos::new(rng.gen_range(0..=max_x), rng.gen_range(0..=max_y)),
                r.width,
                r.height,
            );
            if !defects.is_dead(c) && rect_avoids_defects(rect, defects) && placement.fits(c, rect)
            {
                placement.set_rect(c, rect);
                true
            } else {
                false
            }
        }
        // Rotate a component in place.
        1 => {
            let c = ComponentId::new(rng.gen_range(0..n));
            let r = placement.rect(c);
            let rect = CellRect::new(r.origin, r.height, r.width);
            if !defects.is_dead(c) && rect_avoids_defects(rect, defects) && placement.fits(c, rect)
            {
                placement.set_rect(c, rect);
                true
            } else {
                false
            }
        }
        // Swap the origins of two components.
        _ => {
            if n < 2 {
                return false;
            }
            let a = ComponentId::new(rng.gen_range(0..n));
            let b = ComponentId::new(rng.gen_range(0..n));
            if a == b || defects.is_dead(a) || defects.is_dead(b) {
                return false;
            }
            let ra = placement.rect(a);
            let rb = placement.rect(b);
            let na = CellRect::new(rb.origin, ra.width, ra.height);
            let nb = CellRect::new(ra.origin, rb.width, rb.height);
            if !rect_avoids_defects(na, defects) || !rect_avoids_defects(nb, defects) {
                return false;
            }
            let saved = placement.clone();
            placement.set_rect(a, na);
            placement.set_rect(b, nb);
            if placement.grid().contains_rect(na)
                && placement.grid().contains_rect(nb)
                && placement.is_legal()
            {
                true
            } else {
                *placement = saved;
                false
            }
        }
    }
}

/// The spacing-extended energy exactly as the pre-optimization placer
/// computed it, with the branchy `rect_gap` of the day vendored below —
/// frozen so shared-helper speedups never leak into the baseline timing.
fn energy_with_spacing_reference(
    placement: &Placement,
    nets: &NetList,
    spacing: SpacingParams,
) -> f64 {
    let mut total = energy(placement, nets);
    if spacing.weight > 0.0 && spacing.min_gap > 0 {
        let rects = placement.rects();
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                let gap = rect_gap_reference(rects[i], rects[j]);
                if gap < spacing.min_gap {
                    let deficit = f64::from(spacing.min_gap - gap);
                    total += spacing.weight * deficit * deficit;
                }
            }
        }
    }
    total
}

/// The original branchy `crate::floorplan::rect_gap` (same values).
fn rect_gap_reference(a: CellRect, b: CellRect) -> u32 {
    let (ax2, ay2) = a.upper_right();
    let (bx2, by2) = b.upper_right();
    let hgap = if ax2 <= b.origin.x {
        b.origin.x - ax2
    } else {
        a.origin.x.saturating_sub(bx2)
    };
    let vgap = if ay2 <= b.origin.y {
        b.origin.y - ay2
    } else {
        a.origin.y.saturating_sub(by2)
    };
    hgap + vgap
}
