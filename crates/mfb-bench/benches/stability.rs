//! Seed-stability study (extension): how sensitive are the Table-I
//! headline numbers to the annealer's random seed?
//!
//! Simulated annealing is the only stochastic stage of the flow; this
//! harness re-synthesizes each benchmark across ten seeds and prints the
//! min / median / max of execution time and channel length. Execution time
//! should be perfectly stable (it is fixed at scheduling time and the
//! conflict-free router never delays); channel length may wobble with the
//! layout.

use criterion::{criterion_group, criterion_main, Criterion};
use mfb_bench::{benchmarks, wash};
use mfb_core::prelude::*;
use mfb_model::prelude::*;

const SEEDS: u64 = 10;

fn print_stability_once() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let lib = ComponentLibrary::default();
        let wash = wash();
        println!("\n=== Seed stability across {SEEDS} annealing seeds ===");
        println!(
            "{:<12} {:>22} {:>30}",
            "Benchmark", "Exec(s) min/med/max", "Channel(mm) min/med/max"
        );
        for b in benchmarks() {
            let comps = b.allocation.instantiate(&lib);
            let mut execs = Vec::new();
            let mut chans = Vec::new();
            for seed in 0..SEEDS {
                let cfg = SynthesisConfig::paper_dcsa().with_seed(0xD1CE + seed);
                match Synthesizer::new(cfg).synthesize(&b.graph, &comps, &wash) {
                    Ok(sol) => {
                        let m = SolutionMetrics::of(&sol, &comps);
                        execs.push(m.execution_time.as_secs_f64());
                        chans.push(m.channel_length_mm);
                    }
                    Err(_) => { /* counted implicitly by fewer samples */ }
                }
            }
            if execs.is_empty() {
                println!("{:<12} no routable seed", b.name);
                continue;
            }
            execs.sort_by(f64::total_cmp);
            chans.sort_by(f64::total_cmp);
            let med = |v: &[f64]| v[v.len() / 2];
            println!(
                "{:<12} {:>6.0} /{:>5.0} /{:>5.0} {:>12.0} /{:>6.0} /{:>6.0}   ({} ok)",
                b.name,
                execs[0],
                med(&execs),
                execs[execs.len() - 1],
                chans[0],
                med(&chans),
                chans[chans.len() - 1],
                execs.len()
            );
        }
        println!();
    });
}

fn bench_stability(c: &mut Criterion) {
    print_stability_once();
    // Time a representative many-seed synthesis (the whole sweep for CPA).
    let lib = ComponentLibrary::default();
    let wash = wash();
    let cpa = benchmarks().into_iter().find(|b| b.name == "CPA").unwrap();
    let comps = cpa.allocation.instantiate(&lib);
    let mut group = c.benchmark_group("stability");
    group.sample_size(10);
    group.bench_function("cpa_seed_sweep", |bench| {
        bench.iter(|| {
            (0..SEEDS)
                .filter_map(|seed| {
                    let cfg = SynthesisConfig::paper_dcsa().with_seed(0xD1CE + seed);
                    Synthesizer::new(cfg)
                        .synthesize(&cpa.graph, &comps, &wash)
                        .ok()
                })
                .count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_stability);
criterion_main!(benches);
