//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **Case-I binding** (reuse the component holding a parent fluid) —
//!   variant `no-case1` falls back to earliest-ready binding;
//! * **diffusion-aware Case-I preference** (pick the hardest-to-wash
//!   parent) — variant `case1-any` picks an arbitrary parent;
//! * **wash-aware routing weights** (Fig. 7 cell weights) — variant
//!   `no-weights` routes with uniform weights.
//!
//! Prints the quality impact per variant on the stress benchmarks, then
//! times each variant's full synthesis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mfb_bench::{benchmarks, wash};
use mfb_core::config::SynthesisConfig;
use mfb_core::prelude::*;
use mfb_model::prelude::*;
use mfb_sched::prelude::BindingRule;

fn variants() -> Vec<(&'static str, SynthesisConfig)> {
    vec![
        ("full", SynthesisConfig::paper_dcsa()),
        ("no-case1", {
            let mut c = SynthesisConfig::paper_dcsa();
            c.binding = BindingRule::EarliestReady;
            c
        }),
        ("case1-any", {
            let mut c = SynthesisConfig::paper_dcsa();
            c.binding = BindingRule::StorageAwareUnordered;
            c
        }),
        ("no-weights", {
            let mut c = SynthesisConfig::paper_dcsa();
            c.router.wash_aware_weights = false;
            c
        }),
        ("cleanup", {
            let mut c = SynthesisConfig::paper_dcsa();
            c.optimize_channels = true;
            c
        }),
    ]
}

fn print_quality_once() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let lib = ComponentLibrary::default();
        let wash = wash();
        println!("\n=== Ablation quality (CPA, Synthetic4) ===");
        println!(
            "{:<12} {:>12} {:>9} {:>9} {:>12} {:>10}",
            "Benchmark", "Variant", "Exec(s)", "Util(%)", "Channel(mm)", "Wash(s)"
        );
        for b in benchmarks()
            .into_iter()
            .filter(|b| matches!(b.name, "CPA" | "Synthetic4"))
        {
            let comps = b.allocation.instantiate(&lib);
            for (name, mut cfg) in variants() {
                // Crippled variants route worse; give them more retries so
                // the quality comparison is about solution quality, not
                // routability luck.
                cfg.max_placement_attempts = 64;
                match Synthesizer::new(cfg).synthesize(&b.graph, &comps, &wash) {
                    Ok(sol) => {
                        let m = SolutionMetrics::of(&sol, &comps);
                        println!(
                            "{:<12} {:>12} {:>9.0} {:>9.1} {:>12.0} {:>10.1}",
                            b.name,
                            name,
                            m.execution_time.as_secs_f64(),
                            m.utilization * 100.0,
                            m.channel_length_mm,
                            m.channel_wash_time.as_secs_f64()
                        );
                    }
                    Err(e) => println!(
                        "{:<12} {:>12}   unroutable even with 64 placements ({e})",
                        b.name, name
                    ),
                }
            }
        }
        println!();
    });
}

fn bench_ablation(c: &mut Criterion) {
    print_quality_once();
    let lib = ComponentLibrary::default();
    let wash = wash();
    let cpa = benchmarks().into_iter().find(|b| b.name == "CPA").unwrap();
    let comps = cpa.allocation.instantiate(&lib);
    let mut group = c.benchmark_group("ablation_cpa");
    group.sample_size(10);
    for (name, cfg) in variants() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |bench, cfg| {
            bench.iter(|| {
                Synthesizer::new(cfg.clone())
                    .synthesize(&cpa.graph, &comps, &wash)
                    .expect("synthesizes")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
