//! **Fig. 8**: total cache time in flow channels, ours vs baseline, per
//! benchmark.
//!
//! Prints the regenerated series, then times the computation that yields
//! one bar pair (full synthesis + metric extraction) on the largest
//! benchmarks, where the figure's effect is most pronounced.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mfb_bench::{benchmarks, compare_all, wash};
use mfb_core::prelude::*;
use mfb_model::prelude::*;

fn print_fig8_once() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        println!("\n=== Reproduced Fig. 8 ===");
        print!("{}", fig8_text(&compare_all()));
        println!();
    });
}

fn bench_fig8(c: &mut Criterion) {
    print_fig8_once();
    let lib = ComponentLibrary::default();
    let wash = wash();
    let mut group = c.benchmark_group("fig8_cache_time");
    group.sample_size(10);
    for b in benchmarks()
        .into_iter()
        .filter(|b| matches!(b.name, "CPA" | "Synthetic2" | "Synthetic4"))
    {
        let comps = b.allocation.instantiate(&lib);
        group.bench_with_input(BenchmarkId::from_parameter(b.name), &b, |bench, b| {
            bench.iter(|| {
                let sol = Synthesizer::paper_dcsa()
                    .synthesize(&b.graph, &comps, &wash)
                    .expect("synthesizes");
                SolutionMetrics::of(&sol, &comps).cache_time
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
