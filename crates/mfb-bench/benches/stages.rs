//! Per-stage timings of the paper flow on CPA (the largest real assay):
//! scheduling (Algorithm 1), netlist construction (Eq. (4)), placement
//! (Algorithm 2, SA), routing (Algorithm 2, time-windowed A*).

use criterion::{criterion_group, criterion_main, Criterion};
use mfb_bench::wash;
use mfb_bench_suite::table1_benchmarks;
use mfb_model::prelude::*;
use mfb_place::prelude::*;
use mfb_route::prelude::*;
use mfb_sched::prelude::*;

fn bench_stages(c: &mut Criterion) {
    let wash = wash();
    let b = table1_benchmarks()
        .into_iter()
        .find(|b| b.name == "CPA")
        .expect("CPA present");
    let comps = b.allocation.instantiate(&ComponentLibrary::default());

    let mut group = c.benchmark_group("stages_cpa");
    group.sample_size(20);

    group.bench_function("schedule_dcsa", |bench| {
        bench.iter(|| schedule(&b.graph, &comps, &wash, &SchedulerConfig::paper_dcsa()).unwrap())
    });
    group.bench_function("schedule_baseline", |bench| {
        bench
            .iter(|| schedule(&b.graph, &comps, &wash, &SchedulerConfig::paper_baseline()).unwrap())
    });

    let sched = schedule(&b.graph, &comps, &wash, &SchedulerConfig::paper_dcsa()).unwrap();
    group.bench_function("netlist", |bench| {
        bench.iter(|| NetList::build(&sched, &b.graph, &wash, 0.6, 0.4))
    });

    let nets = NetList::build(&sched, &b.graph, &wash, 0.6, 0.4);
    group.bench_function("place_sa", |bench| {
        bench.iter(|| place_sa_auto(&comps, &nets, &SaConfig::paper()).unwrap())
    });
    group.bench_function("place_constructive", |bench| {
        bench.iter(|| place_constructive(&comps, &nets, auto_grid(&comps)).unwrap())
    });

    let placement = place_sa_auto(&comps, &nets, &SaConfig::paper()).unwrap();
    group.bench_function("route_dcsa", |bench| {
        bench.iter(|| {
            route_dcsa(&sched, &b.graph, &placement, &wash, &RouterConfig::paper()).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
