//! **Fig. 9**: total wash time of flow channels, ours vs baseline, per
//! benchmark.
//!
//! Prints the regenerated series, then times the wash-accounting path
//! (synthesis + channel-wash aggregation) on the wash-heavy benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mfb_bench::{benchmarks, compare_all, wash};
use mfb_core::prelude::*;
use mfb_model::prelude::*;

fn print_fig9_once() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        println!("\n=== Reproduced Fig. 9 ===");
        print!("{}", fig9_text(&compare_all()));
        println!();
    });
}

fn bench_fig9(c: &mut Criterion) {
    print_fig9_once();
    let lib = ComponentLibrary::default();
    let wash = wash();
    let mut group = c.benchmark_group("fig9_wash_time");
    group.sample_size(10);
    for b in benchmarks()
        .into_iter()
        .filter(|b| matches!(b.name, "CPA" | "Synthetic3" | "Synthetic4"))
    {
        let comps = b.allocation.instantiate(&lib);
        group.bench_with_input(BenchmarkId::from_parameter(b.name), &b, |bench, b| {
            bench.iter(|| {
                let sol = Synthesizer::paper_baseline()
                    .synthesize(&b.graph, &comps, &wash)
                    .expect("synthesizes");
                sol.routing.total_channel_wash_time()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
