//! Scalability study (extension beyond the paper): how synthesis cost and
//! solution quality scale with assay size, 10 → 80 operations.
//!
//! Prints the quality table once, then times full synthesis per size so
//! criterion tracks the runtime growth curve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mfb_bench::wash;
use mfb_bench_suite::families::scalability_series;
use mfb_core::prelude::*;
use mfb_model::prelude::*;

fn print_scalability_once() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let lib = ComponentLibrary::default();
        let wash = wash();
        println!("\n=== Scalability (extension) ===");
        println!(
            "{:>5} {:>12} {:>9} {:>9} {:>12} {:>10}",
            "Ops", "Alloc", "Exec(s)", "Util(%)", "Channel(mm)", "Wall(ms)"
        );
        for (g, alloc) in scalability_series() {
            let comps = alloc.instantiate(&lib);
            let t0 = std::time::Instant::now();
            match Synthesizer::paper_dcsa().synthesize(&g, &comps, &wash) {
                Ok(sol) => {
                    let wall = t0.elapsed().as_secs_f64() * 1e3;
                    let m = SolutionMetrics::of(&sol, &comps);
                    println!(
                        "{:>5} {:>12} {:>9.0} {:>9.1} {:>12.0} {:>10.1}",
                        g.len(),
                        alloc.to_string(),
                        m.execution_time.as_secs_f64(),
                        m.utilization * 100.0,
                        m.channel_length_mm,
                        wall
                    );
                }
                Err(_) => {
                    // Beyond the conflict-free router's concurrency
                    // ceiling: fall back to the delay-tolerant baseline
                    // flow, which postpones transports instead of failing.
                    match Synthesizer::paper_baseline().synthesize(&g, &comps, &wash) {
                        Ok(sol) => {
                            let wall = t0.elapsed().as_secs_f64() * 1e3;
                            let m = SolutionMetrics::of(&sol, &comps);
                            println!(
                                "{:>5} {:>12} {:>9.0} {:>9.1} {:>12.0} {:>10.1}  (delay-tolerant fallback, +{:.0}s delay)",
                                g.len(),
                                alloc.to_string(),
                                m.execution_time.as_secs_f64(),
                                m.utilization * 100.0,
                                m.channel_length_mm,
                                wall,
                                m.total_delay.as_secs_f64()
                            );
                        }
                        Err(e) => println!("{:>5} {:>12}   failed: {e}", g.len(), alloc.to_string()),
                    }
                }
            }
        }
        println!();
    });
}

fn bench_scalability(c: &mut Criterion) {
    print_scalability_once();
    let lib = ComponentLibrary::default();
    let wash = wash();
    let mut group = c.benchmark_group("scalability_synthesis");
    group.sample_size(10);
    for (g, alloc) in scalability_series() {
        // Skip sizes that cannot route within the retry budget; the quality
        // table above reports them.
        let comps = alloc.instantiate(&lib);
        if Synthesizer::paper_dcsa()
            .synthesize(&g, &comps, &wash)
            .is_err()
        {
            continue;
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(g.len()),
            &(g, comps),
            |bench, (g, comps)| {
                bench.iter(|| {
                    Synthesizer::paper_dcsa()
                        .synthesize(g, comps, &wash)
                        .expect("synthesizes")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
