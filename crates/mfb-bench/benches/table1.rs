//! **Table I**: execution time, resource utilization, total channel length
//! and CPU time for every benchmark under both flows.
//!
//! The harness first prints the regenerated table (the paper's rows), then
//! times full synthesis per benchmark per flow — the timing *is* the
//! table's CPU-time column pair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mfb_bench::{benchmarks, compare_all, wash};
use mfb_core::prelude::*;
use mfb_model::prelude::*;

fn print_table1_once() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        println!("\n=== Reproduced Table I ===");
        print!("{}", table1_text(&compare_all()));
        println!();
    });
}

fn bench_table1(c: &mut Criterion) {
    print_table1_once();
    let lib = ComponentLibrary::default();
    let wash = wash();
    let mut group = c.benchmark_group("table1_synthesis");
    group.sample_size(10);
    for b in benchmarks() {
        let comps = b.allocation.instantiate(&lib);
        group.bench_with_input(BenchmarkId::new("ours", b.name), &b, |bench, b| {
            bench.iter(|| {
                Synthesizer::paper_dcsa()
                    .synthesize(&b.graph, &comps, &wash)
                    .expect("synthesizes")
            })
        });
        group.bench_with_input(BenchmarkId::new("ba", b.name), &b, |bench, b| {
            bench.iter(|| {
                Synthesizer::paper_baseline()
                    .synthesize(&b.graph, &comps, &wash)
                    .expect("synthesizes")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
