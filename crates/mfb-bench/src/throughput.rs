//! Batch-throughput axis of the tracked baseline: **assays per second**,
//! cold cache versus warm cache.
//!
//! The workload is every Table-I benchmark plus a seed-perturbed variant
//! of each (the "same assay, new annealing seed" shape a screening
//! campaign produces). A *cold* run drains that batch through a fresh
//! [`StageCache`]; a *warm* run drains the identical batch through the
//! cache the cold run populated, so every stage is a hit and the measured
//! time is pure lookup-and-fold overhead. Both numbers are best-of-`repeats`
//! wall times via [`mfb_batch::executor::run_batch`], and the warm run's
//! solutions are compared byte-for-byte against the cold run's
//! ([`ThroughputReport::warm_identical`]) so a cache bug can never
//! masquerade as a speedup.
//!
//! Unlike the kernel timings in [`crate::perf`], these measurements are
//! deliberately run under the ambient `MFB_THREADS` limit — pipelining
//! across workers is the thing being measured.

use mfb_batch::prelude::*;
use mfb_core::prelude::*;
use mfb_model::prelude::*;
use serde::Serialize;

/// The cold-vs-warm batch measurement, serialized into
/// `BENCH_synthesis.json` as the `batch` section.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputReport {
    /// Worker threads the batches ran with (`MFB_THREADS`-capped).
    pub threads: usize,
    /// Jobs per batch (Table I plus one perturbed variant each).
    pub jobs: usize,
    /// Best cold-cache wall time, seconds.
    pub cold_seconds: f64,
    /// Cold-cache throughput, assays per second.
    pub cold_assays_per_sec: f64,
    /// Best warm-cache wall time, seconds.
    pub warm_seconds: f64,
    /// Warm-cache throughput, assays per second.
    pub warm_assays_per_sec: f64,
    /// `warm_assays_per_sec / cold_assays_per_sec`.
    pub warm_speedup: f64,
    /// Whether every warm solution was byte-identical to its cold
    /// counterpart. Anything but `true` is a cache defect.
    pub warm_identical: bool,
    /// Cache counters accumulated by the last cold batch.
    pub cold_cache: CacheStats,
    /// Cache counters accumulated by the last warm batch.
    pub warm_cache: CacheStats,
}

/// The throughput workload: each Table-I benchmark under the paper flow,
/// plus a seed-perturbed variant of each. The variant re-anneals placement
/// but shares the schedule and netlist stages with its base job, so even a
/// cold batch exercises intra-batch cache sharing.
pub fn perturbed_table1_jobs() -> Vec<BatchJob> {
    let lib = ComponentLibrary::default();
    let mut jobs = Vec::new();
    for b in mfb_bench_suite::table1_benchmarks() {
        let comps = b.components(&lib);
        jobs.push(BatchJob::new(
            b.name,
            b.graph.clone(),
            comps.clone(),
            SynthesisConfig::paper_dcsa(),
        ));
        jobs.push(BatchJob::new(
            format!("{}+seed7", b.name),
            b.graph,
            comps,
            SynthesisConfig::paper_dcsa().with_seed(7),
        ));
    }
    jobs
}

fn solutions_json(run: &BatchRun) -> Vec<String> {
    run.solutions
        .iter()
        .map(|r| match r {
            Ok(s) => serde_json::to_string(s).expect("Solution serializes"),
            Err(e) => format!("error: {e}"),
        })
        .collect()
}

/// Measures the batch workload cold and warm, best-of-`repeats` each.
pub fn throughput_report(repeats: u32) -> ThroughputReport {
    let jobs = perturbed_table1_jobs();
    let repeats = repeats.max(1);

    // Cold: a fresh cache per repeat. Keep the last repeat's cache (and
    // solutions) as the warm run's starting point and golden reference.
    let mut cold_best = f64::INFINITY;
    let mut cold_run = None;
    let mut cache = StageCache::new();
    for _ in 0..repeats {
        cache = StageCache::new();
        let run = run_batch(&jobs, &cache);
        cold_best = cold_best.min(run.report.wall_seconds);
        cold_run = Some(run);
    }
    let cold_run = cold_run.expect("repeats >= 1");
    let cold_json = solutions_json(&cold_run);

    // Warm: the same batch over the populated cache.
    let mut warm_best = f64::INFINITY;
    let mut warm_run = None;
    for _ in 0..repeats {
        let run = run_batch(&jobs, &cache);
        warm_best = warm_best.min(run.report.wall_seconds);
        warm_run = Some(run);
    }
    let warm_run = warm_run.expect("repeats >= 1");
    let warm_identical = solutions_json(&warm_run) == cold_json;

    let n = jobs.len();
    ThroughputReport {
        threads: cold_run.report.threads,
        jobs: n,
        cold_seconds: cold_best,
        cold_assays_per_sec: n as f64 / cold_best.max(1e-9),
        warm_seconds: warm_best,
        warm_assays_per_sec: n as f64 / warm_best.max(1e-9),
        warm_speedup: cold_best / warm_best.max(1e-9),
        warm_identical,
        cold_cache: cold_run.report.cache,
        warm_cache: warm_run.report.cache,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_workload_pairs_every_benchmark_with_a_variant() {
        let jobs = perturbed_table1_jobs();
        assert_eq!(jobs.len(), 2 * mfb_bench_suite::table1_benchmarks().len());
        for pair in jobs.chunks(2) {
            assert_eq!(
                pair[0].schedule_key(),
                pair[1].schedule_key(),
                "{}: the seed variant must share its base job's schedule",
                pair[0].name
            );
        }
    }
}
