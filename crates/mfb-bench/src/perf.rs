//! Tracked performance baseline: times the optimized hot paths against the
//! frozen pre-optimization references on every Table-I benchmark.
//!
//! `mfb bench --json` serializes a [`PerfReport`] to `BENCH_synthesis.json`
//! and CI uploads it, so the SA and routing speedups are tracked per
//! commit. Each row times the incremental-energy annealer against
//! [`mfb_place::reference::place_sa_reference`] and the arena-backed router
//! against [`mfb_route::reference::route_dcsa_reference`] on identical
//! inputs. The golden-equivalence suites (`crates/*/tests/perf_equiv.rs`)
//! guarantee both sides of each pair compute bitwise-identical results, so
//! the ratio is a pure hot-path speedup, not an accuracy trade.
//!
//! The per-benchmark kernel rows are deliberately **serial**: timing under
//! the deterministic thread fan-out would attribute scheduler noise to the
//! kernels. Two extra axes measure what the rows exclude: [`TemperedPerf`]
//! times the parallel-tempering annealer (`chains` replicas under the
//! ambient `MFB_THREADS` fan-out, CI pins 8) against its frozen serial
//! reference, and [`DenseRoutePerf`] runs the 100-op Synthetic5 rung where
//! the negotiated-congestion router's routability is the product.

use std::time::Instant as WallClock; // the model prelude has its own Instant

use mfb_bench_suite::{dense_benchmark, table1_benchmarks};
use mfb_core::flow::Synthesizer;
use mfb_model::prelude::*;
use mfb_place::prelude::*;
use mfb_place::reference::place_sa_reference;
use mfb_route::prelude::*;
use mfb_route::reference::route_dcsa_reference;
use mfb_sched::list::{schedule, SchedulerConfig};
use serde::Serialize;

/// Timings and counters for one Table-I benchmark.
///
/// All wall times are best-of-`repeats` in milliseconds; rates come from
/// the best timed run, so they are lower bounds on sustained throughput.
#[derive(Debug, Clone, Serialize)]
pub struct PerfRow {
    /// Benchmark name (Table I).
    pub benchmark: String,
    /// Operations in the sequencing graph.
    pub ops: usize,
    /// Devices placed (the size that drives both timed hot paths).
    pub components: usize,
    /// List-scheduling wall time.
    pub schedule_ms: f64,
    /// Optimized (incremental-energy) SA placement wall time.
    pub sa_ms: f64,
    /// Frozen clone-per-proposal reference SA wall time.
    pub sa_reference_ms: f64,
    /// `sa_reference_ms / sa_ms`.
    pub sa_speedup: f64,
    /// Annealing proposals made by one SA run.
    pub sa_proposals: u64,
    /// Proposals per second of the optimized SA.
    pub sa_proposals_per_sec: f64,
    /// Optimized (arena-backed) DCSA routing wall time.
    pub route_ms: f64,
    /// Frozen per-query-allocation reference routing wall time.
    pub route_reference_ms: f64,
    /// `route_reference_ms / route_ms`.
    pub route_speedup: f64,
    /// Whether routing succeeds on the timed grid. The timed grid mirrors
    /// the synthesis flow: `auto_grid`, grown 4/3-linear per step (≤ 3
    /// steps) until the DCSA router succeeds — Synthetic4 needs one step.
    /// When no grown grid routes, timings fall back to the base grid and
    /// both routers do the same search work up to the identical error.
    pub route_ok: bool,
    /// A* / Dijkstra queries issued by one routing run.
    pub astar_queries: u64,
    /// Heap pops expanded by one routing run.
    pub astar_expansions: u64,
    /// Expansions per second of the optimized router.
    pub astar_expansions_per_sec: f64,
    /// Parked-path window retries performed by one routing run.
    pub window_retries: u64,
    /// Rip-up evictions performed by one routing run.
    pub rips: u64,
    /// Negotiation sweeps run (0: the row kernel is the DCSA router; the
    /// negotiated router is timed on the [`DenseRoutePerf`] axis).
    pub negotiation_iters: u64,
    /// Worker threads the row's kernels ran under. Always 1: the kernel
    /// rows are timed serially by design (see the module docs); the
    /// multi-thread axis is [`TemperedPerf`].
    pub kernel_threads: usize,
}

/// The multi-thread flagship axis: the parallel-tempering annealer
/// (`chains` replicas fanned out over `threads` workers) against the
/// frozen serial tempered reference on identical inputs.
/// `tests/tempering_equiv.rs` pins both sides bitwise-identical for any
/// `MFB_THREADS`, so the ratio is pure wall-clock, not an accuracy trade.
#[derive(Debug, Clone, Serialize)]
pub struct TemperedPerf {
    /// The benchmark timed (the headline flagship).
    pub benchmark: String,
    /// Tempering chains (replicas) on both sides of the ratio.
    pub chains: u32,
    /// Worker threads the optimized side fanned out over: the ambient
    /// `MFB_THREADS` limit capped at `chains`. CI pins `MFB_THREADS=8`.
    pub threads: usize,
    /// Optimized (incremental-energy, parallel super-round) wall time.
    pub sa_ms: f64,
    /// Frozen serial clone-per-proposal tempered reference wall time.
    pub sa_reference_ms: f64,
    /// `sa_reference_ms / sa_ms` — the CI multi-thread gate reads this.
    pub sa_speedup: f64,
}

/// The dense routability axis: the 100-op Synthetic5 rung, where channel
/// congestion concentrates on the fixed-size component access rings and
/// the negotiated-congestion router has to resolve it. Routability here is
/// the product; the wall times are tracked alongside for regressions.
#[derive(Debug, Clone, Serialize)]
pub struct DenseRoutePerf {
    /// The dense benchmark's name (`"Synthetic5"`).
    pub benchmark: String,
    /// Operations in the assay.
    pub ops: usize,
    /// Transport tasks routed.
    pub transports: usize,
    /// Cells of the grid both routers were timed on.
    pub grid_cells: u64,
    /// Whether the negotiated router routes the rung (the acceptance bar).
    pub negotiated_ok: bool,
    /// Whether serial DCSA routes the same grid.
    pub dcsa_ok: bool,
    /// Negotiated-congestion routing wall time.
    pub negotiated_ms: f64,
    /// Serial DCSA routing wall time on the same inputs.
    pub dcsa_ms: f64,
    /// Negotiation sweeps the negotiated run needed.
    pub negotiation_iters: u64,
    /// Parked-path window retries of the negotiated run.
    pub window_retries: u64,
    /// Rip-up evictions of the negotiated run (non-zero only when it had
    /// to fall back to the serial conflict-aware router).
    pub rips: u64,
}

/// The headline numbers the PR acceptance gate reads: speedups on the
/// largest benchmark whose routing succeeds on a bare SA placement.
#[derive(Debug, Clone, Serialize)]
pub struct PerfHeadline {
    /// The benchmark the headline speedups come from.
    pub benchmark: String,
    /// SA speedup on that benchmark.
    pub sa_speedup: f64,
    /// Routing speedup on that benchmark.
    pub route_speedup: f64,
}

/// The full tracked baseline, serialized to `BENCH_synthesis.json`.
#[derive(Debug, Clone, Serialize)]
pub struct PerfReport {
    /// Timed repetitions per measurement (best-of).
    pub repeats: u32,
    /// The `MFB_THREADS` worker limit the batch axis ran under (the kernel
    /// rows are serial by design; see the module docs).
    pub threads: usize,
    /// Physical cores available to the run. Worker pools cap at this, so
    /// when `cores < threads` the multi-thread axes are core-bound — the
    /// tempered CI gate assumes the multi-core CI runners.
    pub cores: usize,
    /// Headline speedups (largest routable benchmark).
    pub headline: PerfHeadline,
    /// One row per Table-I benchmark.
    pub rows: Vec<PerfRow>,
    /// The multi-thread parallel-tempering axis on the flagship benchmark.
    pub tempered: TemperedPerf,
    /// The dense Synthetic5 routability axis.
    pub dense: DenseRoutePerf,
    /// Per-stage span timings from one traced end-to-end synthesis of the
    /// flagship benchmark (the `mfb-obs` observability axis). Empty when
    /// the `obs-trace` feature is compiled out.
    pub stage_trace: Vec<mfb_obs::StageSummary>,
    /// Counter totals (SA proposals, A* expansions, window retries, ...)
    /// from the same traced run.
    pub trace_counters: Vec<mfb_obs::CounterTotal>,
    /// The batch-throughput axis: assays/sec cold vs warm cache
    /// (see [`crate::throughput`]).
    pub batch: crate::throughput::ThroughputReport,
}

/// Runs `f` `repeats` times and returns (best wall seconds, last result).
fn best_of<R>(repeats: u32, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..repeats.max(1) {
        let start = WallClock::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("repeats >= 1"))
}

/// Times `f` and `g` back to back, `repeats` times, returning each side's
/// best wall seconds (plus `f`'s last result). Interleaving the pair keeps
/// a transient load spike from landing entirely on one side of a speedup
/// ratio, which block-timing each side is prone to.
fn best_of_pair<R>(repeats: u32, mut f: impl FnMut() -> R, mut g: impl FnMut()) -> (f64, f64, R) {
    let mut best_f = f64::INFINITY;
    let mut best_g = f64::INFINITY;
    let mut out = None;
    for _ in 0..repeats.max(1) {
        let start = WallClock::now();
        let r = f();
        best_f = best_f.min(start.elapsed().as_secs_f64());
        out = Some(r);
        let start = WallClock::now();
        g();
        best_g = best_g.min(start.elapsed().as_secs_f64());
    }
    (best_f, best_g, out.expect("repeats >= 1"))
}

/// The grid the synthesis flow would route this benchmark on: the base
/// `auto_grid`, enlarged by the recovery ladder's 4/3-linear growth steps
/// until the DCSA router succeeds on the SA placement (max 3 steps, the
/// default ladder budget). Returns the grid and whether routing succeeded.
fn routable_grid(
    comps: &ComponentSet,
    nets: &mfb_place::prelude::NetList,
    sa_cfg: &SaConfig,
    s: &mfb_sched::prelude::Schedule,
    graph: &SequencingGraph,
    wash: &dyn WashModel,
    router_cfg: &RouterConfig,
) -> (GridSpec, bool) {
    let base = auto_grid(comps);
    for step in 0..=3u32 {
        let f = 4u64.pow(step);
        let d = 3u64.pow(step);
        let side = |v: u32| ((u64::from(v) * f / d).min(u64::from(u32::MAX)) as u32).max(v);
        let grid = GridSpec::new(side(base.width), side(base.height), base.pitch_mm);
        let Ok(p) = place_sa(comps, nets, grid, sa_cfg) else {
            continue;
        };
        let mut scratch = SearchScratch::new();
        if route_dcsa_with_scratch(
            s,
            graph,
            &p,
            wash,
            router_cfg,
            &DefectMap::pristine(),
            &mut scratch,
        )
        .is_ok()
        {
            return (grid, true);
        }
    }
    (base, false)
}

fn ms(seconds: f64) -> f64 {
    seconds * 1e3
}

/// Per-second rate of `count` events in `seconds`, 0 when unmeasurable.
fn rate(count: u64, seconds: f64) -> f64 {
    if seconds > 0.0 {
        count as f64 / seconds
    } else {
        0.0
    }
}

/// Times every Table-I benchmark, best-of-`repeats` per measurement.
pub fn perf_report(repeats: u32) -> PerfReport {
    let lib = ComponentLibrary::default();
    let wash = LogLinearWash::paper_calibrated();
    let sa_cfg = SaConfig::paper();
    let router_cfg = RouterConfig::paper();

    let rows: Vec<PerfRow> = table1_benchmarks()
        .iter()
        .map(|b| {
            let comps = b.components(&lib);
            let (sched_s, s) = best_of(repeats, || {
                schedule(&b.graph, &comps, &wash, &SchedulerConfig::paper_dcsa())
                    .expect("Table-I benchmarks schedule")
            });
            let nets = NetList::build(&s, &b.graph, &wash, 0.6, 0.4);
            let (grid, route_ok) =
                routable_grid(&comps, &nets, &sa_cfg, &s, &b.graph, &wash, &router_cfg);

            let (sa_s, sa_ref_s, (p, sa_stats)) = best_of_pair(
                repeats,
                || {
                    place_sa_with_stats(&comps, &nets, grid, &sa_cfg)
                        .expect("Table-I benchmarks place")
                },
                || {
                    place_sa_reference(&comps, &nets, grid, &sa_cfg)
                        .expect("Table-I benchmarks place");
                },
            );

            let mut route_stats = SearchStats::default();
            let (route_s, route_ref_s, ()) = best_of_pair(
                repeats,
                || {
                    let mut scratch = SearchScratch::new();
                    let _ = route_dcsa_with_scratch(
                        &s,
                        &b.graph,
                        &p,
                        &wash,
                        &router_cfg,
                        &DefectMap::pristine(),
                        &mut scratch,
                    );
                    route_stats = scratch.stats;
                },
                || {
                    let _ = route_dcsa_reference(&s, &b.graph, &p, &wash, &router_cfg);
                },
            );

            PerfRow {
                benchmark: b.name.to_string(),
                ops: b.graph.len(),
                components: comps.len(),
                schedule_ms: ms(sched_s),
                sa_ms: ms(sa_s),
                sa_reference_ms: ms(sa_ref_s),
                sa_speedup: sa_ref_s / sa_s,
                sa_proposals: sa_stats.proposals,
                sa_proposals_per_sec: rate(sa_stats.proposals, sa_s),
                route_ms: ms(route_s),
                route_reference_ms: ms(route_ref_s),
                route_speedup: route_ref_s / route_s,
                route_ok,
                astar_queries: route_stats.queries,
                astar_expansions: route_stats.expansions,
                astar_expansions_per_sec: rate(route_stats.expansions, route_s),
                window_retries: route_stats.window_retries,
                rips: route_stats.rips,
                negotiation_iters: route_stats.negotiation_iters,
                kernel_threads: 1,
            }
        })
        .collect();

    // "Largest" by the size that drives the timed hot paths: devices placed
    // (and so netlist pairs and routing grid area), tie-broken on ops.
    let flagship = rows
        .iter()
        .filter(|r| r.route_ok)
        .max_by_key(|r| (r.components, r.ops))
        .or_else(|| rows.iter().max_by_key(|r| (r.components, r.ops)))
        .expect("Table I is non-empty");
    let headline = PerfHeadline {
        benchmark: flagship.benchmark.clone(),
        sa_speedup: flagship.sa_speedup,
        route_speedup: flagship.route_speedup,
    };

    let (stage_trace, trace_counters) = traced_flagship(&headline.benchmark);
    let tempered = tempered_perf(repeats, &headline.benchmark);
    let dense = dense_perf(repeats);

    PerfReport {
        repeats,
        threads: mfb_model::par::thread_limit().max(1),
        cores: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        headline,
        rows,
        tempered,
        dense,
        stage_trace,
        trace_counters,
        batch: crate::throughput::throughput_report(repeats),
    }
}

/// Times the parallel-tempering annealer against the frozen serial
/// tempered reference on `benchmark` (the flagship). Eight chains — the
/// tracked configuration — under whatever `MFB_THREADS` fan-out is
/// ambient, so CI controls the thread axis from the job environment.
fn tempered_perf(repeats: u32, benchmark: &str) -> TemperedPerf {
    use mfb_place::reference::place_sa_tempered_reference;

    const CHAINS: u32 = 8;
    let lib = ComponentLibrary::default();
    let wash = LogLinearWash::paper_calibrated();
    let benchmarks = table1_benchmarks();
    let b = benchmarks
        .iter()
        .find(|b| b.name == benchmark)
        .unwrap_or_else(|| benchmarks.last().expect("Table I is non-empty"));
    let comps = b.components(&lib);
    let s = schedule(&b.graph, &comps, &wash, &SchedulerConfig::paper_dcsa())
        .expect("Table-I benchmarks schedule");
    let nets = NetList::build(&s, &b.graph, &wash, 0.6, 0.4);
    let sa_cfg = SaConfig::paper().with_chains(CHAINS);
    let router_cfg = RouterConfig::paper();
    let (grid, _) = routable_grid(
        &comps,
        &nets,
        &SaConfig::paper(),
        &s,
        &b.graph,
        &wash,
        &router_cfg,
    );

    let (sa_s, sa_ref_s, _) = best_of_pair(
        repeats,
        || {
            place_sa_tempered(&comps, &nets, grid, &sa_cfg, &DefectMap::pristine())
                .expect("flagship places")
        },
        || {
            place_sa_tempered_reference(&comps, &nets, grid, &sa_cfg, &DefectMap::pristine())
                .expect("flagship places");
        },
    );
    TemperedPerf {
        benchmark: b.name.to_string(),
        chains: CHAINS,
        threads: mfb_model::par::thread_limit().max(1).min(CHAINS as usize),
        sa_ms: ms(sa_s),
        sa_reference_ms: ms(sa_ref_s),
        sa_speedup: sa_ref_s / sa_s,
    }
}

/// Times the negotiated-congestion router against serial DCSA on the dense
/// Synthetic5 rung, on the smallest recovery-ladder grid DCSA routes.
fn dense_perf(repeats: u32) -> DenseRoutePerf {
    let lib = ComponentLibrary::default();
    let wash = LogLinearWash::paper_calibrated();
    let b = dense_benchmark();
    let comps = b.components(&lib);
    let sa_cfg = SaConfig::paper();
    let router_cfg = RouterConfig::paper();
    let s = schedule(&b.graph, &comps, &wash, &SchedulerConfig::paper_dcsa())
        .expect("Synthetic5 schedules");
    let nets = NetList::build(&s, &b.graph, &wash, 0.6, 0.4);
    let (grid, dcsa_ladder_ok) =
        routable_grid(&comps, &nets, &sa_cfg, &s, &b.graph, &wash, &router_cfg);
    let p = place_sa(&comps, &nets, grid, &sa_cfg).expect("Synthetic5 places on its ladder grid");

    let mut negotiated_ok = false;
    let mut dcsa_ok = dcsa_ladder_ok;
    let mut stats = SearchStats::default();
    let (neg_s, dcsa_s, ()) = best_of_pair(
        repeats,
        || {
            let mut scratch = SearchScratch::new();
            negotiated_ok = route_negotiated_with_scratch(
                &s,
                &b.graph,
                &p,
                &wash,
                &router_cfg,
                &DefectMap::pristine(),
                &mut scratch,
            )
            .is_ok();
            stats = scratch.stats;
        },
        || {
            let mut scratch = SearchScratch::new();
            dcsa_ok = route_dcsa_with_scratch(
                &s,
                &b.graph,
                &p,
                &wash,
                &router_cfg,
                &DefectMap::pristine(),
                &mut scratch,
            )
            .is_ok();
        },
    );
    DenseRoutePerf {
        benchmark: b.name.to_string(),
        ops: b.graph.len(),
        transports: s.transports().count(),
        grid_cells: u64::from(grid.width) * u64::from(grid.height),
        negotiated_ok,
        dcsa_ok,
        negotiated_ms: ms(neg_s),
        dcsa_ms: ms(dcsa_s),
        negotiation_iters: stats.negotiation_iters,
        window_retries: stats.window_retries,
        rips: stats.rips,
    }
}

/// Runs one end-to-end DCSA synthesis of `benchmark` with an `mfb-obs`
/// collector installed and aggregates the trace into per-stage timings and
/// counter totals. This is the only traced measurement in the report — the
/// kernel rows above run with tracing runtime-disabled, so they double as
/// the "disabled tracing costs one branch" perf gate.
fn traced_flagship(benchmark: &str) -> (Vec<mfb_obs::StageSummary>, Vec<mfb_obs::CounterTotal>) {
    let lib = ComponentLibrary::default();
    let wash = LogLinearWash::paper_calibrated();
    let benchmarks = table1_benchmarks();
    let Some(b) = benchmarks.iter().find(|b| b.name == benchmark) else {
        return (Vec::new(), Vec::new());
    };
    let comps = b.components(&lib);
    let collector = mfb_obs::TraceCollector::new();
    {
        let _guard = mfb_obs::install(&collector);
        let _ = Synthesizer::paper_dcsa().synthesize(&b.graph, &comps, &wash);
    }
    let trace = collector.finish();
    (
        mfb_obs::stage_summaries(&trace.events),
        mfb_obs::counter_totals(&trace.events),
    )
}

/// Plain-text rendering of a [`PerfReport`] for terminal use.
pub fn perf_text(report: &PerfReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>4} {:>5} {:>9} {:>9} {:>9} {:>8} {:>11} {:>9} {:>9} {:>8} {:>11}",
        "benchmark",
        "ops",
        "comps",
        "sched_ms",
        "sa_ms",
        "sa_ref",
        "sa_x",
        "prop/s",
        "route_ms",
        "route_ref",
        "route_x",
        "expand/s"
    );
    for r in &report.rows {
        let _ = writeln!(
            out,
            "{:<12} {:>4} {:>5} {:>9.2} {:>9.2} {:>9.2} {:>7.2}x {:>11.0} {:>9.2} {:>9.2} {:>7.2}x {:>11.0}{}",
            r.benchmark,
            r.ops,
            r.components,
            r.schedule_ms,
            r.sa_ms,
            r.sa_reference_ms,
            r.sa_speedup,
            r.sa_proposals_per_sec,
            r.route_ms,
            r.route_reference_ms,
            r.route_speedup,
            r.astar_expansions_per_sec,
            if r.route_ok { "" } else { "  (route err)" }
        );
    }
    let _ = writeln!(
        out,
        "headline ({}): SA {:.2}x, routing {:.2}x (best of {})",
        report.headline.benchmark,
        report.headline.sa_speedup,
        report.headline.route_speedup,
        report.repeats
    );
    let t = &report.tempered;
    let _ = writeln!(
        out,
        "tempered ({}, {} chains, {} threads): {:.2} ms vs reference {:.2} ms ({:.2}x)",
        t.benchmark, t.chains, t.threads, t.sa_ms, t.sa_reference_ms, t.sa_speedup
    );
    let d = &report.dense;
    let _ = writeln!(
        out,
        "dense ({}, {} ops, {} transports, {} cells): negotiated {:.2} ms \
         ({} sweeps){}, dcsa {:.2} ms{}",
        d.benchmark,
        d.ops,
        d.transports,
        d.grid_cells,
        d.negotiated_ms,
        d.negotiation_iters,
        if d.negotiated_ok { "" } else { " UNROUTABLE" },
        d.dcsa_ms,
        if d.dcsa_ok { "" } else { " UNROUTABLE" }
    );
    let b = &report.batch;
    let _ = writeln!(
        out,
        "batch ({} jobs, {} threads): cold {:.2} assays/s, warm {:.2} assays/s \
         ({:.1}x, {} cache hits){}",
        b.jobs,
        b.threads,
        b.cold_assays_per_sec,
        b.warm_assays_per_sec,
        b.warm_speedup,
        b.warm_cache.hits(),
        if b.warm_identical {
            ""
        } else {
            "  WARM OUTPUT DIVERGED"
        }
    );
    if !report.stage_trace.is_empty() {
        let _ = writeln!(out, "traced flagship ({}):", report.headline.benchmark);
        for s in &report.stage_trace {
            let _ = writeln!(
                out,
                "  {:<18} {:>5} spans  total {:>9.3} ms  max {:>9.3} ms",
                s.name, s.count, s.total_ms, s.max_ms
            );
        }
        for c in &report.trace_counters {
            let _ = writeln!(out, "  {:<18} {:>12}", c.name, c.total);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_report_covers_every_benchmark_with_positive_speedups() {
        let r = perf_report(1);
        assert_eq!(r.rows.len(), table1_benchmarks().len());
        for row in &r.rows {
            assert!(row.sa_speedup > 0.0, "{}", row.benchmark);
            assert!(row.route_speedup > 0.0, "{}", row.benchmark);
            assert!(row.sa_proposals > 0, "{}", row.benchmark);
            assert!(row.astar_queries > 0, "{}", row.benchmark);
        }
        assert!(r.rows.iter().any(|row| row.route_ok));
        assert!(r.rows.iter().all(|row| row.kernel_threads == 1));
        assert_eq!(r.tempered.chains, 8);
        assert!(r.tempered.threads >= 1);
        assert!(r.tempered.sa_speedup > 0.0);
        assert!(r.dense.negotiated_ok, "Synthetic5 must route negotiated");
        assert!(r.dense.dcsa_ok, "Synthetic5 ladder grid must route serial");
        assert!(r.dense.transports > 0);
        assert_eq!(r.batch.jobs, 2 * r.rows.len());
        assert!(r.batch.warm_identical, "warm batch diverged from cold");
        assert_eq!(r.batch.warm_cache.misses(), 0);
        assert!(r.batch.warm_speedup > 1.0);
        assert!(r.threads >= 1);
        if cfg!(feature = "obs-trace") {
            let names: Vec<&str> = r.stage_trace.iter().map(|s| s.name.as_str()).collect();
            assert!(names.contains(&"flow.synthesize"), "{names:?}");
            assert!(names.contains(&"stage.place"), "{names:?}");
            assert!(names.contains(&"stage.route"), "{names:?}");
            assert!(
                r.trace_counters.iter().any(|c| c.name == "sa.proposals"),
                "traced run records SA counters"
            );
        } else {
            assert!(r.stage_trace.is_empty());
        }
        assert!(!perf_text(&r).is_empty());
    }
}
