//! Shared helpers for the benchmark harnesses in `benches/`.
//!
//! Each bench target regenerates one table or figure of the paper before
//! timing the computation that produces it, so `cargo bench` doubles as the
//! experiment reproduction entry point (see EXPERIMENTS.md).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod perf;
pub mod throughput;

use mfb_bench_suite::{table1_benchmarks, Benchmark};
use mfb_core::prelude::*;
use mfb_model::prelude::*;

/// The paper-calibrated wash model used by every experiment.
pub fn wash() -> LogLinearWash {
    LogLinearWash::paper_calibrated()
}

/// All Table-I benchmarks.
pub fn benchmarks() -> Vec<Benchmark> {
    table1_benchmarks()
}

/// Runs both flows on every benchmark and returns the comparison rows.
///
/// Benchmarks run concurrently (bounded by `MFB_THREADS`) and rows come
/// back in Table-I order; every row is a pure function of its benchmark,
/// so the report is identical to a serial run.
pub fn compare_all() -> Vec<ComparisonRow> {
    let lib = ComponentLibrary::default();
    let benches = benchmarks();
    mfb_model::par::par_map_ordered(benches.len(), |i| {
        let b = &benches[i];
        ComparisonRow::compare(b.name, &b.graph, b.allocation, &lib, &wash())
            .unwrap_or_else(|e| panic!("{}: {e}", b.name))
    })
}
