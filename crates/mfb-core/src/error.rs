//! Whole-flow errors.

use mfb_place::prelude::PlaceError;
use mfb_route::prelude::RouteError;
use mfb_sched::prelude::SchedError;
use std::fmt;

/// Errors produced by the synthesis flow.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SynthesisError {
    /// Binding and scheduling failed.
    Sched(SchedError),
    /// Placement failed.
    Place(PlaceError),
    /// Routing failed on every placement attempt; the payload is the last
    /// routing error.
    Route {
        /// The final routing error.
        last: RouteError,
        /// How many placements were tried.
        attempts: u32,
    },
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::Sched(e) => write!(f, "scheduling failed: {e}"),
            SynthesisError::Place(e) => write!(f, "placement failed: {e}"),
            SynthesisError::Route { last, attempts } => {
                write!(
                    f,
                    "routing failed after {attempts} placement attempts: {last}"
                )
            }
        }
    }
}

impl std::error::Error for SynthesisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SynthesisError::Sched(e) => Some(e),
            SynthesisError::Place(e) => Some(e),
            SynthesisError::Route { last, .. } => Some(last),
        }
    }
}

impl From<SchedError> for SynthesisError {
    fn from(e: SchedError) -> Self {
        SynthesisError::Sched(e)
    }
}

impl From<PlaceError> for SynthesisError {
    fn from(e: PlaceError) -> Self {
        SynthesisError::Place(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfb_model::prelude::*;

    #[test]
    fn displays_chain_causes() {
        let e = SynthesisError::Route {
            last: RouteError::Unroutable {
                task: TaskId::new(3),
            },
            attempts: 24,
        };
        let msg = e.to_string();
        assert!(msg.contains("24") && msg.contains("tk3"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
