//! Whole-flow errors.

use mfb_model::prelude::BudgetExceeded;
use mfb_place::prelude::PlaceError;
use mfb_route::prelude::RouteError;
use mfb_sched::prelude::SchedError;
use std::fmt;

/// Errors produced by the synthesis flow.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SynthesisError {
    /// Binding and scheduling failed.
    Sched(SchedError),
    /// Placement failed.
    Place(PlaceError),
    /// Routing failed on every placement attempt; the payload is the last
    /// routing error.
    Route {
        /// The final routing error.
        last: RouteError,
        /// How many placements were tried.
        attempts: u32,
    },
    /// A pipeline stage panicked. Produced only by the resilient driver,
    /// which contains stage panics at rung boundaries instead of unwinding
    /// through the caller.
    StagePanic {
        /// Which stage panicked (`"schedule"`, `"place"`, `"route"`, …).
        stage: &'static str,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The job's execution [`Budget`](mfb_model::budget::Budget) deadline
    /// passed before synthesis finished; the run stopped at the next stage
    /// or inner-loop checkpoint.
    DeadlineExceeded,
    /// The job was cancelled through its
    /// [`CancelToken`](mfb_model::budget::CancelToken); the run stopped at
    /// the next stage or inner-loop checkpoint.
    Cancelled,
}

impl SynthesisError {
    /// True when the error is a deterministic property of the *inputs*
    /// (assay, allocation, defect map, `t_c`) rather than of one particular
    /// placement or annealing seed — retrying the same rung reproduces it
    /// bit-for-bit, so the only useful reactions are escalating to a
    /// different rung or giving up.
    pub fn is_deterministic(&self) -> bool {
        match self {
            // Scheduling never looks at the layout; its failures are
            // infeasibility proofs for the given allocation.
            SynthesisError::Sched(_) => true,
            // An interrupted stage says nothing about the inputs — only
            // about the budget it ran under.
            SynthesisError::Place(PlaceError::Interrupted(_)) => false,
            // Placement failures depend on the grid, not the seed: both
            // `GridTooSmall` and `DefectBlocked` certify that no layout
            // exists, by area or by exhaustive scan.
            SynthesisError::Place(_) => true,
            SynthesisError::Route { last, .. } => {
                matches!(last, RouteError::InconsistentSchedule { .. })
            }
            SynthesisError::StagePanic { .. } => false,
            SynthesisError::DeadlineExceeded | SynthesisError::Cancelled => false,
        }
    }

    /// The budget interrupt behind this error, if it is one (in any of its
    /// shapes: the flow-level variants, or a stage-level `Interrupted`
    /// that has not been normalized yet).
    pub fn interrupt(&self) -> Option<BudgetExceeded> {
        match self {
            SynthesisError::DeadlineExceeded => Some(BudgetExceeded::DeadlineExceeded),
            SynthesisError::Cancelled => Some(BudgetExceeded::Cancelled),
            SynthesisError::Place(PlaceError::Interrupted(why)) => Some(*why),
            SynthesisError::Route {
                last: RouteError::Interrupted(why),
                ..
            } => Some(*why),
            _ => None,
        }
    }
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::Sched(e) => write!(f, "scheduling failed: {e}"),
            SynthesisError::Place(e) => write!(f, "placement failed: {e}"),
            SynthesisError::Route { last, attempts } => {
                write!(
                    f,
                    "routing failed after {attempts} placement attempts: {last}"
                )
            }
            SynthesisError::StagePanic { stage, message } => {
                write!(f, "the {stage} stage panicked: {message}")
            }
            SynthesisError::DeadlineExceeded => write!(f, "synthesis deadline exceeded"),
            SynthesisError::Cancelled => write!(f, "synthesis cancelled"),
        }
    }
}

impl std::error::Error for SynthesisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SynthesisError::Sched(e) => Some(e),
            SynthesisError::Place(e) => Some(e),
            SynthesisError::Route { last, .. } => Some(last),
            SynthesisError::StagePanic { .. } => None,
            SynthesisError::DeadlineExceeded | SynthesisError::Cancelled => None,
        }
    }
}

impl From<BudgetExceeded> for SynthesisError {
    fn from(why: BudgetExceeded) -> Self {
        match why {
            BudgetExceeded::DeadlineExceeded => SynthesisError::DeadlineExceeded,
            BudgetExceeded::Cancelled => SynthesisError::Cancelled,
        }
    }
}

impl From<SchedError> for SynthesisError {
    fn from(e: SchedError) -> Self {
        SynthesisError::Sched(e)
    }
}

impl From<PlaceError> for SynthesisError {
    fn from(e: PlaceError) -> Self {
        SynthesisError::Place(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfb_model::prelude::*;

    #[test]
    fn displays_chain_causes() {
        let e = SynthesisError::Route {
            last: RouteError::Unroutable {
                task: TaskId::new(3),
            },
            attempts: 24,
        };
        let msg = e.to_string();
        assert!(msg.contains("24") && msg.contains("tk3"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
