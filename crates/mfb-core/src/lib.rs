//! Top-down flow-layer physical synthesis for flow-based microfluidic
//! biochips with **distributed channel storage** (DCSA).
//!
//! This crate is the public face of the `mfb` workspace, a Rust
//! implementation of *"Physical Synthesis of Flow-Based Microfluidic
//! Biochips Considering Distributed Channel Storage"* (Chen, Huang, Guo,
//! Li, Ho, Schlichtmann — DATE 2019). It wires the stage crates into the
//! paper's pipeline:
//!
//! 1. **Resource binding & scheduling** (`mfb-sched`): priority-driven list
//!    scheduling with storage-aware Case-I/Case-II binding;
//! 2. **Placement** (`mfb-place`): simulated annealing under the
//!    conflict- and wash-aware connection priorities of Eq. (3)/(4);
//! 3. **Routing** (`mfb-route`): transportation-conflict-free,
//!    wash-weighted time-windowed A* (Eq. (5)), with distributed channel
//!    parking for cached fluids.
//!
//! The baseline flow the paper compares against (earliest-ready binding +
//! construction-by-correction physical design) is available through
//! [`Synthesizer::paper_baseline`](flow::Synthesizer::paper_baseline), and
//! every solution can be replayed through the independent validator in
//! `mfb-sim` via [`Solution::verify`](flow::Solution::verify).
//!
//! # Quick start
//!
//! ```
//! use mfb_core::prelude::*;
//! use mfb_model::prelude::*;
//!
//! // Describe a bioassay…
//! let mut b = SequencingGraph::builder();
//! let wash = LogLinearWash::paper_calibrated();
//! let d = wash.coefficient_for(Duration::from_secs(4));
//! let s1 = b.operation(OperationKind::Mix, Duration::from_secs(5), d);
//! let s2 = b.operation(OperationKind::Mix, Duration::from_secs(5), d);
//! let merge = b.operation(OperationKind::Mix, Duration::from_secs(4), d);
//! let read = b.operation(OperationKind::Detect, Duration::from_secs(3), d);
//! b.edge(s1, merge).unwrap();
//! b.edge(s2, merge).unwrap();
//! b.edge(merge, read).unwrap();
//! let assay = b.build().unwrap();
//!
//! // …allocate a chip, synthesize, and inspect.
//! let chip = Allocation::new(2, 0, 0, 1).instantiate(&ComponentLibrary::default());
//! let solution = Synthesizer::paper_dcsa().synthesize(&assay, &chip, &wash).unwrap();
//! let metrics = SolutionMetrics::of(&solution, &chip);
//!
//! assert!(solution.verify(&assay, &chip, &wash).is_valid());
//! assert!(metrics.execution_time > Duration::ZERO);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod analysis;
pub mod cache;
pub mod config;
pub mod error;
pub mod flow;
pub mod metrics;
pub mod recovery;
pub mod report;

/// One-stop import of the synthesis API.
pub mod prelude {
    pub use crate::analysis::{
        area_report, audit_transport_times, AreaReport, TaskAudit, TransportAudit,
    };
    pub use crate::cache::{CacheStats, SnapshotEntry, StageCache};
    pub use crate::config::{PlacementStrategy, RoutingStrategy, SynthesisConfig};
    pub use crate::error::SynthesisError;
    pub use crate::flow::{Solution, Synthesizer};
    pub use crate::metrics::SolutionMetrics;
    pub use crate::recovery::{
        DegradedSolution, RecoveryPolicy, RecoveryTrace, ResilientOutcome, Rung, RungAttempt,
    };
    pub use crate::report::{fig8_text, fig9_text, table1_text, ComparisonRow};
    pub use mfb_analyze::prelude::{analysis_rules, Analyzer};
    pub use mfb_model::prelude::{Budget, BudgetExceeded, CancelToken};
    pub use mfb_verify::prelude::{RuleRegistry, VerifyReport};
}
