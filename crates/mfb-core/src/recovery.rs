//! The resilient synthesis driver: an explicit escalation ladder.
//!
//! [`Synthesizer::synthesize`] retries failed routings with fresh annealing
//! seeds and an occasional larger grid, but it has a single lever and no
//! memory of *why* an attempt failed. This module replaces that flat loop
//! with a typed ladder of recovery rungs, climbed in order:
//!
//! 1. **Reseed** — re-anneal the same problem with fresh seeds. Cheap, and
//!    sufficient when a destination was merely boxed in by wash shadows at
//!    exactly the wrong moment.
//! 2. **Grow grid** — enlarge the chip (4/3 linear per step). Recovers
//!    placements that are infeasible by area — including chips whose defect
//!    map has consumed too many cells, since defect coordinates are
//!    absolute and growth only adds pristine area.
//! 3. **Relax `t_c`** — lengthen the constant transport time and re-run
//!    Algorithm 1. Slower schedules overlap less, easing congestion the
//!    router could not untangle geometrically.
//! 4. **Rebind** — mark the component implicated in the failure as dead
//!    and re-run Algorithm 1 on the reduced allocation, routing the assay
//!    around the broken resource entirely.
//!
//! Every attempt is bounded by the per-rung budgets of a
//! [`RecoveryPolicy`], deterministically seeded, and wrapped in panic
//! containment: a stage that panics surfaces as
//! [`SynthesisError::StagePanic`] and the ladder climbs on. Errors that are
//! deterministic properties of the inputs (see
//! [`SynthesisError::is_deterministic`]) skip the remaining attempts of a
//! rung whose lever cannot affect them, and infeasibility proofs that no
//! rung can fix abort the ladder immediately. When every rung is
//! exhausted, the caller still receives the best partial artifacts as a
//! [`DegradedSolution`].

use crate::cache::{StageCache, StageCtx};
use crate::config::{PlacementStrategy, RoutingStrategy, SynthesisConfig};
use crate::error::SynthesisError;
use crate::flow::{route_error_is_placement_independent, Solution, Synthesizer};
use mfb_model::prelude::*;
use mfb_place::prelude::*;
use mfb_route::prelude::*;
use mfb_sched::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One rung of the escalation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rung {
    /// Re-anneal with a fresh seed on the original grid.
    Reseed,
    /// Enlarge the chip grid.
    GrowGrid,
    /// Lengthen the constant transport time `t_c` and reschedule.
    RelaxTc,
    /// Mark the implicated component dead and rebind around it.
    Rebind,
}

impl std::fmt::Display for Rung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Rung::Reseed => "reseed",
            Rung::GrowGrid => "grow-grid",
            Rung::RelaxTc => "relax-tc",
            Rung::Rebind => "rebind",
        })
    }
}

/// Per-rung budgets for the escalation ladder. Every budget is an exact
/// attempt count, so a policy fully determines the ladder's behavior on a
/// given input — there is no wall-clock or randomized cutoff anywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Fresh-seed attempts on the original grid (rung 1).
    pub reseed_attempts: u32,
    /// Grid-growth steps, 4/3 linear each (rung 2).
    pub grow_steps: u32,
    /// `t_c` relaxation steps, +1 s each (rung 3).
    pub relax_tc_steps: u32,
    /// Rebind-around-failure attempts (rung 4).
    pub rebind_attempts: u32,
    /// Contain stage panics as [`SynthesisError::StagePanic`] instead of
    /// unwinding through the caller.
    pub catch_panics: bool,
}

impl RecoveryPolicy {
    /// The default ladder: 8 reseeds, 3 grid growths, 2 `t_c` relaxations,
    /// 2 rebinds, panics contained.
    pub fn standard() -> Self {
        RecoveryPolicy {
            reseed_attempts: 8,
            grow_steps: 3,
            relax_tc_steps: 2,
            rebind_attempts: 2,
            catch_panics: true,
        }
    }

    /// A policy equivalent to the flat retry loop: reseeding only, no
    /// escalation. Useful as the control arm in resilience experiments.
    pub fn reseed_only(attempts: u32) -> Self {
        RecoveryPolicy {
            reseed_attempts: attempts,
            grow_steps: 0,
            relax_tc_steps: 0,
            rebind_attempts: 0,
            catch_panics: true,
        }
    }
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy::standard()
    }
}

/// One recorded ladder attempt: which rung, with what parameters, and how
/// it failed (successful attempts end the ladder and are not recorded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RungAttempt {
    /// The rung that made the attempt.
    pub rung: Rung,
    /// 1-based global attempt number across the whole ladder.
    pub attempt: u32,
    /// Human-readable parameters of the attempt (seed, grid, `t_c`, …).
    pub detail: String,
    /// Display form of the error the attempt produced.
    pub error: String,
}

/// The full failure history of one ladder run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryTrace {
    /// Every failed attempt, in execution order.
    pub attempts: Vec<RungAttempt>,
}

impl RecoveryTrace {
    /// Number of failed attempts recorded.
    pub fn len(&self) -> usize {
        self.attempts.len()
    }

    /// True when the first attempt succeeded outright.
    pub fn is_empty(&self) -> bool {
        self.attempts.is_empty()
    }

    /// The distinct rungs that were tried, in first-use order.
    pub fn rungs_tried(&self) -> Vec<Rung> {
        let mut out = Vec::new();
        for a in &self.attempts {
            if !out.contains(&a.rung) {
                out.push(a.rung);
            }
        }
        out
    }
}

/// Best-effort artifacts from an exhausted ladder: whatever stages did
/// succeed on some attempt, for post-mortem inspection or manual repair.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedSolution {
    /// The last schedule that bound successfully, if any attempt got that
    /// far.
    pub schedule: Option<Schedule>,
    /// The last placement that legalized successfully, if any attempt got
    /// that far.
    pub placement: Option<Placement>,
}

/// The complete result of a resilient synthesis run.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientOutcome {
    /// The solution, or the last error once every rung was exhausted.
    pub result: Result<Solution, SynthesisError>,
    /// Every failed attempt along the way.
    pub trace: RecoveryTrace,
    /// Best partial artifacts when `result` is an error; `None` on
    /// success.
    pub degraded: Option<DegradedSolution>,
}

impl ResilientOutcome {
    /// The solution, when synthesis succeeded.
    pub fn solution(&self) -> Option<&Solution> {
        self.result.as_ref().ok()
    }

    /// True when synthesis succeeded on some rung.
    pub fn is_success(&self) -> bool {
        self.result.is_ok()
    }
}

/// Latest per-stage artifacts across all attempts, feeding the
/// [`DegradedSolution`] report.
#[derive(Default)]
struct Partial {
    schedule: Option<Schedule>,
    placement: Option<Placement>,
}

impl Partial {
    /// Folds one attempt's artifacts in: a stage that ran overwrites the
    /// stored artifact, a stage that was never reached leaves it alone —
    /// consumed in attempt order, this reproduces the serial ladder's
    /// "latest artifact wins" bookkeeping exactly.
    fn absorb(&mut self, other: Partial) {
        if other.schedule.is_some() {
            self.schedule = other.schedule;
        }
        if other.placement.is_some() {
            self.placement = other.placement;
        }
    }
}

impl Synthesizer {
    /// Runs the full flow under the escalation ladder described in the
    /// [module docs](self), honoring `defects` in every stage.
    ///
    /// Unlike [`synthesize`](Synthesizer::synthesize) this never panics on
    /// a stage bug (with `catch_panics` set) and never returns empty-handed:
    /// an exhausted ladder still reports its failure history and best
    /// partial artifacts.
    pub fn synthesize_resilient(
        &self,
        graph: &SequencingGraph,
        components: &ComponentSet,
        wash: &dyn WashModel,
        defects: &DefectMap,
        policy: &RecoveryPolicy,
    ) -> ResilientOutcome {
        // The ladder always climbs through a stage cache: rungs that vary
        // only one lever (a fresh SA seed, a grown grid) reuse the bound
        // schedule and netlist of earlier rungs instead of recomputing
        // them, and validation runs once per distinct schedule.
        self.synthesize_resilient_cached(
            graph,
            components,
            wash,
            defects,
            policy,
            &StageCache::new(),
        )
    }

    /// [`synthesize_resilient`](Synthesizer::synthesize_resilient) through
    /// a caller-owned [`StageCache`], so batch drivers can share warm stage
    /// results across ladder runs. The ladder's behavior — which rungs
    /// climb, the recorded trace, the result — is byte-identical with any
    /// cache state; only the work skipped differs.
    pub fn synthesize_resilient_cached(
        &self,
        graph: &SequencingGraph,
        components: &ComponentSet,
        wash: &dyn WashModel,
        defects: &DefectMap,
        policy: &RecoveryPolicy,
        cache: &StageCache,
    ) -> ResilientOutcome {
        self.synthesize_resilient_budgeted(
            graph,
            components,
            wash,
            defects,
            policy,
            cache,
            &Budget::unlimited(),
        )
    }

    /// [`synthesize_resilient_cached`](Synthesizer::synthesize_resilient_cached)
    /// under an execution [`Budget`]. The budget is polled at every rung
    /// boundary and inside each attempt's stages; when it trips, the ladder
    /// stops climbing and the outcome carries
    /// [`SynthesisError::DeadlineExceeded`] or
    /// [`SynthesisError::Cancelled`] **plus** the trace and best partial
    /// artifacts accumulated so far — an expired job still reports how far
    /// it got. A run that finishes within its budget is byte-identical to
    /// an unlimited run.
    #[allow(clippy::too_many_arguments)]
    pub fn synthesize_resilient_budgeted(
        &self,
        graph: &SequencingGraph,
        components: &ComponentSet,
        wash: &dyn WashModel,
        defects: &DefectMap,
        policy: &RecoveryPolicy,
        cache: &StageCache,
        budget: &Budget,
    ) -> ResilientOutcome {
        let _span = mfb_obs::obs_span!(
            "flow.resilient",
            ops = graph.ops().count() as u64,
            components = components.len() as u64,
        );
        let cfg = self.config();
        let base_grid = cfg.grid.unwrap_or_else(|| auto_grid(components));
        let grown = |g: u32| -> GridSpec {
            let g = g.min(8);
            let side = |s: u32| {
                let f = 4u64.pow(g);
                let d = 3u64.pow(g);
                ((u64::from(s) * f / d).min(u64::from(u32::MAX)) as u32).max(s)
            };
            GridSpec::new(
                side(base_grid.width),
                side(base_grid.height),
                base_grid.pitch_mm,
            )
        };
        let max_grid = grown(policy.grow_steps);

        let mut trace = RecoveryTrace::default();
        let mut partial = Partial::default();
        let mut last_err: Option<SynthesisError> = None;
        let mut defects_now = defects.clone();
        let mut attempt_no: u32 = 0;

        // Each rung records failures and decides whether climbing further
        // can possibly help; `break 'ladder` is the "provably hopeless"
        // exit, falling off the block end the "budgets exhausted" one.
        'ladder: {
            // ---- Rung 1: fresh seeds on the original grid. ----
            // Attempt 0 runs alone (it usually succeeds, and a
            // deterministic error must escalate after exactly one try);
            // subsequent reseeds fan out in thread-sized batches. Each
            // attempt is a pure function of its seed, and results are
            // consumed in seed order, so the outcome and the recorded trace
            // are byte-identical to the serial rung for any `MFB_THREADS`.
            let reseeds = policy.reseed_attempts.max(1);
            let reseed_batch = mfb_model::par::thread_limit().max(1) as u32;
            let mut next = 0u32;
            'rung1: while next < reseeds {
                if let Err(why) = budget.check() {
                    last_err = Some(why.into());
                    break 'ladder;
                }
                let chunk = if next == 0 {
                    1
                } else {
                    (reseeds - next).min(reseed_batch)
                };
                let results = mfb_model::par::par_map_ordered(chunk as usize, |k| {
                    let i = next + k as u32;
                    attempt_once(
                        cfg,
                        graph,
                        components,
                        wash,
                        base_grid,
                        cfg.sa.seed.wrapping_add(u64::from(i)),
                        cfg.t_c,
                        &defects_now,
                        cache,
                        policy.catch_panics,
                        i + 1,
                        budget,
                    )
                });
                for (k, (res, artifacts)) in results.into_iter().enumerate() {
                    let i = next + k as u32;
                    attempt_no = i + 1;
                    let seed = cfg.sa.seed.wrapping_add(u64::from(i));
                    partial.absorb(artifacts);
                    match res {
                        Ok(s) => return success(s, trace, Rung::Reseed, attempt_no),
                        Err(e) => {
                            record_attempt(
                                &mut trace,
                                RungAttempt {
                                    rung: Rung::Reseed,
                                    attempt: attempt_no,
                                    detail: format!(
                                        "seed {seed} on {}x{} grid",
                                        base_grid.width, base_grid.height
                                    ),
                                    error: e.to_string(),
                                },
                            );
                            let deterministic = e.is_deterministic();
                            let fatal = globally_fatal(&e);
                            last_err = Some(e);
                            if fatal {
                                break 'ladder;
                            }
                            if deterministic {
                                // The seed is the only thing this rung
                                // varies and the error does not depend on
                                // it: escalate without burning the rest of
                                // the budget.
                                break 'rung1;
                            }
                        }
                    }
                }
                next += chunk;
            }

            // ---- Rung 2: grow the grid. ----
            for g in 1..=policy.grow_steps {
                if let Err(why) = budget.check() {
                    last_err = Some(why.into());
                    break 'ladder;
                }
                attempt_no += 1;
                let grid = grown(g);
                let seed = cfg
                    .sa
                    .seed
                    .wrapping_add(u64::from(policy.reseed_attempts.max(1) + g));
                let (res, artifacts) = attempt_once(
                    cfg,
                    graph,
                    components,
                    wash,
                    grid,
                    seed,
                    cfg.t_c,
                    &defects_now,
                    cache,
                    policy.catch_panics,
                    attempt_no,
                    budget,
                );
                partial.absorb(artifacts);
                match res {
                    Ok(s) => return success(s, trace, Rung::GrowGrid, attempt_no),
                    Err(e) => {
                        record_attempt(
                            &mut trace,
                            RungAttempt {
                                rung: Rung::GrowGrid,
                                attempt: attempt_no,
                                detail: format!("grown to {}x{} grid", grid.width, grid.height),
                                error: e.to_string(),
                            },
                        );
                        let fatal = globally_fatal(&e);
                        last_err = Some(e);
                        if fatal {
                            break 'ladder;
                        }
                    }
                }
            }

            // ---- Rung 3: relax t_c and reschedule. ----
            for k in 1..=policy.relax_tc_steps {
                if let Err(why) = budget.check() {
                    last_err = Some(why.into());
                    break 'ladder;
                }
                attempt_no += 1;
                let t_c = cfg.t_c + Duration::from_secs(u64::from(k));
                let (res, artifacts) = attempt_once(
                    cfg,
                    graph,
                    components,
                    wash,
                    max_grid,
                    cfg.sa.seed,
                    t_c,
                    &defects_now,
                    cache,
                    policy.catch_panics,
                    attempt_no,
                    budget,
                );
                partial.absorb(artifacts);
                match res {
                    Ok(s) => return success(s, trace, Rung::RelaxTc, attempt_no),
                    Err(e) => {
                        record_attempt(
                            &mut trace,
                            RungAttempt {
                                rung: Rung::RelaxTc,
                                attempt: attempt_no,
                                detail: format!("t_c relaxed to {t_c}"),
                                error: e.to_string(),
                            },
                        );
                        let fatal = globally_fatal(&e);
                        last_err = Some(e);
                        if fatal {
                            break 'ladder;
                        }
                    }
                }
            }

            // ---- Rung 4: rebind around the implicated component. ----
            for _ in 0..policy.rebind_attempts {
                if let Err(why) = budget.check() {
                    last_err = Some(why.into());
                    break 'ladder;
                }
                let Some(victim) = implicated_component(
                    last_err.as_ref(),
                    partial.schedule.as_ref(),
                    components,
                    &defects_now,
                ) else {
                    break;
                };
                defects_now.kill_component(victim);
                attempt_no += 1;
                let (res, artifacts) = attempt_once(
                    cfg,
                    graph,
                    components,
                    wash,
                    max_grid,
                    cfg.sa.seed,
                    cfg.t_c,
                    &defects_now,
                    cache,
                    policy.catch_panics,
                    attempt_no,
                    budget,
                );
                partial.absorb(artifacts);
                match res {
                    Ok(s) => return success(s, trace, Rung::Rebind, attempt_no),
                    Err(e) => {
                        record_attempt(
                            &mut trace,
                            RungAttempt {
                                rung: Rung::Rebind,
                                attempt: attempt_no,
                                detail: format!("component {victim} marked dead, rebound"),
                                error: e.to_string(),
                            },
                        );
                        let fatal = globally_fatal(&e);
                        last_err = Some(e);
                        if fatal {
                            break 'ladder;
                        }
                    }
                }
            }
        }

        let last = last_err.unwrap_or(SynthesisError::StagePanic {
            stage: "ladder",
            message: "no attempt was made".to_string(),
        });
        ResilientOutcome {
            result: Err(last),
            trace,
            degraded: Some(DegradedSolution {
                schedule: partial.schedule,
                placement: partial.placement,
            }),
        }
    }
}

fn success(solution: Solution, trace: RecoveryTrace, rung: Rung, attempt: u32) -> ResilientOutcome {
    mfb_obs::obs_instant!(
        "recovery.rung",
        rung = rung.to_string(),
        attempt = attempt,
        outcome = "recovered",
    );
    ResilientOutcome {
        result: Ok(solution),
        trace,
        degraded: None,
    }
}

/// Records one failed rung attempt in the trace and mirrors it as a
/// `recovery.rung` instant event.
fn record_attempt(trace: &mut RecoveryTrace, attempt: RungAttempt) {
    mfb_obs::obs_instant!(
        "recovery.rung",
        rung = attempt.rung.to_string(),
        attempt = attempt.attempt,
        outcome = "failed",
        error = attempt.error.clone(),
    );
    trace.attempts.push(attempt);
}

/// True when no rung of the ladder can change the outcome: the error is an
/// infeasibility proof for the inputs themselves.
fn globally_fatal(e: &SynthesisError) -> bool {
    match e {
        // Scheduling failures are about the allocation: no grid, seed, or
        // t_c adds components, and rebinding only removes them.
        SynthesisError::Sched(_) => true,
        SynthesisError::Route { last, .. } => route_error_is_placement_independent(last),
        // A tripped budget can only trip again: every further rung attempt
        // would abort at its first checkpoint.
        SynthesisError::DeadlineExceeded | SynthesisError::Cancelled => true,
        _ => false,
    }
}

/// The component most plausibly responsible for `err`, when one can be
/// named and killing it leaves at least one live component of its kind.
fn implicated_component(
    err: Option<&SynthesisError>,
    schedule: Option<&Schedule>,
    components: &ComponentSet,
    defects: &DefectMap,
) -> Option<ComponentId> {
    let candidate = match err? {
        SynthesisError::Route { last, .. } => match last {
            RouteError::NoPorts { component } => Some(*component),
            // An unroutable transport most often cannot *reach* its
            // destination; retire the destination so rebinding moves the
            // consuming operation elsewhere.
            RouteError::Unroutable { task } | RouteError::CorrectionDiverged { task } => {
                schedule.map(|s| s.transport(*task).dst)
            }
            _ => None,
        },
        _ => None,
    }?;
    if defects.is_dead(candidate) {
        return None;
    }
    let kind = components.component(candidate).kind();
    let live_peers = components
        .of_kind(kind)
        .filter(|&c| c != candidate && !defects.is_dead(c))
        .count();
    (live_peers >= 1).then_some(candidate)
}

/// One full pipeline run at fixed parameters, each stage individually
/// panic-guarded. Returns the attempt's own artifacts alongside the result
/// (instead of mutating shared state) so attempts can run concurrently and
/// be folded into [`Partial`] in attempt order.
#[allow(clippy::too_many_arguments)]
fn attempt_once(
    cfg: &SynthesisConfig,
    graph: &SequencingGraph,
    components: &ComponentSet,
    wash: &dyn WashModel,
    grid: GridSpec,
    seed: u64,
    t_c: Duration,
    defects: &DefectMap,
    cache: &StageCache,
    catch: bool,
    attempt_no: u32,
    budget: &Budget,
) -> (Result<Solution, SynthesisError>, Partial) {
    let mut partial = Partial::default();
    let result = attempt_inner(
        cfg,
        graph,
        components,
        wash,
        grid,
        seed,
        t_c,
        defects,
        cache,
        catch,
        attempt_no,
        budget,
        &mut partial,
    );
    // Normalize stage-level interrupts (`PlaceError::Interrupted`,
    // `RouteError::Interrupted`) to the flow-level typed error so the
    // ladder and the trace see one canonical shape.
    let result = result.map_err(|e| match e.interrupt() {
        Some(why) => why.into(),
        None => e,
    });
    (result, partial)
}

/// The `?`-friendly body of [`attempt_once`].
#[allow(clippy::too_many_arguments)]
fn attempt_inner(
    cfg: &SynthesisConfig,
    graph: &SequencingGraph,
    components: &ComponentSet,
    wash: &dyn WashModel,
    grid: GridSpec,
    seed: u64,
    t_c: Duration,
    defects: &DefectMap,
    cache: &StageCache,
    catch: bool,
    attempt_no: u32,
    budget: &Budget,
    partial: &mut Partial,
) -> Result<Solution, SynthesisError> {
    budget.check().map_err(SynthesisError::from)?;
    let sched_cfg = SchedulerConfig {
        t_c,
        rule: cfg.binding,
    };
    // Rebuilt per attempt because the rebind rung mutates the defect map,
    // which participates in every stage key.
    let ctx = StageCtx::new(Some(cache), graph, components, wash, defects);
    let (schedule, schedule_h) = guard("schedule", catch, || {
        ctx.schedule(&sched_cfg, graph, components, || {
            schedule_with_defects(graph, components, wash, &sched_cfg, defects)
        })
        .map_err(Into::into)
    })?;
    partial.schedule = Some(schedule.clone());
    let (netlist, netlist_key) = ctx.netlist(schedule_h, cfg.beta, cfg.gamma, || {
        NetList::build(&schedule, graph, wash, cfg.beta, cfg.gamma)
    });

    let (placement, place_h) = guard("place", catch, || {
        ctx.place(netlist_key, grid, cfg, seed, || match cfg.placement {
            PlacementStrategy::SimulatedAnnealing => {
                let sa = SaConfig { seed, ..cfg.sa };
                place_sa_tempered_budgeted(components, &netlist, grid, &sa, defects, budget)
                    .map(|(p, _)| p)
            }
            PlacementStrategy::Constructive => place_constructive_with_defects(
                components,
                &netlist,
                grid,
                SpacingParams::default_routing(),
                defects,
            ),
            PlacementStrategy::ForceDirected => {
                place_force_directed_with_defects(components, &netlist, grid, defects)
            }
        })
        .map_err(Into::into)
    })?;
    partial.placement = Some(placement.clone());

    let routing = guard("route", catch, || {
        let (routed, route_key) = ctx.route(schedule_h, place_h, cfg, || match cfg.routing {
            RoutingStrategy::ConflictAware => {
                let mut scratch = SearchScratch::new();
                route_dcsa_budgeted(
                    &schedule,
                    graph,
                    &placement,
                    wash,
                    &cfg.router,
                    defects,
                    &mut scratch,
                    budget,
                )
            }
            RoutingStrategy::ConstructionByCorrection => route_corrected_with_defects(
                &schedule,
                graph,
                &placement,
                wash,
                &cfg.router,
                defects,
            ),
            RoutingStrategy::Negotiated => {
                let mut scratch = SearchScratch::new();
                route_negotiated_budgeted(
                    &schedule,
                    graph,
                    &placement,
                    wash,
                    &cfg.router,
                    defects,
                    &mut scratch,
                    budget,
                )
            }
        });
        let mut routing = routed.map_err(|e| SynthesisError::Route {
            last: e,
            attempts: attempt_no,
        })?;
        if cfg.optimize_channels {
            let optimized = ctx.optimize(route_key, || {
                optimize_channel_length_with_defects(
                    &routing,
                    &schedule,
                    graph,
                    &placement,
                    wash,
                    &cfg.router,
                    defects,
                )
            });
            routing = optimized;
        }
        Ok(routing)
    })?;

    Ok(Solution {
        schedule,
        netlist,
        placement,
        routing,
        attempts: attempt_no,
    })
}

/// Runs `f`, converting a panic into [`SynthesisError::StagePanic`] when
/// `catch` is set.
fn guard<T>(
    stage: &'static str,
    catch: bool,
    f: impl FnOnce() -> Result<T, SynthesisError>,
) -> Result<T, SynthesisError> {
    if !catch {
        return f();
    }
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(SynthesisError::StagePanic { stage, message })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wash() -> LogLinearWash {
        LogLinearWash::paper_calibrated()
    }

    fn tiny() -> (SequencingGraph, ComponentSet) {
        let mut b = SequencingGraph::builder();
        let d = DiffusionCoefficient::PROTEIN;
        let m0 = b.operation(OperationKind::Mix, Duration::from_secs(5), d);
        let m1 = b.operation(OperationKind::Mix, Duration::from_secs(5), d);
        let dt = b.operation(OperationKind::Detect, Duration::from_secs(3), d);
        b.edge(m0, m1).unwrap();
        b.edge(m1, dt).unwrap();
        let g = b.build().unwrap();
        let comps = Allocation::new(2, 0, 0, 1).instantiate(&ComponentLibrary::default());
        (g, comps)
    }

    #[test]
    fn first_attempt_success_leaves_an_empty_trace() {
        let (g, comps) = tiny();
        let out = Synthesizer::paper_dcsa().synthesize_resilient(
            &g,
            &comps,
            &wash(),
            &DefectMap::pristine(),
            &RecoveryPolicy::standard(),
        );
        assert!(out.is_success());
        assert!(out.trace.is_empty());
        assert!(out.degraded.is_none());
        let plain = Synthesizer::paper_dcsa()
            .synthesize(&g, &comps, &wash())
            .unwrap();
        assert_eq!(out.solution().unwrap().placement, plain.placement);
        assert_eq!(out.solution().unwrap().routing, plain.routing);
    }

    #[test]
    fn grow_grid_rung_recovers_a_too_small_chip() {
        let (g, comps) = tiny();
        // A 6x6 grid cannot hold two 4x3 mixers and a detector with
        // clearance: the flat loop dies instantly on the placement error...
        let mut cfg = SynthesisConfig::paper_dcsa();
        cfg.grid = Some(GridSpec::new(6, 6, 10.0));
        let flat = Synthesizer::new(cfg.clone()).synthesize(&g, &comps, &wash());
        assert!(matches!(flat, Err(SynthesisError::Place(_))));
        // ...and reseeding alone cannot help either...
        let reseed_only = Synthesizer::new(cfg.clone()).synthesize_resilient(
            &g,
            &comps,
            &wash(),
            &DefectMap::pristine(),
            &RecoveryPolicy::reseed_only(8),
        );
        assert!(!reseed_only.is_success());
        // ...but the grid-growth rung does.
        let out = Synthesizer::new(cfg).synthesize_resilient(
            &g,
            &comps,
            &wash(),
            &DefectMap::pristine(),
            &RecoveryPolicy::standard(),
        );
        assert!(out.is_success(), "{:?}", out.result);
        assert!(out.trace.rungs_tried().contains(&Rung::GrowGrid));
        // The deterministic placement error must not have burnt the whole
        // reseed budget: one attempt, then escalate.
        let reseeds = out
            .trace
            .attempts
            .iter()
            .filter(|a| a.rung == Rung::Reseed)
            .count();
        assert_eq!(reseeds, 1);
    }

    #[test]
    fn infeasible_allocation_fails_fast_with_degraded_report() {
        let mut b = SequencingGraph::builder();
        b.operation(
            OperationKind::Filter,
            Duration::from_secs(2),
            DiffusionCoefficient::PROTEIN,
        );
        let g = b.build().unwrap();
        let comps = Allocation::new(1, 0, 0, 0).instantiate(&ComponentLibrary::default());
        let out = Synthesizer::paper_dcsa().synthesize_resilient(
            &g,
            &comps,
            &wash(),
            &DefectMap::pristine(),
            &RecoveryPolicy::standard(),
        );
        assert!(matches!(out.result, Err(SynthesisError::Sched(_))));
        // A scheduling infeasibility proof aborts the ladder after one
        // attempt — no rung adds components.
        assert_eq!(out.trace.len(), 1);
        let degraded = out.degraded.unwrap();
        assert!(degraded.schedule.is_none());
        assert!(degraded.placement.is_none());
    }

    #[test]
    fn fully_dead_allocation_is_a_structured_error() {
        let (g, comps) = tiny();
        let mut defects = DefectMap::pristine();
        for c in comps.ids() {
            defects.kill_component(c);
        }
        let out = Synthesizer::paper_dcsa().synthesize_resilient(
            &g,
            &comps,
            &wash(),
            &defects,
            &RecoveryPolicy::standard(),
        );
        assert!(matches!(out.result, Err(SynthesisError::Sched(_))));
    }

    #[test]
    fn panic_guard_produces_stage_panic() {
        let r: Result<(), SynthesisError> = guard("test-stage", true, || panic!("boom"));
        match r {
            Err(SynthesisError::StagePanic { stage, message }) => {
                assert_eq!(stage, "test-stage");
                assert!(message.contains("boom"));
            }
            other => panic!("expected StagePanic, got {other:?}"),
        }
    }

    #[test]
    fn panic_guard_disabled_lets_panics_through() {
        let caught = std::panic::catch_unwind(|| {
            let _ = guard::<()>("test-stage", false, || panic!("boom"));
        });
        assert!(caught.is_err());
    }

    #[test]
    fn implicated_component_respects_last_live_guard() {
        let (_g, comps) = tiny();
        // Two mixers c0, c1: killing one is allowed while the other lives.
        let err = SynthesisError::Route {
            last: RouteError::NoPorts {
                component: ComponentId::new(0),
            },
            attempts: 1,
        };
        let defects = DefectMap::pristine();
        assert_eq!(
            implicated_component(Some(&err), None, &comps, &defects),
            Some(ComponentId::new(0))
        );
        let mut one_dead = DefectMap::pristine();
        one_dead.kill_component(ComponentId::new(1));
        assert_eq!(
            implicated_component(Some(&err), None, &comps, &one_dead),
            None,
            "must refuse to kill the last live component of a kind"
        );
    }
}
