//! Whole-flow configuration.

use mfb_model::prelude::*;
use mfb_place::prelude::SaConfig;
use mfb_route::prelude::RouterConfig;
use mfb_sched::prelude::BindingRule;

/// Which placement algorithm the flow uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Simulated annealing guided by the connection priorities of Eq. (4)
    /// (the paper's algorithm).
    SimulatedAnnealing,
    /// Greedy constructive placement (the baseline's construction step).
    Constructive,
    /// Deterministic force-directed placement (weighted-centroid
    /// iteration) — an annealing-free alternative with no seed.
    ForceDirected,
}

/// Which routing algorithm the flow uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingStrategy {
    /// Transportation-conflict-aware, wash-weighted A* (the paper's
    /// algorithm; never delays the schedule).
    ConflictAware,
    /// Construction-by-correction (the baseline: route blind, then fix by
    /// re-routing or postponing, possibly delaying the assay).
    ConstructionByCorrection,
    /// PathFinder-style negotiated congestion: parallel soft-cost sweeps
    /// with rising present/history penalties, falling back to
    /// [`ConflictAware`](Self::ConflictAware) when negotiation does not
    /// converge — never delays the schedule, never less routable than the
    /// conflict-aware router.
    Negotiated,
}

/// Configuration of the complete top-down synthesis flow.
///
/// [`SynthesisConfig::paper_dcsa`] and [`SynthesisConfig::paper_baseline`]
/// reproduce the two columns of the paper's Table I, including the
/// published parameter values `α = 0.9`, `β = 0.6`, `γ = 0.4`,
/// `T_0 = 10000`, `I_max = 150`, `T_min = 1.0`, `t_c = 2.0`, `w_e = 10`.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisConfig {
    /// Constant inter-component transport time `t_c`.
    pub t_c: Duration,
    /// Binding rule for the scheduler.
    pub binding: BindingRule,
    /// Placement algorithm.
    pub placement: PlacementStrategy,
    /// Routing algorithm.
    pub routing: RoutingStrategy,
    /// Simulated-annealing parameters (used by
    /// [`PlacementStrategy::SimulatedAnnealing`]).
    pub sa: SaConfig,
    /// Router parameters.
    pub router: RouterConfig,
    /// Eq. (4) weighting factor β (transport concurrency).
    pub beta: f64,
    /// Eq. (4) weighting factor γ (wash time).
    pub gamma: f64,
    /// Chip grid; `None` sizes the grid automatically from the allocation.
    pub grid: Option<GridSpec>,
    /// Placement attempts before giving up: when routing fails on a
    /// placement (a destination boxed in by wash shadows at exactly the
    /// wrong moment), the flow re-places with a fresh annealing seed and,
    /// periodically, a larger grid.
    pub max_placement_attempts: u32,
    /// Run the post-routing channel-length cleanup (iterative re-routing;
    /// extension beyond the paper, off by default for paper fidelity).
    pub optimize_channels: bool,
}

impl SynthesisConfig {
    /// The paper's own flow and parameters.
    pub fn paper_dcsa() -> Self {
        SynthesisConfig {
            t_c: Duration::from_secs(2),
            binding: BindingRule::StorageAware,
            placement: PlacementStrategy::SimulatedAnnealing,
            routing: RoutingStrategy::ConflictAware,
            sa: SaConfig::paper(),
            router: RouterConfig::paper(),
            beta: 0.6,
            gamma: 0.4,
            grid: None,
            max_placement_attempts: 24,
            optimize_channels: false,
        }
    }

    /// The paper's baseline (BA): earliest-ready binding, constructive
    /// placement, construction-by-correction routing.
    pub fn paper_baseline() -> Self {
        SynthesisConfig {
            binding: BindingRule::EarliestReady,
            placement: PlacementStrategy::Constructive,
            routing: RoutingStrategy::ConstructionByCorrection,
            ..SynthesisConfig::paper_dcsa()
        }
    }

    /// Replaces the annealing seed (useful for reproducibility studies).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.sa = self.sa.with_seed(seed);
        self
    }
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig::paper_dcsa()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_match_published_parameters() {
        let ours = SynthesisConfig::paper_dcsa();
        assert_eq!(ours.t_c, Duration::from_secs(2));
        assert_eq!(ours.sa.alpha, 0.9);
        assert_eq!(ours.sa.t0, 10_000.0);
        assert_eq!(ours.sa.t_min, 1.0);
        assert_eq!(ours.sa.i_max, 150);
        assert_eq!(ours.beta, 0.6);
        assert_eq!(ours.gamma, 0.4);
        assert_eq!(ours.router.w_e, Duration::from_secs(10));
        assert_eq!(ours.binding, BindingRule::StorageAware);

        let ba = SynthesisConfig::paper_baseline();
        assert_eq!(ba.binding, BindingRule::EarliestReady);
        assert_eq!(ba.placement, PlacementStrategy::Constructive);
        assert_eq!(ba.routing, RoutingStrategy::ConstructionByCorrection);
        assert_eq!(ba.t_c, ours.t_c);
    }
}
